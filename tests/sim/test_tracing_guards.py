"""Guard-contract tests for the per-kind TraceBus hot path.

The load-bearing regression here: with no subscribers and retention off,
pushing traffic through a live network must perform *zero* ``publish``
calls — producers check the ``wants_*`` guard before constructing a record,
so publishes are a proxy for record allocations.
"""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.tracing import (
    TRACE_KINDS,
    LinkEventRecord,
    MessageRecord,
    PacketRecord,
    RouteChangeRecord,
    TraceBus,
    TraceCounters,
)
from repro.topology import generators


class CountingBus(TraceBus):
    """TraceBus that counts every publish call (i.e. record construction)."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.publish_count = 0

    def publish(self, record: object) -> None:
        self.publish_count += 1
        super().publish(record)


def _push_traffic(bus: TraceBus, n_packets: int = 20) -> Simulator:
    """Line network, FIBs set by hand, CBR-ish burst end to end."""
    sim = Simulator()
    net = Network(sim, generators.line(4), bus)
    for node in net.iter_nodes():
        if node.id < 3:
            node.set_next_hop(3, node.id + 1)
    for i in range(n_packets):
        sim.schedule_at(
            i * 0.01, lambda: net.node(0).originate(Packet(src=0, dst=3))
        )
    sim.run()
    assert net.node(3).delivered == n_packets
    return sim


class TestZeroAllocationFastPath:
    def test_untraced_run_never_publishes(self):
        bus = CountingBus(
            keep_packets=False, keep_routes=False, keep_messages=False
        )
        _push_traffic(bus)
        assert bus.publish_count == 0

    def test_untraced_run_still_counts(self):
        bus = CountingBus(
            keep_packets=False, keep_routes=False, keep_messages=False
        )
        _push_traffic(bus, n_packets=20)
        assert bus.counters.sends == 20
        assert bus.counters.delivers == 20
        assert bus.counters.forwards == 20 * 2  # two relay hops on the line
        assert bus.counters.route_changes == 3  # the hand-set FIB entries
        assert bus.counters.drops == 0

    def test_subscriber_turns_the_records_back_on(self):
        bus = CountingBus(
            keep_packets=False, keep_routes=False, keep_messages=False
        )
        seen = []
        bus.subscribe("packet", seen.append)
        _push_traffic(bus, n_packets=5)
        assert bus.publish_count > 0
        assert len(seen) == bus.publish_count
        assert all(isinstance(r, PacketRecord) for r in seen)

    def test_retention_alone_turns_the_records_back_on(self):
        bus = CountingBus(
            keep_packets=True, keep_routes=False, keep_messages=False
        )
        _push_traffic(bus, n_packets=5)
        assert bus.publish_count == len(bus.packets) > 0

    def test_unobserved_link_flap_never_publishes(self):
        """Link records obey the guard too: a fully quiet bus sees zero
        publishes even across a fail/restore cycle (the counters still
        count both transitions)."""
        from repro.net.dynamics import LinkScheduler

        bus = CountingBus(
            keep_packets=False, keep_routes=False, keep_messages=False,
            keep_links=False,
        )
        sim = Simulator()
        net = Network(sim, generators.line(4), bus)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 2, at=1.0)
        injector.restore_link(1, 2, at=2.0)
        sim.run(until=3.0)
        assert bus.counters.link_events == 2
        assert bus.publish_count == 0
        assert bus.link_events == []

    def test_subscribed_link_flap_publishes_both_transitions(self):
        from repro.net.dynamics import LinkScheduler

        bus = CountingBus(
            keep_packets=False, keep_routes=False, keep_messages=False,
            keep_links=False,
        )
        seen = []
        bus.subscribe("link", seen.append)
        sim = Simulator()
        net = Network(sim, generators.line(4), bus)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 2, at=1.0)
        injector.restore_link(1, 2, at=2.0)
        sim.run(until=3.0)
        assert [r.up for r in seen] == [False, True]
        assert bus.publish_count == 2


class TestWantsGuards:
    def test_quiet_bus_wants_nothing_but_link(self):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        assert not bus.wants_packet
        assert not bus.wants_route
        assert not bus.wants_message
        assert bus.wants_link  # link retention defaults on (narration reads it)

    def test_link_guard_follows_retention_and_subscription(self):
        bus = TraceBus(
            keep_packets=False, keep_routes=False, keep_messages=False,
            keep_links=False,
        )
        assert not bus.wants_link  # nothing would observe a link record
        handler = lambda record: None  # noqa: E731
        bus.subscribe("link", handler)
        assert bus.wants_link
        bus.unsubscribe("link", handler)
        assert not bus.wants_link
        bus.keep_links = True
        assert bus.wants_link

    def test_wants_tracks_retention_flags(self):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        bus.keep_packets = True
        assert bus.wants_packet and bus.wants("packet")
        bus.keep_packets = False
        assert not bus.wants_packet

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_wants_tracks_subscriptions(self, kind):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        bus.subscribe(kind, lambda record: None)
        assert bus.wants(kind)

    def test_wants_rejects_unknown_kind(self):
        bus = TraceBus()
        with pytest.raises(ValueError):
            bus.wants("quic")

    def test_subscribe_rejects_unknown_kind(self):
        bus = TraceBus()
        with pytest.raises(ValueError):
            bus.subscribe("quic", lambda record: None)

    def test_subscribe_by_record_type_still_works(self):
        bus = TraceBus()
        seen = []
        bus.subscribe(RouteChangeRecord, seen.append)
        record = RouteChangeRecord(
            time=1.0, node=0, dest=3, old_next_hop=None, new_next_hop=1
        )
        bus.publish(record)
        assert seen == [record]

    def test_publish_routes_each_kind_to_its_subscribers(self):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        by_kind = {kind: [] for kind in TRACE_KINDS}
        for kind in TRACE_KINDS:
            bus.subscribe(kind, by_kind[kind].append)
        bus.publish(PacketRecord(time=0.0, kind="send", packet_id=1, node=0, flow_id=0, ttl=64))
        bus.publish(LinkEventRecord(time=0.0, node_a=0, node_b=1, up=False))
        bus.publish(MessageRecord(time=0.0, sender=0, receiver=1, protocol="rip", n_routes=1))
        assert [len(by_kind[k]) for k in TRACE_KINDS] == [1, 0, 1, 1]


class TestTraceCounters:
    def test_reset_zeroes_everything(self):
        counters = TraceCounters()
        counters.sends = 5
        counters.drops = 2
        counters.reset()
        assert all(v == 0 for v in counters.as_dict().values())

    def test_as_dict_names_every_counter(self):
        assert set(TraceCounters().as_dict()) == {
            "sends",
            "forwards",
            "delivers",
            "drops",
            "route_changes",
            "link_events",
            "messages",
        }

    def test_clear_keeps_counters_and_subscriptions(self):
        bus = TraceBus(keep_packets=True)
        seen = []
        bus.subscribe("packet", seen.append)
        bus.counters.sends = 3
        bus.publish(PacketRecord(time=0.0, kind="send", packet_id=1, node=0, flow_id=0, ttl=64))
        bus.clear()
        assert bus.packets == []
        assert bus.counters.sends == 3
        bus.publish(PacketRecord(time=0.0, kind="send", packet_id=2, node=0, flow_id=0, ttl=64))
        assert len(seen) == 2
