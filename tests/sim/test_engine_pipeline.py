"""Tests for the hot-path scheduler API: validation, fast-path scheduling,
handle recycling, and the EventStats snapshot."""

from __future__ import annotations

import math

import pytest

from repro.sim.engine import EventStats, SimulationError, Simulator


BAD_TIMES = [float("nan"), float("inf"), float("-inf"), -1.0]


class TestTimeValidation:
    @pytest.mark.parametrize("delay", BAD_TIMES)
    def test_schedule_rejects_non_finite_delay(self, sim, delay):
        with pytest.raises(SimulationError):
            sim.schedule(delay, lambda: None)

    @pytest.mark.parametrize("delay", BAD_TIMES)
    def test_schedule_call_rejects_non_finite_delay(self, sim, delay):
        with pytest.raises(SimulationError):
            sim.schedule_call(delay, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_schedule_at_rejects_non_finite_time(self, sim, bad):
        with pytest.raises(SimulationError):
            sim.schedule_at(bad, lambda: None)

    def test_schedule_at_rejects_past_time(self, sim):
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    @pytest.mark.parametrize("delay", BAD_TIMES)
    def test_schedule_many_rejects_non_finite_delay(self, sim, delay):
        with pytest.raises(SimulationError):
            sim.schedule_many([(0.0, lambda: None), (delay, lambda: None)])

    @pytest.mark.parametrize("delay", BAD_TIMES)
    def test_reschedule_rejects_non_finite_delay(self, sim, delay):
        handle = sim.schedule(0.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.reschedule(handle, delay)

    def test_rejected_event_leaves_queue_untouched(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("ok"))
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: fired.append("bad"))
        sim.run()
        assert fired == ["ok"]


class TestFastPathScheduling:
    def test_schedule_call_passes_args(self, sim):
        seen = []
        sim.schedule_call(1.0, lambda a, b: seen.append((a, b)), "x", 2)
        sim.run()
        assert seen == [("x", 2)]

    def test_schedule_call_cancellable(self, sim):
        seen = []
        handle = sim.schedule_call(1.0, seen.append, "never")
        handle.cancel()
        sim.run()
        assert seen == []

    def test_schedule_many_preserves_batch_order_on_ties(self, sim):
        fired = []
        sim.schedule_many(
            [(1.0, lambda l=label: fired.append(l)) for label in "abcde"]
        )
        sim.run()
        assert fired == list("abcde")

    def test_schedule_many_interleaves_with_schedule_by_time(self, sim):
        fired = []
        sim.schedule(1.5, lambda: fired.append("mid"))
        sim.schedule_many(
            [(1.0, lambda: fired.append("first")), (2.0, lambda: fired.append("last"))]
        )
        sim.run()
        assert fired == ["first", "mid", "last"]


class TestReschedule:
    def test_reschedule_reuses_fired_handle(self, sim):
        ticks = []
        state = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) < 3:
                state["h"] = sim.reschedule(state["h"], 1.0)

        state["h"] = sim.schedule(1.0, tick)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0]

    def test_reschedule_rejects_pending_handle(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.reschedule(handle, 1.0)

    def test_reschedule_rejects_unfired_cancelled_handle(self, sim):
        # A cancelled-but-unfired handle still has a live heap entry;
        # recycling it would make that entry fire a resurrected callback.
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        with pytest.raises(SimulationError):
            sim.reschedule(handle, 1.0)

    def test_rescheduled_handle_can_be_cancelled(self, sim):
        seen = []
        state = {}

        def tick():
            seen.append(sim.now)
            state["h"] = sim.reschedule(state["h"], 1.0)

        state["h"] = sim.schedule(1.0, tick)
        sim.schedule(2.5, lambda: state["h"].cancel())
        sim.run()
        assert seen == [1.0, 2.0]


class TestDeterminism:
    def test_cancelled_callbacks_never_execute(self, sim):
        fired = []
        handles = [
            sim.schedule(1.0, lambda i=i: fired.append(i)) for i in range(10)
        ]
        for i, handle in enumerate(handles):
            if i % 2 == 0:
                handle.cancel()
        sim.run()
        assert fired == [1, 3, 5, 7, 9]

    def test_run_until_resumes_contiguously(self, sim):
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run(until=2.5)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.5
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_mixed_apis_keep_global_insertion_order(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule_call(1.0, fired.append, "b")
        sim.schedule_many([(1.0, lambda: fired.append("c"))])
        sim.schedule_at(1.0, lambda: fired.append("d"))
        sim.run()
        assert fired == ["a", "b", "c", "d"]


class TestEventStats:
    def test_counts_processed_and_skipped(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        handles[0].cancel()
        handles[2].cancel()
        sim.run()
        stats = sim.stats()
        assert isinstance(stats, EventStats)
        assert stats.events_processed == 2
        assert stats.cancelled_skipped == 2
        assert stats.cancel_ratio == pytest.approx(0.5)
        assert stats.pending == 0
        assert stats.sim_time == 4.0

    def test_queue_depth_high_water_mark(self, sim):
        for i in range(7):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.stats().queue_depth_hwm == 7

    def test_events_per_sec_positive_after_run(self, sim):
        for i in range(100):
            sim.schedule(float(i), lambda: None)
        sim.run()
        stats = sim.stats()
        assert stats.wall_time > 0.0
        assert stats.events_per_sec > 0.0
        assert math.isfinite(stats.events_per_sec)

    def test_fresh_simulator_stats_are_zero(self):
        stats = Simulator().stats()
        assert stats.events_processed == 0
        assert stats.cancelled_skipped == 0
        assert stats.cancel_ratio == 0.0
        assert stats.events_per_sec == 0.0
