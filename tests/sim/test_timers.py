"""Unit tests for timer helpers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator
from repro.sim.timers import JitteredInterval, OneShotTimer, PeriodicTimer


class TestJitteredInterval:
    def test_no_jitter_is_constant(self):
        interval = JitteredInterval(30.0, 0.0, random.Random(1))
        assert all(interval.sample() == 30.0 for _ in range(10))

    def test_samples_within_bounds(self):
        interval = JitteredInterval(30.0, 5.0, random.Random(1))
        for _ in range(200):
            s = interval.sample()
            assert 25.0 <= s <= 35.0

    def test_mean_property(self):
        assert JitteredInterval(3.0, 0.5, random.Random(0)).mean == 3.0

    @pytest.mark.parametrize("base,jitter", [(0.0, 0.0), (-1.0, 0.0), (5.0, 6.0), (5.0, -1.0)])
    def test_invalid_parameters_rejected(self, base, jitter):
        with pytest.raises(ValueError):
            JitteredInterval(base, jitter, random.Random(0))

    @given(
        base=st.floats(min_value=0.1, max_value=100),
        frac=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**30),
    )
    def test_property_bounds(self, base, frac, seed):
        jitter = base * frac
        interval = JitteredInterval(base, jitter, random.Random(seed))
        s = interval.sample()
        assert base - jitter - 1e-9 <= s <= base + jitter + 1e-9


class TestOneShotTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_replaces_pending_fire(self, sim):
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.schedule(1.0, lambda: timer.start(5.0))
        sim.run()
        assert fired == [6.0]

    def test_cancel_prevents_fire(self, sim):
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(1))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []

    def test_running_and_expiry_introspection(self, sim):
        timer = OneShotTimer(sim, lambda: None)
        assert not timer.running
        assert timer.expires_at is None
        timer.start(3.0)
        assert timer.running
        assert timer.expires_at == 3.0
        sim.run()
        assert not timer.running

    def test_can_restart_after_firing(self, sim):
        fired = []
        timer = OneShotTimer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]


class TestPeriodicTimer:
    def test_fires_repeatedly(self, sim):
        fired = []
        interval = JitteredInterval(1.0, 0.0, random.Random(0))
        timer = PeriodicTimer(sim, interval, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_initial_delay_override(self, sim):
        fired = []
        interval = JitteredInterval(10.0, 0.0, random.Random(0))
        timer = PeriodicTimer(sim, interval, lambda: fired.append(sim.now))
        timer.start(initial_delay=0.5)
        sim.run(until=11.0)
        assert fired == [0.5, 10.5]

    def test_stop_ends_cycle(self, sim):
        fired = []
        interval = JitteredInterval(1.0, 0.0, random.Random(0))
        timer = PeriodicTimer(sim, interval, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]
        assert not timer.running

    def test_jittered_cycles_stay_in_bounds(self, sim):
        fired = []
        interval = JitteredInterval(1.0, 0.3, random.Random(7))
        timer = PeriodicTimer(sim, interval, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=50.0)
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert gaps, "expected multiple fires"
        assert all(0.7 - 1e-9 <= g <= 1.3 + 1e-9 for g in gaps)
