"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_into_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.pending

    def test_pending_transitions(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending


class TestRunControl:
    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_time_even_when_queue_drains(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_repeated_run_until_is_contiguous(self, sim):
        ticks = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda t=t: ticks.append(t))
        sim.run(until=1.5)
        sim.run(until=2.5)
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_max_events_limits_execution(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_max_events_break_does_not_skip_past_pending(self, sim):
        # Regression: run(until=T, max_events=N) used to fast-forward now to
        # T even when the cap left events pending before T, so peek_time()
        # reported the past and new schedule() calls landed after them.
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(until=100.0, max_events=4)
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0
        assert sim.peek_time() == 5.0
        # A fresh relative event must land *after* the still-pending ones.
        sim.schedule(0.5, lambda: fired.append("new"))
        sim.run(until=100.0)
        assert fired == [0, 1, 2, 3, "new", 4, 5, 6, 7, 8, 9]
        assert sim.now == 100.0

    def test_stop_break_does_not_fast_forward(self, sim):
        sim.schedule(1.0, sim.stop)
        sim.schedule(2.0, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 1.0
        assert sim.peek_time() == 2.0

    def test_until_with_max_events_advances_when_drained(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0, max_events=5)
        assert sim.now == 10.0

    def test_stop_halts_loop(self, sim):
        fired = []

        def first():
            fired.append(1)
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        assert sim.pending_events == 1

    def test_run_not_reentrant(self, sim):
        def recurse():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, recurse)
        sim.run()

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_peek_time_skips_cancelled(self, sim):
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self, sim):
        assert sim.peek_time() is None


class TestReschedule:
    def test_reschedule_recycles_fired_handle(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        sim.reschedule(handle, 2.0)
        sim.run()
        assert fired == [1.0, 3.0]

    def test_reschedule_pending_handle_rejected(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.reschedule(handle, 1.0)

    def test_cancel_after_fire_is_sticky(self, sim):
        # Regression: reschedule() used to reset _cancelled, resurrecting a
        # handle a protocol had cancelled inside (or after) its own action.
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()
        with pytest.raises(SimulationError):
            sim.reschedule(handle, 1.0)
        assert sim.pending_events == 0

    def test_cancel_inside_action_kills_the_cycle(self, sim):
        fired = []
        holder = {}

        def action():
            fired.append(sim.now)
            holder["handle"].cancel()

        holder["handle"] = sim.schedule(1.0, action)
        sim.run()
        with pytest.raises(SimulationError):
            sim.reschedule(holder["handle"], 1.0)
        assert fired == [1.0]


class TestBatchScheduling:
    def test_schedule_many_preserves_tie_order(self, sim):
        fired = []
        sim.schedule_many(
            [(1.0, lambda l=l: fired.append(l)) for l in "abc"]
        )
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_many_at_absolute_times_are_exact(self, sim):
        seen = []
        handles = sim.schedule_many_at(
            [(t, lambda t=t: seen.append(sim.now)) for t in (0.3, 0.1, 0.2)]
        )
        sim.run()
        assert seen == [0.1, 0.2, 0.3]
        assert [h.time for h in handles] == [0.3, 0.1, 0.2]

    def test_schedule_many_at_rejects_past(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_many_at([(1.0, lambda: None)])


class TestBackendSelection:
    def test_default_backend_is_heap(self, sim):
        assert sim.queue_backend == "heap"
        assert sim.stats().queue_backend == "heap"

    def test_calendar_backend_selected_by_name(self):
        sim = Simulator(queue="calendar")
        assert sim.queue_backend == "calendar"
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Simulator(queue="fibonacci")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "calendar")
        assert Simulator().queue_backend == "calendar"
        # An explicit argument wins over the environment.
        assert Simulator(queue="heap").queue_backend == "heap"

    def test_stats_queue_hwm_from_backend(self):
        for name in ("heap", "calendar"):
            sim = Simulator(queue=name)
            for i in range(5):
                sim.schedule(float(i), lambda: None)
            assert sim.stats().queue_depth_hwm == 5
            sim.run()
            assert sim.stats().pending == 0


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_arbitrary_delays_fire_sorted(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    def test_cancellation_subset_fires(self, entries):
        sim = Simulator()
        fired = []
        handles = []
        for i, (delay, cancel) in enumerate(entries):
            handles.append(
                (sim.schedule(delay, lambda i=i: fired.append(i)), cancel)
            )
        for handle, cancel in handles:
            if cancel:
                handle.cancel()
        sim.run()
        expected = {i for i, (_, cancel) in enumerate(entries) if not cancel}
        assert set(fired) == expected
