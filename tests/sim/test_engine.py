"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_into_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.pending

    def test_pending_transitions(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending


class TestRunControl:
    def test_run_until_stops_at_boundary(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_time_even_when_queue_drains(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_repeated_run_until_is_contiguous(self, sim):
        ticks = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda t=t: ticks.append(t))
        sim.run(until=1.5)
        sim.run(until=2.5)
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_max_events_limits_execution(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_stop_halts_loop(self, sim):
        fired = []

        def first():
            fired.append(1)
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        assert sim.pending_events == 1

    def test_run_not_reentrant(self, sim):
        def recurse():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, recurse)
        sim.run()

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_peek_time_skips_cancelled(self, sim):
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h1.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self, sim):
        assert sim.peek_time() is None


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_arbitrary_delays_fire_sorted(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    def test_cancellation_subset_fires(self, entries):
        sim = Simulator()
        fired = []
        handles = []
        for i, (delay, cancel) in enumerate(entries):
            handles.append(
                (sim.schedule(delay, lambda i=i: fired.append(i)), cancel)
            )
        for handle, cancel in handles:
            if cancel:
                handle.cancel()
        sim.run()
        expected = {i for i, (_, cancel) in enumerate(entries) if not cancel}
        assert set(fired) == expected
