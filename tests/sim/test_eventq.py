"""Unit tests for the pluggable event-queue backends.

The contract both backends must satisfy: entries are plain
``(time, seq, handle)`` tuples popped in ascending ``(time, seq)`` order,
``peek`` is non-destructive, ``len`` tracks the pending population and
``hwm`` its high-water mark.  The differential suite at the bottom drives
random engine API interleavings through a heap-backed and a calendar-backed
:class:`~repro.sim.engine.Simulator` and requires identical behaviour.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import SimulationError, Simulator
from repro.sim.eventq import (
    DEFAULT_EVENT_QUEUE,
    EVENT_QUEUE_NAMES,
    CalendarEventQueue,
    HeapEventQueue,
    make_event_queue,
    resolve_queue_name,
)

BACKENDS = [HeapEventQueue, CalendarEventQueue]


def _entries(times):
    return [(t, seq, None) for seq, t in enumerate(times)]


class TestFactory:
    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
        assert resolve_queue_name(None) == DEFAULT_EVENT_QUEUE

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "calendar")
        assert resolve_queue_name(None) == "calendar"
        # Explicit name wins over the environment.
        assert resolve_queue_name("heap") == "heap"

    def test_unknown_name_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_queue_name("splay")
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "splay")
        with pytest.raises(ValueError):
            resolve_queue_name(None)

    def test_make_event_queue(self):
        assert isinstance(make_event_queue("heap"), HeapEventQueue)
        assert isinstance(make_event_queue("calendar"), CalendarEventQueue)
        for name in EVENT_QUEUE_NAMES:
            assert make_event_queue(name).name == name


@pytest.mark.parametrize("backend", BACKENDS)
class TestOrderingContract:
    def test_pops_in_time_order(self, backend):
        q = backend()
        times = [5.0, 1.0, 3.0, 2.0, 4.0]
        for entry in _entries(times):
            q.push(entry)
        assert [q.pop()[0] for _ in range(len(times))] == sorted(times)

    def test_ties_pop_fifo_by_seq(self, backend):
        q = backend()
        for entry in _entries([1.0, 1.0, 1.0]):
            q.push(entry)
        assert [q.pop()[1] for _ in range(3)] == [0, 1, 2]

    def test_peek_is_nondestructive(self, backend):
        q = backend()
        q.push((2.0, 0, None))
        q.push((1.0, 1, None))
        assert q.peek() == (1.0, 1, None)
        assert q.peek() == (1.0, 1, None)
        assert len(q) == 2

    def test_peek_empty_returns_none(self, backend):
        assert backend().peek() is None

    def test_len_and_hwm(self, backend):
        q = backend()
        for entry in _entries([3.0, 1.0, 2.0]):
            q.push(entry)
        assert len(q) == 3
        q.pop()
        q.push((9.0, 99, None))
        assert len(q) == 3
        assert q.hwm == 3

    def test_interleaved_push_pop(self, backend):
        q = backend()
        q.push((10.0, 0, None))
        q.push((20.0, 1, None))
        assert q.pop()[0] == 10.0
        # Push behind the already-popped frontier but ahead of now.
        q.push((12.0, 2, None))
        assert q.pop()[0] == 12.0
        assert q.pop()[0] == 20.0


class TestCalendarMechanics:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CalendarEventQueue(bucket_count=0)
        with pytest.raises(ValueError):
            CalendarEventQueue(bucket_width=0.0)

    def test_grow_resize_preserves_order(self):
        q = CalendarEventQueue(bucket_count=32, bucket_width=1.0)
        times = [float(i) * 0.13 for i in range(500)]
        for entry in _entries(times):
            q.push(entry)
        assert q._nbuckets > 32  # population forced at least one grow
        assert [q.pop()[0] for _ in range(len(times))] == sorted(times)

    def test_shrink_resize_preserves_order(self):
        q = CalendarEventQueue()
        times = [float(i) * 0.01 for i in range(600)]
        for entry in _entries(times):
            q.push(entry)
        grown = q._nbuckets
        popped = [q.pop()[0] for _ in range(len(times))]
        assert popped == sorted(times)
        assert q._nbuckets < grown  # draining forced at least one shrink

    def test_sparse_far_future_event_found(self):
        # An event many wheel revolutions ahead exercises the
        # direct-search fallback after one fruitless revolution.
        q = CalendarEventQueue(bucket_count=32, bucket_width=0.001)
        q.push((1000.0, 0, None))
        assert q.pop()[0] == 1000.0

    def test_push_behind_cursor_is_found(self):
        q = CalendarEventQueue(bucket_count=32, bucket_width=0.5)
        q.push((100.0, 0, None))
        assert q.peek()[0] == 100.0  # cursor jumps far forward
        q.push((1.0, 1, None))  # behind the certified floor: must rewind
        assert q.pop()[0] == 1.0
        assert q.pop()[0] == 100.0

    def test_same_instant_population_keeps_width(self):
        q = CalendarEventQueue(bucket_count=32, bucket_width=2.0)
        for seq in range(200):
            q.push((7.0, seq, None))
        assert q._width > 0.0
        assert [q.pop()[1] for _ in range(200)] == list(range(200))

    def test_width_estimate_is_median_gap_based(self):
        entries = _entries([0.0, 1.0, 2.0, 3.0, 100.0])
        width = CalendarEventQueue._estimate_width(entries, 1.0)
        # Median gap is 1.0, so the outlier 97.0 gap cannot blow up width.
        assert width == 16.0
        assert CalendarEventQueue._estimate_width([], 0.25) == 0.25
        assert CalendarEventQueue._estimate_width(_entries([5.0, 5.0]), 0.25) == 0.25


# --------------------------------------------------------------------------
# Differential property test: both backends must behave identically under
# arbitrary interleavings of the full engine API (ISSUE 8 satellite).


@st.composite
def _programs(draw):
    """A random program: list of ops over a bounded handle namespace."""
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        kind = draw(
            st.sampled_from(
                ["schedule", "schedule_at", "cancel", "reschedule", "run_until"]
            )
        )
        delay = draw(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
        )
        slot = draw(st.integers(min_value=0, max_value=7))
        ops.append((kind, delay, slot))
    return ops


def _execute(queue_name, ops):
    """Run one program; return (trace, final now, stats tuple)."""
    sim = Simulator(queue=queue_name)
    trace = []
    handles = {}
    for step, (kind, delay, slot) in enumerate(ops):
        if kind == "schedule":
            handles[slot] = sim.schedule(
                delay, lambda step=step: trace.append((step, sim.now))
            )
        elif kind == "schedule_at":
            handles[slot] = sim.schedule_at(
                sim.now + delay, lambda step=step: trace.append((step, sim.now))
            )
        elif kind == "cancel":
            if slot in handles:
                handles[slot].cancel()
        elif kind == "reschedule":
            handle = handles.get(slot)
            if handle is not None and handle._fired and not handle._cancelled:
                sim.reschedule(handle, delay)
        elif kind == "run_until":
            sim.run(until=sim.now + delay)
    sim.run()
    stats = sim.stats()
    return trace, sim.now, (
        stats.events_processed,
        stats.cancelled_skipped,
        stats.queue_depth_hwm,
        stats.pending,
    )


class TestBackendEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(_programs())
    def test_backends_agree_on_random_interleavings(self, ops):
        heap_result = _execute("heap", ops)
        calendar_result = _execute("calendar", ops)
        assert heap_result == calendar_result

    def test_backends_agree_on_periodic_timer_shape(self):
        # The workload the calendar backend is tuned for: a large population
        # of 30 s-periodic timers with deterministic jitter.
        def run(queue_name):
            sim = Simulator(queue=queue_name)
            fired = []
            handles = {}

            def make(i):
                period = 25.0 + (i * 7 % 11)

                def tick():
                    fired.append((i, sim.now))
                    if sim.now < 200.0:
                        handles[i] = sim.reschedule(handles[i], period)

                handles[i] = sim.schedule(period * (i % 13) / 13.0, tick)

            for i in range(100):
                make(i)
            sim.run(until=300.0)
            return fired, sim.now, sim.events_processed

        assert run("heap") == run("calendar")
