"""Unit tests for deterministic RNG streams."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_label_same_sequence(self):
        a = RngStreams(42).stream("rip.node3")
        b = RngStreams(42).stream("rip.node3")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_labels_differ(self):
        streams = RngStreams(42)
        a = streams.stream("rip.node1")
        b = streams.stream("rip.node2")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_streams_does_not_perturb_existing(self):
        lhs = RngStreams(9)
        s = lhs.stream("a")
        first = s.random()
        rhs = RngStreams(9)
        rhs.stream("b")  # extra consumer created first
        assert rhs.stream("a").random() == first

    def test_spawn_derives_distinct_families(self):
        parent = RngStreams(5)
        c1 = parent.spawn(1).stream("x")
        c2 = parent.spawn(2).stream("x")
        assert [c1.random() for _ in range(5)] != [c2.random() for _ in range(5)]

    def test_spawn_is_deterministic(self):
        a = RngStreams(5).spawn(3).stream("x").random()
        b = RngStreams(5).spawn(3).stream("x").random()
        assert a == b

    @given(st.integers(min_value=0, max_value=2**40), st.text(min_size=1, max_size=30))
    def test_property_reproducible(self, seed, label):
        x = RngStreams(seed).stream(label).random()
        y = RngStreams(seed).stream(label).random()
        assert x == y
