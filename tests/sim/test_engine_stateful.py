"""Stateful property test for the event engine.

Hypothesis drives random interleavings of schedule/cancel/run against a
simple model; the engine must fire exactly the non-cancelled events, in
time order, with `now` monotone.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class EngineMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.fired: list[tuple[float, int]] = []
        self.model: dict[int, tuple[float, bool]] = {}  # id -> (time, cancelled)
        self.handles: dict[int, object] = {}
        self.counter = 0

    @rule(delay=st.floats(min_value=0.0, max_value=100.0))
    def schedule(self, delay):
        event_id = self.counter
        self.counter += 1
        time = self.sim.now + delay
        handle = self.sim.schedule(
            delay, lambda eid=event_id: self.fired.append((self.sim.now, eid))
        )
        self.model[event_id] = (time, False)
        self.handles[event_id] = handle

    @precondition(lambda self: any(not c for _, c in self.model.values()))
    @rule(data=st.data())
    def cancel_one(self, data):
        pending = [eid for eid, (_, c) in self.model.items() if not c
                   and self.handles[eid].pending]
        if not pending:
            return
        eid = data.draw(st.sampled_from(pending))
        self.handles[eid].cancel()
        time, _ = self.model[eid]
        self.model[eid] = (time, True)

    @rule(horizon=st.floats(min_value=0.0, max_value=50.0))
    def run_until(self, horizon):
        target = self.sim.now + horizon
        self.sim.run(until=target)
        assert self.sim.now == target

    @rule()
    def run_all(self):
        self.sim.run()

    @invariant()
    def fired_in_time_order(self):
        times = [t for t, _ in self.fired]
        assert times == sorted(times)

    @invariant()
    def nothing_cancelled_fired(self):
        fired_ids = {eid for _, eid in self.fired}
        for eid, (time, cancelled) in self.model.items():
            if cancelled and self.handles[eid].cancelled:
                # Cancelled before firing -> must not appear.
                if eid in fired_ids:
                    t_fired = next(t for t, e in self.fired if e == eid)
                    # It may only appear if it fired before cancellation;
                    # handle.pending was checked in cancel_one, so never.
                    raise AssertionError(f"cancelled event {eid} fired at {t_fired}")

    @invariant()
    def everything_due_has_fired(self):
        fired_ids = {eid for _, eid in self.fired}
        for eid, (time, cancelled) in self.model.items():
            if not cancelled and time < self.sim.now - 1e-9:
                assert eid in fired_ids, f"event {eid} due at {time} never fired"


TestEngineStateful = EngineMachine.TestCase
TestEngineStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
