"""Property tests for the slotted scheduler's full API surface.

Complements ``test_engine_stateful.py`` (schedule/cancel machine) with the
fast paths introduced by the hot-path refactor: ``schedule_call``,
``schedule_many`` batches, and handle-recycling ``reschedule``.  Hypothesis
drives random interleavings and checks the scheduler's contract:

* events fire in non-decreasing time order, ties in insertion order;
* a handle cancelled while pending never fires;
* every non-cancelled arming fires exactly once (including re-armings of a
  recycled handle);
* non-finite and negative delays are rejected by every scheduling entry
  point, including mid-batch in ``schedule_many``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationError, Simulator

# One scheduler operation; indexes are drawn large and reduced mod the
# relevant population so every generated program is valid.
_op = st.one_of(
    st.tuples(st.just("schedule"), st.floats(min_value=0.0, max_value=50.0)),
    st.tuples(st.just("schedule_call"), st.floats(min_value=0.0, max_value=50.0)),
    st.tuples(
        st.just("schedule_many"),
        st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=4),
    ),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10**6)),
    st.tuples(
        st.just("reschedule"),
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.0, max_value=50.0),
    ),
    st.tuples(st.just("run"), st.floats(min_value=0.0, max_value=30.0)),
)


class _Arming:
    """One arming of a handle: a (handle, activation) pair in the model."""

    __slots__ = ("aid", "time", "cancelled")

    def __init__(self, aid: int, time: float) -> None:
        self.aid = aid
        self.time = time
        self.cancelled = False


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(_op, max_size=40))
def test_interleavings_preserve_contract(ops):
    sim = Simulator()
    fired: list[tuple[float, int]] = []
    armings: list[_Arming] = []  # in arming (insertion) order
    # handle -> mutable cell holding its *current* arming; reschedule swaps it.
    cells: list[tuple[object, list[_Arming]]] = []

    def arm(handle_cell: list[_Arming], delay: float) -> _Arming:
        arming = _Arming(len(armings), sim.now + delay)
        armings.append(arming)
        handle_cell.clear()
        handle_cell.append(arming)
        return arming

    def make_callback(handle_cell: list[_Arming]):
        return lambda: fired.append((sim.now, handle_cell[0].aid))

    for op in ops:
        kind = op[0]
        if kind in ("schedule", "schedule_call"):
            cell: list[_Arming] = []
            callback = make_callback(cell)
            if kind == "schedule":
                handle = sim.schedule(op[1], callback)
            else:
                handle = sim.schedule_call(op[1], lambda cb=callback: cb())
            arm(cell, op[1])
            cells.append((handle, cell))
        elif kind == "schedule_many":
            batch = []
            batch_cells = []
            for delay in op[1]:
                cell = []
                batch.append((delay, make_callback(cell)))
                batch_cells.append(cell)
            handles = sim.schedule_many(batch)
            for handle, cell, (delay, _) in zip(handles, batch_cells, batch):
                arm(cell, delay)
                cells.append((handle, cell))
        elif kind == "cancel":
            pending = [(h, c) for h, c in cells if h.pending]
            if pending:
                handle, cell = pending[op[1] % len(pending)]
                handle.cancel()
                cell[0].cancelled = True
        elif kind == "reschedule":
            recyclable = [(h, c) for h, c in cells if h._fired]
            if recyclable:
                handle, cell = recyclable[op[1] % len(recyclable)]
                sim.reschedule(handle, op[2])
                arm(cell, op[2])
        elif kind == "run":
            sim.run(until=sim.now + op[1])
    sim.run()  # drain

    # Non-decreasing fire times; ties in arming order.
    times = [t for t, _ in fired]
    assert times == sorted(times)
    for (t1, a1), (t2, a2) in zip(fired, fired[1:]):
        if t1 == t2:
            assert a1 < a2, "same-time events fired out of insertion order"

    fired_ids = [aid for _, aid in fired]
    assert len(fired_ids) == len(set(fired_ids)), "an arming fired twice"
    expected = {a.aid for a in armings if not a.cancelled}
    assert set(fired_ids) == expected
    for t, aid in fired:
        assert t == pytest.approx(armings[aid].time)


_bad_delay = st.one_of(
    st.just(float("nan")),
    st.just(float("inf")),
    st.just(-float("inf")),
    st.floats(max_value=-1e-9, allow_nan=False),
)


@settings(max_examples=60, deadline=None)
@given(
    prefix=st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=3),
    bad=_bad_delay,
)
def test_schedule_many_rejects_non_finite_delays(prefix, bad):
    sim = Simulator()
    events = [(d, lambda: None) for d in prefix] + [(bad, lambda: None)]
    with pytest.raises(SimulationError):
        sim.schedule_many(events)


@settings(max_examples=60, deadline=None)
@given(bad=_bad_delay)
def test_all_entry_points_reject_bad_delays(bad):
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(bad, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_call(bad, lambda: None)
    if not math.isnan(bad):
        with pytest.raises(SimulationError):
            sim.schedule_at(sim.now + bad if math.isfinite(bad) else bad, lambda: None)
    fired_handle = sim.schedule(0.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.reschedule(fired_handle, bad)


def test_reschedule_requires_fired_handle():
    sim = Simulator()
    pending = sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.reschedule(pending, 1.0)
    pending.cancel()
    with pytest.raises(SimulationError):
        sim.reschedule(pending, 1.0)  # lazily-cancelled entry is still queued


def test_recycled_handle_cancel_does_not_resurrect():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]
    sim.reschedule(handle, 2.0)
    handle.cancel()
    sim.run()
    assert fired == [1.0], "cancelled re-arming must not fire"
    # A cancelled re-arming never fires, so the handle stays unrecyclable:
    # only a handle whose queue entry was consumed by firing may be re-armed.
    with pytest.raises(SimulationError):
        sim.reschedule(handle, 0.5)
