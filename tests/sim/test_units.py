"""Unit tests for unit helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim import units


class TestTransmissionDelay:
    def test_paper_link_and_packet(self):
        # 500 bytes at 1 Mbps = 4 ms.
        assert units.transmission_delay(500, 1 * units.MEGABITS) == pytest.approx(0.004)

    def test_zero_size_is_instant(self):
        assert units.transmission_delay(0, units.MEGABITS) == 0.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            units.transmission_delay(100, 0)

    def test_negative_size(self):
        with pytest.raises(ValueError):
            units.transmission_delay(-1, units.MEGABITS)

    @given(
        size=st.integers(min_value=0, max_value=10**6),
        bw=st.floats(min_value=1e3, max_value=1e10),
    )
    def test_property_linear_in_size(self, size, bw):
        d1 = units.transmission_delay(size, bw)
        d2 = units.transmission_delay(size * 2, bw)
        assert d2 == pytest.approx(2 * d1)


def test_constants_consistent():
    assert units.SECONDS == 1.0
    assert units.MILLISECONDS == pytest.approx(1e-3)
    assert units.MINUTES == 60.0
    assert units.MEGABITS == 1000 * units.KILOBITS
    assert units.BITS_PER_BYTE == 8
