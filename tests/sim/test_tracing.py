"""Unit tests for the trace bus."""

from __future__ import annotations

from repro.sim.tracing import (
    DropCause,
    LinkEventRecord,
    MessageRecord,
    PacketRecord,
    RouteChangeRecord,
    TraceBus,
)


def _packet(kind="drop", cause=DropCause.NO_ROUTE):
    return PacketRecord(
        time=1.0, kind=kind, packet_id=1, node=2, flow_id=1, ttl=10, cause=cause
    )


class TestTraceBus:
    def test_subscribers_receive_matching_records(self):
        bus = TraceBus()
        got = []
        bus.subscribe(PacketRecord, got.append)
        record = _packet()
        bus.publish(record)
        assert got == [record]

    def test_subscribers_ignore_other_types(self):
        bus = TraceBus()
        got = []
        bus.subscribe(RouteChangeRecord, got.append)
        bus.publish(_packet())
        assert got == []

    def test_multiple_subscribers_all_called(self):
        bus = TraceBus()
        a, b = [], []
        bus.subscribe(PacketRecord, a.append)
        bus.subscribe(PacketRecord, b.append)
        bus.publish(_packet())
        assert len(a) == len(b) == 1

    def test_retention_flags(self):
        bus = TraceBus(keep_packets=False, keep_routes=True, keep_messages=False)
        bus.publish(_packet())
        bus.publish(
            RouteChangeRecord(time=0.0, node=1, dest=2, old_next_hop=None, new_next_hop=3)
        )
        bus.publish(
            MessageRecord(time=0.0, sender=1, receiver=2, protocol="rip", n_routes=5)
        )
        assert bus.packets == []
        assert len(bus.route_changes) == 1
        assert bus.messages == []

    def test_link_events_always_kept(self):
        bus = TraceBus()
        bus.publish(LinkEventRecord(time=1.0, node_a=1, node_b=2, up=False))
        assert len(bus.link_events) == 1

    def test_clear_drops_records_keeps_subscriptions(self):
        bus = TraceBus(keep_packets=True)
        got = []
        bus.subscribe(PacketRecord, got.append)
        bus.publish(_packet())
        bus.clear()
        assert bus.packets == []
        bus.publish(_packet())
        assert len(got) == 2

    def test_retention_even_without_subscribers(self):
        bus = TraceBus(keep_packets=True)
        bus.publish(_packet())
        assert len(bus.packets) == 1


class TestDropCause:
    def test_all_causes_distinct(self):
        values = [c.value for c in DropCause]
        assert len(values) == len(set(values)) == 4
