"""Mutation tests for the MANET trio: injected protocol bugs must be caught.

Same discipline as ``test_bug_injection.py``: monkeypatch a classic MANET
implementation bug into a real protocol, run a full monitored scenario, and
assert the validation layer notices.  Each mutation has a clean control run
so detection is attributable to the injected bug.

* **AODV, suppressed RERR propagation** — the node that detects a link
  break invalidates its own route but never tells its precursors.  The
  origin keeps forwarding into a stale-route blackhole for the rest of the
  run: packets die NO_ROUTE mid-path long after the network has otherwise
  quiesced, and the origin's surviving route fails the end-of-run chain
  walk.
* **OLSR, inverted MPR selection** — nodes select exactly the complement
  of the greedy MPR set.  Coverage collapses: selected relays don't cover
  the 2-hop neighborhood, TCs stop describing usable shortest paths, and
  remote destinations go missing or wrong against the SPF oracle.
"""

from __future__ import annotations

import pytest

import repro.routing.olsr as olsr_module
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario
from repro.routing.aodv import AodvProtocol
from repro.validation.monitors import MonitorSuite

_REAL_SELECT_MPRS = olsr_module.select_mprs


def _suppressed_rerr(self, affected):
    # The blackhole bug: local state is fixed up, upstream is never told.
    return None


def _inverted_select_mprs(self_id, sym_neighbors, two_hop):
    neighbors = set(sym_neighbors)
    return neighbors - _REAL_SELECT_MPRS(self_id, neighbors, two_hop)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_suppressed_rerr_blackhole_is_caught(monkeypatch, seed):
    monkeypatch.setattr(AodvProtocol, "_propagate_rerr", _suppressed_rerr)
    suite = MonitorSuite()
    result = run_scenario(
        "aodv", 3, seed, ExperimentConfig.quick(), monitors=suite
    )
    assert result.violations, (
        "suppressed RERR propagation went unnoticed by every monitor"
    )


def test_clean_aodv_control_stays_clean():
    suite = MonitorSuite()
    result = run_scenario("aodv", 3, 1, ExperimentConfig.quick(), monitors=suite)
    assert result.violations == ()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_inverted_mpr_selection_is_caught(monkeypatch, seed):
    monkeypatch.setattr(olsr_module, "select_mprs", _inverted_select_mprs)
    suite = MonitorSuite()
    result = run_scenario(
        "olsr", 3, seed, ExperimentConfig.quick(), monitors=suite
    )
    assert result.violations, (
        "inverted MPR selection went unnoticed by every monitor"
    )
    assert any("[rib-consistency]" in v for v in result.violations), (
        result.violations[:3]
    )


def test_clean_olsr_control_stays_clean():
    suite = MonitorSuite()
    result = run_scenario("olsr", 3, 1, ExperimentConfig.quick(), monitors=suite)
    assert result.violations == ()
