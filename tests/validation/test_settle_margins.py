"""The settle-margin table must cover every protocol and fail loudly otherwise.

Before the MANET work this table fell back to a silent default for unknown
names, which meant a typo'd or newly added protocol was judged with a margin
chosen for some other protocol's timer behavior — quiescence verdicts would
be quietly wrong.  Now an unknown name is a hard error at monitor attach
time, and this test pins both directions: every registered protocol has an
explicit margin, and anything else raises.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import PROTOCOL_NAMES
from repro.validation.monitors import settle_margin_for


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_every_registered_protocol_has_an_explicit_margin(protocol):
    margin = settle_margin_for(protocol)
    assert isinstance(margin, float) and margin > 0


@pytest.mark.parametrize("name", ["", "ripp", "aodv2", "unknown", "OLSR"])
def test_unknown_protocol_name_errors_loudly(name):
    with pytest.raises(ValueError, match="settle margin"):
        settle_margin_for(name)


def test_reactive_margins_cover_full_discovery_backoff():
    # AODV/DSR margins must outlast a full discovery cycle (initial attempt
    # plus two binary-exponential retries: 2.8 + 5.6 s = 8.4 s of legitimate
    # silence before a late RREP can still change state).
    assert settle_margin_for("aodv") > 8.4
    assert settle_margin_for("dsr") > 8.4
