"""Differential regression fixtures.

Three pinned (degree, seed) scenarios that must stay monitor-clean and
oracle-consistent for the paper's distance-vector pair.  These are the
fast canary for regressions in protocol logic, the failure injector, or
the monitors themselves: any invariant violation or cross-protocol cost
disagreement fails loudly with the offending scenario named.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario
from repro.validation.monitors import MonitorSuite
from repro.validation.oracle import run_differential

#: (degree, seed) fixtures spanning the sparse and mid-connectivity regimes.
FIXTURES = [(3, 1), (3, 2), (5, 1)]


@pytest.mark.parametrize("degree,seed", FIXTURES)
def test_differential_fixture_clean(degree, seed):
    report = run_differential(degree, seed, protocols=("dbf", "rip"))
    assert report.ok, "\n".join(report.all_violations())
    for protocol in ("dbf", "rip"):
        outcome = report.outcomes[protocol]
        assert outcome.monitor_violations == ()
        assert outcome.delivered > 0


@pytest.mark.parametrize("protocol", ["dbf", "rip"])
@pytest.mark.parametrize("degree", [3, 5])
def test_monitored_run_clean(protocol, degree):
    suite = MonitorSuite()
    config = ExperimentConfig.quick()
    result = run_scenario(protocol, degree, 1, config, monitors=suite)
    assert result.violations == (), "\n".join(result.violations)
    # The suite must have actually watched the run, not silently skipped
    # everything: packet conservation and TTL checks never skip.
    active = {m.name for m in suite.monitors if m.skipped is None}
    assert {"packet-conservation", "ttl"} <= active


def test_monitors_do_not_perturb_metrics():
    # Monitors are pure observers: a validated run must produce exactly the
    # metrics of an unvalidated one (docs/validation.md relies on this).
    config = ExperimentConfig.quick()
    plain = run_scenario("dbf", 3, 1, config)
    watched = run_scenario("dbf", 3, 1, config, monitors=MonitorSuite())
    for field in (
        "sent",
        "delivered",
        "drops_no_route",
        "drops_ttl",
        "messages",
        "routing_convergence",
        "forwarding_convergence",
        "converged_to_expected",
    ):
        assert getattr(plain, field) == getattr(watched, field), field


def test_validate_flag_attaches_monitors():
    config = ExperimentConfig.quick().with_(validate=True)
    result = run_scenario("rip", 3, 1, config)
    assert result.violations == ()
    assert "packet-conservation" not in result.monitor_skips
