"""Mutation tests: deliberately broken protocol logic must be caught.

The validation subsystem's job is to notice when the simulator is wrong.
These tests prove it can, by monkeypatching a classic implementation bug
into the distance-vector advertisement path and asserting that at least
one monitor (or the differential oracle) flags the run.

The injected bug inverts the split-horizon check in
``DistanceVectorProtocol._advertised_metric``: routes are poisoned toward
every neighbor *except* the current next hop (the exact opposite of
poison reverse).  Two observable consequences:

* neighbors adopt each other's routes through each other — transient
  two-node forwarding loops that RIP, by design, must never form
  (Observation 2), caught online by the FIB-loop monitor;
* good news stops propagating after the failure, so the network either
  never quiesces or settles on wrong metrics, caught by the
  RIB-consistency diff against the SPF oracle.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario
from repro.routing.dv_common import DistanceVectorProtocol
from repro.validation.monitors import MonitorSuite


def _inverted_split_horizon(self, dest, neighbor):
    route = self.table[dest]
    if route.next_hop != neighbor:  # inverted: poisons everyone else
        return self.config.infinity
    return min(route.metric, self.config.infinity)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_broken_split_horizon_is_caught(monkeypatch, seed):
    monkeypatch.setattr(
        DistanceVectorProtocol, "_advertised_metric", _inverted_split_horizon
    )
    suite = MonitorSuite()
    result = run_scenario("rip", 3, seed, ExperimentConfig.quick(), monitors=suite)
    assert result.violations, (
        "inverted split horizon went unnoticed by every monitor"
    )
    assert any("[fib-loop]" in v for v in result.violations), result.violations[:3]


def test_clean_split_horizon_stays_clean():
    # Control: the same scenario without the mutation raises nothing, so the
    # detection above is attributable to the injected bug.
    suite = MonitorSuite()
    result = run_scenario("rip", 3, 1, ExperimentConfig.quick(), monitors=suite)
    assert result.violations == ()
