"""Scenario fuzzer unit tests: determinism, shrinking, round-tripping."""

from __future__ import annotations

from dataclasses import replace

from repro.validation.fuzz import (
    FuzzCase,
    fuzz,
    generate_case,
    run_case,
    shrink,
)


def test_generate_case_is_deterministic_and_independent():
    # Regenerating any index must not require replaying the stream.
    stream = [generate_case(7, i) for i in range(10)]
    assert [generate_case(7, i) for i in range(10)] == stream
    assert generate_case(7, 9) == stream[9]
    # Different master seeds give different streams.
    assert [generate_case(8, i) for i in range(10)] != stream


def test_case_round_trips_through_dict():
    case = generate_case(3, 4)
    assert FuzzCase.from_dict(case.as_dict()) == case


def test_case_config_is_valid_and_matches_dimensions():
    for i in range(20):
        case = generate_case(1, i)
        config = case.config()  # __post_init__ validates
        assert config.degrees == (case.degree,)
        assert config.rows == case.rows and config.cols == case.cols
        assert config.post_fail_window == case.post_fail_window


def test_run_case_clean_scenario():
    outcome = run_case(generate_case(1, 0))
    assert outcome.error is None
    assert outcome.violations == ()
    assert not outcome.failed


def test_fuzz_reports_aggregate():
    report = fuzz(master_seed=1, n_cases=3)
    assert len(report.outcomes) == 3
    assert report.ok
    assert "[OK]" in report.summary()


def test_shrink_minimizes_with_synthetic_predicate():
    case = replace(
        generate_case(1, 0),
        rows=7,
        cols=7,
        rate_pps=20.0,
        post_fail_window=50.0,
        fail_time=12.5,
        prioritize_control=True,
    )
    # Failure reproduces whenever the mesh is at least 6 rows tall: the
    # shrinker must strip every irrelevant dimension but stop at rows=6.
    runs = []

    def still_fails(candidate):
        runs.append(candidate)
        return candidate.rows >= 6

    minimal = shrink(case, still_fails=still_fails)
    assert minimal.rows == 6
    assert minimal.cols == 5
    assert minimal.rate_pps == 5.0
    assert minimal.post_fail_window == 30.0
    assert minimal.fail_time == 10.0
    assert minimal.prioritize_control is False


def test_shrink_respects_run_budget():
    calls = []

    def always_fails(candidate):
        calls.append(candidate)
        return True

    shrink(generate_case(1, 1), still_fails=always_fails, max_runs=5)
    assert len(calls) <= 5
