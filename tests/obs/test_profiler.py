"""Phase profiler: span nesting, engine attribution, and the disabled path."""

from __future__ import annotations

from repro.obs.profiler import NULL_PROFILER, PhaseProfiler
from repro.sim.engine import Simulator


class TestSpans:
    def test_spans_nest_into_a_tree(self):
        prof = PhaseProfiler()
        with prof.span("outer"):
            with prof.span("inner_a"):
                pass
            with prof.span("inner_b"):
                pass
        root = prof.finish()
        assert root.name == "total"
        (outer,) = root.children
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]

    def test_wall_time_accumulates_and_nests(self):
        prof = PhaseProfiler()
        with prof.span("outer"):
            with prof.span("inner"):
                sum(range(1000))
        root = prof.finish()
        outer = root.children[0]
        inner = outer.children[0]
        assert 0.0 <= inner.wall_s <= outer.wall_s <= root.wall_s

    def test_engine_attribution_measures_span_deltas(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(0.1 * (i + 1), lambda: None)
        prof = PhaseProfiler()
        with prof.span("first", sim=sim):
            sim.run(until=0.55)
        with prof.span("rest", sim=sim):
            sim.run()
        first, rest = prof.finish().children
        assert first.events == 5
        assert rest.events == 5
        assert first.sim_s == 0.55
        assert rest.sim_s == 1.0 - 0.55
        assert first.run_wall_s >= 0.0
        assert first.events_per_sec >= 0.0

    def test_span_without_sim_has_no_attribution(self):
        prof = PhaseProfiler()
        with prof.span("plain"):
            pass
        (span,) = prof.finish().children
        assert span.events is None
        assert span.to_dict() == {"name": "plain", "wall_s": span.wall_s}

    def test_to_dict_includes_children_and_attribution(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None)
        prof = PhaseProfiler()
        with prof.span("run", sim=sim):
            sim.run()
        d = prof.to_dict()
        assert d["name"] == "total"
        child = d["children"][0]
        assert child["name"] == "run"
        assert child["events"] == 1
        assert child["sim_s"] == 0.1


class TestDisabled:
    def test_null_profiler_hands_out_one_shared_noop_span(self):
        a = NULL_PROFILER.span("x")
        b = NULL_PROFILER.span("y", sim=object())
        assert a is b
        with a:
            pass
        assert NULL_PROFILER.root.children == []

    def test_disabled_profiler_records_nothing(self):
        prof = PhaseProfiler(enabled=False)
        with prof.span("phase"):
            pass
        assert prof.finish().children == []
        assert prof.to_dict() == {"name": "total", "wall_s": 0.0}


class TestMemoryTracing:
    def test_top_level_spans_get_memory_peaks(self):
        prof = PhaseProfiler(trace_memory=True)
        with prof.span("alloc"):
            _ = [list(range(100)) for _ in range(100)]
        root = prof.finish()
        (span,) = root.children
        assert span.mem_peak_kb is not None
        assert span.mem_peak_kb > 0.0

    def test_memory_tracing_off_by_default(self):
        prof = PhaseProfiler()
        with prof.span("alloc"):
            _ = list(range(1000))
        (span,) = prof.finish().children
        assert span.mem_peak_kb is None
