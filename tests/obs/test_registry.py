"""Unit and mutation tests for the typed metrics registry.

The mutation tests follow ``tests/validation/test_bug_injection.py``:
deliberately corrupt an internal invariant (here: a histogram bucket
boundary), assert ``self_check`` reports it, and keep a clean control run
beside every corruption so the check is known to be quiet on healthy data.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("events")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increment(self):
        c = Counter("events")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_as_dict(self):
        c = Counter("events")
        c.inc(3)
        assert c.as_dict() == {"kind": "counter", "value": 3}


class TestGauge:
    def test_tracks_value_and_high_water_mark(self):
        g = Gauge("depth")
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.hwm == 5.0

    def test_as_dict(self):
        g = Gauge("depth")
        g.set(1.5)
        assert g.as_dict() == {"kind": "gauge", "value": 1.5, "hwm": 1.5}


class TestHistogram:
    def test_observe_places_values_in_buckets(self):
        h = Histogram("lat", bounds=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 10.0, 99.0):
            h.observe(v)
        # bisect_right: a value equal to a bound starts the next bucket,
        # so bucket i covers [bounds[i-1], bounds[i]).
        assert h.counts == [1, 2, 0, 2]
        assert h.count == 5
        assert h.total == pytest.approx(113.5)
        assert h.mean == pytest.approx(113.5 / 5)

    def test_overflow_bucket_catches_everything_above_last_bound(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(1e9)
        assert h.counts == [0, 1]

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=())

    def test_rejects_non_monotonic_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(1.0, 1.0, 2.0))

    def test_default_buckets_are_valid(self):
        h = Histogram("lat")
        assert h.bounds == DEFAULT_BUCKETS
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1


class TestRegistry:
    def test_create_or_get_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_get_returns_none_for_unknown(self):
        assert MetricsRegistry().get("nope") is None

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"] == {"kind": "counter", "value": 1}

    def test_len_and_iter(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert len(reg) == 2
        assert [m.name for m in reg] == ["a", "b"]


class TestSelfCheckMutations:
    """Corrupt one invariant at a time; the audit must name each."""

    @staticmethod
    def _healthy_registry() -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("events").inc(10)
        g = reg.gauge("depth")
        g.set(3.0)
        h = reg.histogram("lat", bounds=(1.0, 5.0, 10.0))
        for v in (0.5, 2.0, 7.0, 50.0):
            h.observe(v)
        return reg

    def test_clean_registry_passes_the_audit(self):
        # Control: the same registry every mutation below starts from.
        assert self._healthy_registry().self_check() == []

    def test_corrupted_bucket_boundary_is_detected(self):
        reg = self._healthy_registry()
        h = reg.get("lat")
        # Simulated corruption: the middle bucket boundary collapses below
        # its predecessor (a bad deserialization or a stray write).
        h.bounds = (1.0, 0.5, 10.0)
        problems = reg.self_check()
        assert any("strictly" in p and "'lat'" in p for p in problems)

    def test_bucket_count_length_mismatch_is_detected(self):
        reg = self._healthy_registry()
        reg.get("lat").counts.append(0)
        problems = reg.self_check()
        assert any("buckets" in p for p in problems)

    def test_negative_bucket_count_is_detected(self):
        reg = self._healthy_registry()
        h = reg.get("lat")
        h.counts[1] -= 2  # keeps the length right, breaks non-negativity
        problems = reg.self_check()
        assert any("negative bucket" in p for p in problems)

    def test_bucket_sum_vs_count_disagreement_is_detected(self):
        reg = self._healthy_registry()
        reg.get("lat").count += 1
        problems = reg.self_check()
        assert any("sum to" in p for p in problems)

    def test_negative_counter_is_detected(self):
        reg = self._healthy_registry()
        reg.get("events").value = -1
        problems = reg.self_check()
        assert any("counter" in p and "negative" in p for p in problems)

    def test_gauge_hwm_below_value_is_detected(self):
        reg = self._healthy_registry()
        reg.get("depth").hwm = 1.0  # value is 3.0
        problems = reg.self_check()
        assert any("high-water" in p for p in problems)

    def test_each_mutation_reports_exactly_its_own_problem(self):
        # The audit localizes: corrupting 'lat' never implicates 'events'.
        reg = self._healthy_registry()
        reg.get("lat").bounds = (5.0, 1.0, 10.0)
        problems = reg.self_check()
        assert len(problems) == 1
        assert "'lat'" in problems[0]


class TestSerialization:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("events").inc(42)
        g = reg.gauge("depth")
        g.set(5.0)
        g.set(2.0)
        h = reg.histogram("lat", bounds=(1.0, 5.0))
        for v in (0.5, 3.0, 99.0):
            h.observe(v)
        return reg

    def test_to_dict_from_dict_round_trips(self):
        reg = self._populated()
        rebuilt = MetricsRegistry.from_dict(reg.to_dict())
        assert rebuilt.to_dict() == reg.to_dict()
        assert rebuilt.self_check() == []

    def test_round_trip_survives_json(self):
        import json

        reg = self._populated()
        payload = json.loads(json.dumps(reg.to_dict()))
        assert MetricsRegistry.from_dict(payload).to_dict() == reg.to_dict()

    def test_disabled_flag_round_trips(self):
        reg = MetricsRegistry(enabled=False)
        assert MetricsRegistry.from_dict(reg.to_dict()).enabled is False

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            MetricsRegistry.from_dict(
                {"enabled": True, "metrics": {"x": {"kind": "summary"}}}
            )

    def test_bucket_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="buckets"):
            MetricsRegistry.from_dict(
                {
                    "enabled": True,
                    "metrics": {
                        "lat": {
                            "kind": "histogram",
                            "bounds": [1.0, 5.0],
                            "counts": [0, 1],  # needs len(bounds) + 1 == 3
                            "count": 1,
                            "total": 3.0,
                        }
                    },
                }
            )


class TestMerge:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("events").inc(10)
        b.counter("events").inc(32)
        b.counter("only_b").inc(1)
        a.merge(b)
        assert a.get("events").value == 42
        assert a.get("only_b").value == 1

    def test_gauges_take_the_max_of_value_and_hwm(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ga = a.gauge("depth")
        ga.set(9.0)
        ga.set(3.0)  # value 3, hwm 9
        gb = b.gauge("depth")
        gb.set(5.0)  # value 5, hwm 5
        a.merge(b)
        assert a.get("depth").value == 5.0
        assert a.get("depth").hwm == 9.0

    def test_gauge_absent_on_self_copies_both_fields(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        gb = b.gauge("depth")
        gb.set(7.0)
        gb.set(2.0)
        a.merge(b)
        assert (a.get("depth").value, a.get("depth").hwm) == (2.0, 7.0)

    def test_histograms_add_elementwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("lat", bounds=(1.0, 5.0))
        hb = b.histogram("lat", bounds=(1.0, 5.0))
        for v in (0.5, 3.0):
            ha.observe(v)
        for v in (3.0, 99.0):
            hb.observe(v)
        a.merge(b)
        merged = a.get("lat")
        assert merged.counts == [1, 2, 1]
        assert merged.count == 4
        assert merged.total == pytest.approx(105.5)

    def test_histogram_bounds_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", bounds=(1.0, 5.0))
        b.histogram("lat", bounds=(1.0, 10.0))
        with pytest.raises(ValueError, match="bounds mismatch"):
            a.merge(b)

    def test_name_type_collision_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x").set(1.0)
        with pytest.raises(ValueError, match="already registered"):
            a.merge(b)

    def test_merge_returns_self(self):
        a = MetricsRegistry()
        assert a.merge(MetricsRegistry()) is a


class TestMergeProperties:
    """Merge of arbitrary splits == the unsharded registry."""

    @staticmethod
    def _apply(reg: MetricsRegistry, ops) -> None:
        for kind, amount in ops:
            if kind == "counter":
                reg.counter("events").inc(amount)
            elif kind == "gauge":
                reg.gauge("depth").set(float(amount))
            else:
                reg.histogram("lat", bounds=(1.0, 5.0, 25.0)).observe(
                    float(amount)
                )

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["counter", "gauge", "hist"]),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=60,
        ),
        n_shards=st.integers(min_value=1, max_value=4),
    )
    def test_merge_of_splits_equals_unsharded(self, ops, n_shards):
        # Counters and histograms are extensive, so any round-robin split
        # of the operation stream must merge back to the whole.  Gauges are
        # last-value/max, so the property pins hwm (order-free) and checks
        # the merged value is the max over the shards' final values.
        whole = MetricsRegistry()
        self._apply(whole, ops)

        shards = [MetricsRegistry() for _ in range(n_shards)]
        for i, op in enumerate(ops):
            self._apply(shards[i % n_shards], [op])
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge(shard)

        assert merged.self_check() == []
        whole_snap, merged_snap = whole.snapshot(), merged.snapshot()
        assert sorted(whole_snap) == sorted(merged_snap)
        for name, data in whole_snap.items():
            if data["kind"] == "gauge":
                finals = [
                    s.get(name).value for s in shards if s.get(name) is not None
                ]
                assert merged_snap[name]["hwm"] == data["hwm"]
                assert merged_snap[name]["value"] == max(finals)
            else:
                assert merged_snap[name] == data

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["counter", "gauge", "hist"]),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=40,
        )
    )
    def test_merge_round_trips_through_dict(self, ops):
        # Serializing each shard and merging the deserialized copies gives
        # the same registry — the coordinator's actual aggregation path.
        reg = MetricsRegistry()
        self._apply(reg, ops)
        rebuilt = MetricsRegistry().merge(
            MetricsRegistry.from_dict(reg.to_dict())
        )
        assert rebuilt.snapshot() == reg.snapshot()
