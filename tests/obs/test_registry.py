"""Unit and mutation tests for the typed metrics registry.

The mutation tests follow ``tests/validation/test_bug_injection.py``:
deliberately corrupt an internal invariant (here: a histogram bucket
boundary), assert ``self_check`` reports it, and keep a clean control run
beside every corruption so the check is known to be quiet on healthy data.
"""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("events")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increment(self):
        c = Counter("events")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_as_dict(self):
        c = Counter("events")
        c.inc(3)
        assert c.as_dict() == {"kind": "counter", "value": 3}


class TestGauge:
    def test_tracks_value_and_high_water_mark(self):
        g = Gauge("depth")
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.hwm == 5.0

    def test_as_dict(self):
        g = Gauge("depth")
        g.set(1.5)
        assert g.as_dict() == {"kind": "gauge", "value": 1.5, "hwm": 1.5}


class TestHistogram:
    def test_observe_places_values_in_buckets(self):
        h = Histogram("lat", bounds=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 10.0, 99.0):
            h.observe(v)
        # bisect_right: a value equal to a bound starts the next bucket,
        # so bucket i covers [bounds[i-1], bounds[i]).
        assert h.counts == [1, 2, 0, 2]
        assert h.count == 5
        assert h.total == pytest.approx(113.5)
        assert h.mean == pytest.approx(113.5 / 5)

    def test_overflow_bucket_catches_everything_above_last_bound(self):
        h = Histogram("lat", bounds=(1.0,))
        h.observe(1e9)
        assert h.counts == [0, 1]

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=())

    def test_rejects_non_monotonic_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(1.0, 1.0, 2.0))

    def test_default_buckets_are_valid(self):
        h = Histogram("lat")
        assert h.bounds == DEFAULT_BUCKETS
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1


class TestRegistry:
    def test_create_or_get_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_get_returns_none_for_unknown(self):
        assert MetricsRegistry().get("nope") is None

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"] == {"kind": "counter", "value": 1}

    def test_len_and_iter(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert len(reg) == 2
        assert [m.name for m in reg] == ["a", "b"]


class TestSelfCheckMutations:
    """Corrupt one invariant at a time; the audit must name each."""

    @staticmethod
    def _healthy_registry() -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("events").inc(10)
        g = reg.gauge("depth")
        g.set(3.0)
        h = reg.histogram("lat", bounds=(1.0, 5.0, 10.0))
        for v in (0.5, 2.0, 7.0, 50.0):
            h.observe(v)
        return reg

    def test_clean_registry_passes_the_audit(self):
        # Control: the same registry every mutation below starts from.
        assert self._healthy_registry().self_check() == []

    def test_corrupted_bucket_boundary_is_detected(self):
        reg = self._healthy_registry()
        h = reg.get("lat")
        # Simulated corruption: the middle bucket boundary collapses below
        # its predecessor (a bad deserialization or a stray write).
        h.bounds = (1.0, 0.5, 10.0)
        problems = reg.self_check()
        assert any("strictly" in p and "'lat'" in p for p in problems)

    def test_bucket_count_length_mismatch_is_detected(self):
        reg = self._healthy_registry()
        reg.get("lat").counts.append(0)
        problems = reg.self_check()
        assert any("buckets" in p for p in problems)

    def test_negative_bucket_count_is_detected(self):
        reg = self._healthy_registry()
        h = reg.get("lat")
        h.counts[1] -= 2  # keeps the length right, breaks non-negativity
        problems = reg.self_check()
        assert any("negative bucket" in p for p in problems)

    def test_bucket_sum_vs_count_disagreement_is_detected(self):
        reg = self._healthy_registry()
        reg.get("lat").count += 1
        problems = reg.self_check()
        assert any("sum to" in p for p in problems)

    def test_negative_counter_is_detected(self):
        reg = self._healthy_registry()
        reg.get("events").value = -1
        problems = reg.self_check()
        assert any("counter" in p and "negative" in p for p in problems)

    def test_gauge_hwm_below_value_is_detected(self):
        reg = self._healthy_registry()
        reg.get("depth").hwm = 1.0  # value is 3.0
        problems = reg.self_check()
        assert any("high-water" in p for p in problems)

    def test_each_mutation_reports_exactly_its_own_problem(self):
        # The audit localizes: corrupting 'lat' never implicates 'events'.
        reg = self._healthy_registry()
        reg.get("lat").bounds = (5.0, 1.0, 10.0)
        problems = reg.self_check()
        assert len(problems) == 1
        assert "'lat'" in problems[0]
