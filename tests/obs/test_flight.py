"""Tests for the packet flight recorder, autopsies, timelines, and dumps."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario
from repro.obs.flight import (
    DEFAULT_CAPACITIES,
    DUMP_KIND,
    DUMP_SCHEMA_VERSION,
    FlightRecorder,
    Ring,
    build_causal_timeline,
    build_dump,
    check_dump,
    dump_records,
    format_autopsy,
    format_causal_timeline,
    load_dump,
    packet_autopsies,
    packet_autopsy,
    perfetto_trace,
    save_dump,
    write_perfetto,
)
from repro.routing.dv_common import DistanceVectorProtocol
from repro.sim.tracing import (
    TRACE_KINDS,
    DropCause,
    LinkEventRecord,
    MessageRecord,
    PacketRecord,
    RouteChangeRecord,
    TraceBus,
)
from repro.validation.monitors import MonitorSuite


def pkt(t, kind, node, pid=1, ttl=60, cause=None, dst=9, flow=0):
    return PacketRecord(
        time=t, kind=kind, packet_id=pid, node=node, flow_id=flow,
        ttl=ttl, cause=cause, dst=dst,
    )


def route(t, node, dest, old, new, cause=None):
    return RouteChangeRecord(
        time=t, node=node, dest=dest, old_next_hop=old, new_next_hop=new,
        cause=cause,
    )


def msg(t, sender, receiver, protocol="rip"):
    return MessageRecord(
        time=t, sender=sender, receiver=receiver, protocol=protocol, n_routes=1
    )


class TestRing:
    @pytest.mark.parametrize("capacity", [0, -1])
    def test_rejects_non_positive_capacity(self, capacity):
        with pytest.raises(ValueError):
            Ring(capacity)

    def test_keeps_exactly_the_newest_n(self):
        ring = Ring(3)
        for i in range(10):
            ring.append(i)
        assert ring.records() == [7, 8, 9]
        assert ring.appended == 10
        assert ring.evicted == 7
        assert len(ring) == 3

    def test_under_capacity_keeps_everything(self):
        ring = Ring(5)
        ring.append("a")
        ring.append("b")
        assert ring.records() == ["a", "b"]
        assert ring.evicted == 0

    def test_clear_resets_counters(self):
        ring = Ring(2)
        ring.append(1)
        ring.append(2)
        ring.append(3)
        ring.clear()
        assert ring.records() == []
        assert ring.appended == 0
        assert ring.evicted == 0

    def test_iterates_oldest_first(self):
        ring = Ring(2)
        for i in range(4):
            ring.append(i)
        assert list(ring) == [2, 3]


class TestFlightRecorder:
    def _quiet_bus(self):
        return TraceBus(
            keep_packets=False, keep_routes=False, keep_messages=False,
            keep_links=False,
        )

    def test_default_capacities_cover_every_kind(self):
        recorder = FlightRecorder()
        assert set(recorder.rings) == set(TRACE_KINDS)
        for kind in TRACE_KINDS:
            assert recorder.rings[kind].capacity == DEFAULT_CAPACITIES[kind]

    def test_rejects_unknown_capacity_kind(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacities={"quic": 16})

    def test_attach_flips_every_wants_guard(self):
        bus = self._quiet_bus()
        assert not any(bus.wants(kind) for kind in TRACE_KINDS)
        recorder = FlightRecorder()
        recorder.attach(bus)
        assert all(bus.wants(kind) for kind in TRACE_KINDS)
        recorder.close()
        assert not any(bus.wants(kind) for kind in TRACE_KINDS)

    def test_records_each_kind_into_its_ring(self):
        bus = self._quiet_bus()
        with FlightRecorder() as recorder:
            recorder.attach(bus)
            bus.publish(pkt(0.1, "send", 0))
            bus.publish(route(0.2, 1, 9, None, 2))
            bus.publish(LinkEventRecord(time=0.3, node_a=0, node_b=1, up=False))
            bus.publish(msg(0.4, 0, 1))
        assert [len(recorder.rings[k]) for k in TRACE_KINDS] == [1, 1, 1, 1]

    def test_double_attach_raises(self):
        recorder = FlightRecorder()
        recorder.attach(self._quiet_bus())
        with pytest.raises(RuntimeError):
            recorder.attach(self._quiet_bus())

    def test_close_is_idempotent_and_rings_stay_readable(self):
        bus = self._quiet_bus()
        recorder = FlightRecorder()
        recorder.attach(bus)
        bus.publish(pkt(0.1, "send", 0))
        recorder.close()
        recorder.close()
        assert not recorder.attached
        assert len(recorder.records("packet")) == 1
        bus.publish(pkt(0.2, "forward", 1))
        assert len(recorder.records("packet")) == 1  # detached: nothing lands

    def test_capacity_override_evicts_oldest(self):
        bus = self._quiet_bus()
        recorder = FlightRecorder(capacities={"packet": 2})
        recorder.attach(bus)
        for i in range(5):
            bus.publish(pkt(float(i), "forward", i, pid=i))
        recorder.close()
        assert [r.packet_id for r in recorder.records("packet")] == [3, 4]
        assert recorder.rings["packet"].evicted == 3

    def test_packet_ids_first_seen_order(self):
        bus = self._quiet_bus()
        recorder = FlightRecorder()
        recorder.attach(bus)
        for pid in (7, 3, 7, 5):
            bus.publish(pkt(0.1, "forward", 0, pid=pid))
        recorder.close()
        assert recorder.packet_ids() == [7, 3, 5]


class TestPacketAutopsy:
    def test_delivered_walk(self):
        records = [
            pkt(1.0, "send", 0, ttl=64),
            pkt(1.1, "forward", 1, ttl=63),
            pkt(1.2, "forward", 2, ttl=62),
            pkt(1.3, "deliver", 9, ttl=62),
        ]
        a = packet_autopsy(records, 1)
        assert a.outcome == "delivered"
        assert a.drop_cause is None
        assert a.path == (0, 1, 2, 9)
        assert a.n_hops == 3
        assert a.loop is None
        assert not a.truncated
        assert a.dst == 9

    def test_drop_cause_reported(self):
        records = [
            pkt(1.0, "send", 0),
            pkt(1.1, "drop", 3, cause=DropCause.NO_ROUTE),
        ]
        a = packet_autopsy(records, 1)
        assert a.outcome == "dropped"
        assert a.drop_cause is DropCause.NO_ROUTE

    def test_loop_detected(self):
        records = [
            pkt(1.0, "send", 0, ttl=5),
            pkt(1.1, "forward", 1, ttl=4),
            pkt(1.2, "forward", 2, ttl=3),
            pkt(1.3, "forward", 1, ttl=2),
            pkt(1.4, "forward", 2, ttl=1),
            pkt(1.5, "drop", 1, ttl=0, cause=DropCause.TTL_EXPIRED),
        ]
        a = packet_autopsy(records, 1)
        assert a.loop == (1, 2, 1)
        assert a.drop_cause is DropCause.TTL_EXPIRED

    def test_consecutive_duplicate_nodes_collapse(self):
        # A deliver happens on the same node as the last forward.
        records = [
            pkt(1.0, "send", 0),
            pkt(1.1, "forward", 9),
            pkt(1.1, "deliver", 9),
        ]
        a = packet_autopsy(records, 1)
        assert a.path == (0, 9)
        assert a.loop is None

    def test_truncated_when_send_evicted(self):
        records = [pkt(1.1, "forward", 3), pkt(1.2, "deliver", 9)]
        a = packet_autopsy(records, 1)
        assert a.truncated
        assert a.outcome == "delivered"

    def test_in_flight_when_no_terminal_record(self):
        a = packet_autopsy([pkt(1.0, "send", 0), pkt(1.1, "forward", 1)], 1)
        assert a.outcome == "in_flight"

    def test_missing_packet_raises_keyerror(self):
        with pytest.raises(KeyError):
            packet_autopsy([pkt(1.0, "send", 0, pid=1)], 42)

    def test_fib_entry_reconstructed_per_hop(self):
        routes = [
            route(0.0, 0, 9, None, 1),
            route(0.0, 1, 9, None, 2),
            route(1.05, 1, 9, 2, 4),  # node 1 flips mid-flight
        ]
        records = [pkt(1.0, "send", 0), pkt(1.1, "forward", 1)]
        a = packet_autopsy(records, 1, route_changes=routes)
        assert a.hops[0].fib_next_hop == 1
        assert a.hops[1].fib_next_hop == 4  # sees the post-flip entry

    def test_fib_unknown_without_route_records(self):
        a = packet_autopsy([pkt(1.0, "send", 0)], 1)
        assert a.hops[0].fib_next_hop is None

    def test_autopsies_groups_interleaved_packets(self):
        records = [
            pkt(1.0, "send", 0, pid=1),
            pkt(1.0, "send", 0, pid=2),
            pkt(1.2, "deliver", 9, pid=2),
            pkt(1.1, "drop", 1, pid=1, cause=DropCause.LINK_DOWN),
        ]
        out = packet_autopsies(records)
        assert set(out) == {1, 2}
        assert out[1].outcome == "dropped"
        assert out[2].outcome == "delivered"

    def test_format_autopsy_mentions_the_story(self):
        records = [
            pkt(1.0, "send", 0, ttl=3),
            pkt(1.1, "forward", 1, ttl=2),
            pkt(1.2, "forward", 0, ttl=1),
            pkt(1.3, "drop", 1, ttl=0, cause=DropCause.TTL_EXPIRED),
        ]
        text = format_autopsy(packet_autopsy(records, 1), origin=1.0)
        assert "dropped (ttl_expired)" in text
        assert "loop: 0 -> 1 -> 0" in text
        assert "+0.100s" in text


class TestCausalTimeline:
    def test_message_trigger_matched_latest_at_or_before(self):
        messages = [msg(1.0, 2, 1), msg(2.0, 2, 1), msg(9.0, 2, 1)]
        flips = build_causal_timeline(
            [route(2.5, 1, 9, None, 2, cause=("message", 2))],
            messages=messages,
        ).flips
        assert flips[0].trigger is messages[1]

    def test_trigger_needs_matching_adjacency(self):
        timeline = build_causal_timeline(
            [route(2.5, 1, 9, None, 2, cause=("message", 2))],
            messages=[msg(2.0, 3, 1), msg(2.0, 2, 4)],  # wrong sender / receiver
        )
        assert timeline.flips[0].trigger is None

    def test_link_cause_has_no_message_trigger(self):
        timeline = build_causal_timeline(
            [route(2.5, 1, 9, 2, None, cause=("link_down", 2))],
            messages=[msg(2.0, 2, 1)],
        )
        assert timeline.flips[0].trigger is None

    def test_wave_ordered_by_first_change(self):
        timeline = build_causal_timeline(
            [
                route(3.0, 5, 9, None, 1),
                route(1.0, 7, 9, None, 1),
                route(4.0, 7, 9, 1, 2),
                route(2.0, 6, 9, None, 1),
            ]
        )
        assert [a.node for a in timeline.wave] == [7, 6, 5]
        seven = timeline.wave[0]
        assert (seven.first_change, seven.last_change, seven.n_changes) == (1.0, 4.0, 2)
        assert timeline.first_change == 1.0
        assert timeline.converged_at == 4.0

    def test_since_and_dest_filters(self):
        timeline = build_causal_timeline(
            [
                route(1.0, 1, 9, None, 2),
                route(5.0, 1, 8, None, 2),
                route(6.0, 1, 9, 2, 3),
            ],
            link_events=[
                LinkEventRecord(time=0.5, node_a=0, node_b=1, up=False),
                LinkEventRecord(time=4.5, node_a=0, node_b=1, up=True),
            ],
            since=4.0,
            dest=9,
        )
        assert [f.record.time for f in timeline.flips] == [6.0]
        assert [e.time for e in timeline.links] == [4.5]

    def test_empty_timeline_has_no_convergence_time(self):
        timeline = build_causal_timeline([])
        assert timeline.first_change is None
        assert timeline.converged_at is None
        assert "(no routing activity)" in format_causal_timeline(timeline)

    def test_format_names_causes_and_wave(self):
        messages = [msg(2.0, 2, 1)]
        timeline = build_causal_timeline(
            [
                route(2.5, 1, 9, None, 2, cause=("message", 2)),
                route(3.0, 4, 9, 2, None, cause=("link_down", 2)),
            ],
            messages=messages,
            link_events=[LinkEventRecord(time=2.4, node_a=1, node_b=2, up=False)],
        )
        text = format_causal_timeline(timeline, origin=2.0)
        assert "link (1, 2) FAILED" in text
        assert "[message from 2 (rip sent t=+0.000s)]" in text
        assert "[link_down 2]" in text
        assert "update wave" in text
        assert "last FIB change t=+1.000s" in text


def _populated_recorder():
    bus = TraceBus(
        keep_packets=False, keep_routes=False, keep_messages=False,
        keep_links=False,
    )
    recorder = FlightRecorder(capacities={"packet": 4})
    recorder.attach(bus)
    for i in range(6):  # overflow the packet ring
        bus.publish(pkt(float(i), "forward", i, pid=i))
    bus.publish(route(1.0, 1, 9, None, 2, cause=("message", 2)))
    bus.publish(LinkEventRecord(time=0.5, node_a=0, node_b=1, up=False))
    bus.publish(msg(0.9, 2, 1))
    recorder.close()
    return recorder


class TestDumps:
    def test_dump_shape_and_ring_accounting(self):
        dump = build_dump(
            _populated_recorder(),
            meta={"protocol": "rip"},
            violations=["[fib-loop] t=1.0: boom"],
            counters={"sends": 6},
        )
        assert dump["schema_version"] == DUMP_SCHEMA_VERSION
        assert dump["kind"] == DUMP_KIND
        assert dump["meta"] == {"protocol": "rip"}
        assert dump["violations"] == ["[fib-loop] t=1.0: boom"]
        assert dump["counters"] == {"sends": 6}
        ring = dump["rings"]["packet"]
        assert ring["capacity"] == 4
        assert ring["appended"] == 6
        assert len(ring["records"]) == 4

    def test_save_load_save_byte_identical(self, tmp_path):
        dump = build_dump(_populated_recorder(), meta={"seed": 7})
        first = tmp_path / "dump.json"
        second = tmp_path / "dump2.json"
        save_dump(dump, str(first))
        save_dump(load_dump(str(first)), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_dump_records_round_trip(self, tmp_path):
        recorder = _populated_recorder()
        path = tmp_path / "dump.json"
        save_dump(build_dump(recorder), str(path))
        decoded = dump_records(load_dump(str(path)))
        assert decoded["packet"] == recorder.records("packet")
        assert decoded["route"] == recorder.records("route")
        assert decoded["link"] == recorder.records("link")
        assert decoded["message"] == recorder.records("message")

    def test_dump_records_skips_unknown_kind_with_warning(self):
        dump = build_dump(_populated_recorder())
        dump["rings"]["packet"]["records"].append({"type": "quic", "time": 99.0})
        with pytest.warns(UserWarning, match="quic"):
            decoded = dump_records(dump)
        assert len(decoded["packet"]) == 4  # the bad record was dropped

    def test_check_dump_accepts_a_real_dump(self, tmp_path):
        path = tmp_path / "dump.json"
        save_dump(build_dump(_populated_recorder()), str(path))
        assert check_dump(load_dump(str(path))) == []

    def test_check_dump_rejects_non_object(self):
        assert check_dump([1, 2]) == ["dump must be a JSON object"]

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d.update(kind="nope"), "kind"),
            (lambda d: d.update(meta=3), "meta"),
            (lambda d: d.update(violations=[1]), "violations"),
            (lambda d: d.update(counters={"sends": -1}), "counters['sends']"),
            (lambda d: d["rings"].pop("link"), "missing kind 'link'"),
            (lambda d: d["rings"].update(quic={}), "unknown kinds"),
            (lambda d: d["rings"]["route"].update(capacity=0), "capacity"),
        ],
    )
    def test_check_dump_flags_structural_damage(self, mutate, needle):
        dump = build_dump(_populated_recorder(), counters={"sends": 6})
        mutate(dump)
        problems = check_dump(dump)
        assert any(needle in p for p in problems), problems

    def test_check_dump_flags_ring_invariant_violations(self):
        dump = build_dump(_populated_recorder())
        ring = dump["rings"]["packet"]
        ring["records"].append(ring["records"][0])  # over capacity + backwards
        problems = check_dump(dump)
        assert any("capacity" in p for p in problems)
        assert any("goes backwards" in p for p in problems)

    def test_check_dump_flags_wrong_record_type(self):
        dump = build_dump(_populated_recorder())
        dump["rings"]["route"]["records"][0]["type"] = "packet"
        problems = check_dump(dump)
        assert any("'type' must be 'route'" in p for p in problems)


class TestPerfetto:
    def _trace(self):
        return perfetto_trace(
            packets=[pkt(1.0, "send", 0), pkt(1.1, "forward", 1)],
            route_changes=[route(1.05, 1, 9, None, 2, cause=("message", 2))],
            link_events=[LinkEventRecord(time=0.9, node_a=0, node_b=1, up=False)],
            messages=[msg(0.95, 2, 1)],
        )

    def test_required_keys_present(self):
        trace = self._trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        for ev in trace["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(ev)

    def test_instant_events_monotonic_microseconds(self):
        events = [e for e in self._trace()["traceEvents"] if e["ph"] == "i"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert ts[0] == 900000.0  # 0.9s link failure, in microseconds

    def test_pid_tid_are_node_ids(self):
        trace = self._trace()
        node_ids = {0, 1, 2, 9}  # 9 never emits an event, only appears as dest
        for ev in trace["traceEvents"]:
            assert ev["pid"] == ev["tid"]
            assert ev["pid"] in node_ids

    def test_metadata_names_every_emitting_node(self):
        meta = [e for e in self._trace()["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {0, 1, 2}
        assert all(e["name"] == "process_name" for e in meta)

    def test_write_perfetto_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_perfetto(self._trace(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded == self._trace()


GOLDEN_CONFIG = ExperimentConfig.quick().with_(
    rows=5, cols=5, runs=1, post_fail_window=30.0, record_paths=True
)

_RESULT_FIELDS = (
    "sent",
    "delivered",
    "drops_no_route",
    "drops_ttl",
    "drops_link_down",
    "drops_queue",
    "routing_convergence",
    "destination_convergence",
    "forwarding_convergence",
    "converged_to_expected",
    "transient_path_count",
    "messages",
    "withdrawals",
    "sender",
    "receiver",
    "failed_link",
    "pre_failure_path",
    "expected_final_path",
)


class TestRecorderIsInvisible:
    """The recorder must not perturb the physics it observes."""

    @pytest.mark.parametrize("protocol", ["dbf", "bgp3"])
    def test_recorder_on_off_bit_identical(self, protocol):
        plain = run_scenario(protocol, 4, 7, GOLDEN_CONFIG)
        recorder = FlightRecorder()
        recorded = run_scenario(protocol, 4, 7, GOLDEN_CONFIG, recorder=recorder)
        for field in _RESULT_FIELDS:
            assert getattr(recorded, field) == getattr(plain, field), field
        assert recorded.delay.values == plain.delay.values
        assert recorded.throughput.values == plain.throughput.values
        # And it actually recorded: rings hold the run's records.
        assert len(recorder.records("packet")) > 0
        assert len(recorder.records("route")) > 0
        assert len(recorder.records("link")) > 0
        assert len(recorder.records("message")) > 0


def _inverted_split_horizon(self, dest, neighbor):
    """Advertise the *true* metric back to the next hop (the PR 2 bug)."""
    route = self.table[dest]
    if route.next_hop != neighbor:
        return self.config.infinity
    return min(route.metric, self.config.infinity)


class TestPostMortemEndToEnd:
    def test_violation_dumps_and_autopsy_shows_the_loop(self, tmp_path, monkeypatch):
        """Fuzzer-style bug -> monitor fires -> dump written -> the dump's own
        packet autopsies exhibit the transient loop hop sequence."""
        monkeypatch.setattr(
            DistanceVectorProtocol, "_advertised_metric", _inverted_split_horizon
        )
        config = ExperimentConfig.quick().with_(post_fail_window=30.0)
        recorder = FlightRecorder()
        result = run_scenario(
            "rip", 3, 19, config, monitors=MonitorSuite(),
            recorder=recorder, dump_dir=str(tmp_path),
        )
        assert any("[fib-loop]" in v for v in result.violations)
        assert result.dump_path is not None
        assert result.dump_path.startswith(str(tmp_path))

        dump = load_dump(result.dump_path)
        assert check_dump(dump) == []
        assert dump["violations"] == list(result.violations)
        assert dump["meta"]["protocol"] == "rip"
        assert dump["meta"]["seed"] == 19

        records = dump_records(dump)
        autopsies = packet_autopsies(records["packet"], records["route"])
        looped = [a for a in autopsies.values() if a.loop is not None]
        assert looped, "expected packets caught in the transient loop"
        victim = looped[0]
        # The loop is a real hop sequence: the packet revisits a node.
        assert victim.loop[0] == victim.loop[-1]
        assert len(victim.loop) >= 3
        # TTL death is the loop's signature in the aggregate counters.
        assert result.drops_ttl > 0
        assert any(
            a.drop_cause is DropCause.TTL_EXPIRED for a in autopsies.values()
        )

    def test_no_dump_without_violations(self, tmp_path):
        result = run_scenario(
            "dbf", 4, 7, ExperimentConfig.quick(), monitors=MonitorSuite(),
            dump_dir=str(tmp_path),
        )
        assert not result.violations
        assert result.dump_path is None
        assert list(tmp_path.iterdir()) == []
