"""Property tests: packet_autopsy vs a brute-force oracle; ring eviction."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.flight import Ring, packet_autopsies, packet_autopsy
from repro.sim.tracing import DropCause, PacketRecord, RouteChangeRecord


class TestRingProperties:
    @given(
        capacity=st.integers(min_value=1, max_value=50),
        items=st.lists(st.integers(), max_size=200),
    )
    def test_eviction_keeps_exactly_the_newest_n(self, capacity, items):
        ring = Ring(capacity)
        for item in items:
            ring.append(item)
        assert ring.records() == items[-capacity:]
        assert ring.appended == len(items)
        assert ring.evicted == max(0, len(items) - capacity)
        assert len(ring) == min(capacity, len(items))


# --- random packet histories ------------------------------------------------
#
# One packet's records: a "send", some "forward"s, and optionally a terminal
# "deliver" or "drop".  The oracle below re-derives the autopsy from the raw
# per-packet history with straight-line code; packet_autopsy must agree no
# matter how histories from different packets are interleaved in the input.

_node = st.integers(min_value=0, max_value=6)


@st.composite
def _packet_history(draw, packet_id):
    n_mid = draw(st.integers(min_value=0, max_value=8))
    terminal = draw(st.sampled_from(["deliver", "drop", None]))
    kinds = ["send"] + ["forward"] * n_mid + ([terminal] if terminal else [])
    nodes = [draw(_node) for _ in kinds]
    cause = (
        draw(st.sampled_from(list(DropCause))) if terminal == "drop" else None
    )
    dst = draw(st.one_of(st.none(), _node))
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=len(kinds),
            max_size=len(kinds),
            unique=True,
        ).map(sorted)
    )
    return [
        PacketRecord(
            time=t,
            kind=k,
            packet_id=packet_id,
            node=n,
            flow_id=packet_id % 3,
            ttl=64 - i,
            cause=cause if k == "drop" else None,
            dst=dst,
        )
        for i, (t, k, n) in enumerate(zip(times, kinds, nodes))
    ]


@st.composite
def _interleaved_histories(draw):
    n_packets = draw(st.integers(min_value=1, max_value=5))
    histories = {
        pid: draw(_packet_history(pid)) for pid in range(1, n_packets + 1)
    }
    merged = [r for history in histories.values() for r in history]
    shuffled = draw(st.permutations(merged))
    return histories, shuffled


def _oracle(history):
    """Brute-force autopsy of one packet's chronologically ordered records."""
    events = sorted(history, key=lambda r: r.time)
    outcome, drop_cause = "in_flight", None
    for r in events:
        if r.kind == "deliver":
            outcome, drop_cause = "delivered", None
        elif r.kind == "drop":
            outcome, drop_cause = "dropped", r.cause
    path = []
    for r in events:
        if not path or path[-1] != r.node:
            path.append(r.node)
    return {
        "outcome": outcome,
        "drop_cause": drop_cause,
        "path": tuple(path),
        "truncated": events[0].kind != "send",
        "times": tuple(r.time for r in events),
    }


class TestAutopsyVsOracle:
    @settings(max_examples=60, deadline=None)
    @given(data=_interleaved_histories())
    def test_agrees_with_brute_force_on_any_interleaving(self, data):
        histories, shuffled = data
        autopsies = packet_autopsies(shuffled)
        assert set(autopsies) == set(histories)
        for pid, history in histories.items():
            expected = _oracle(history)
            a = autopsies[pid]
            assert a.outcome == expected["outcome"]
            assert a.drop_cause == expected["drop_cause"]
            assert a.path == expected["path"]
            assert a.truncated == expected["truncated"]
            assert tuple(h.time for h in a.hops) == expected["times"]
            # Loop invariants: a loop exists iff the path revisits a node,
            # and the reported cycle is a closed contiguous slice of it.
            if len(set(a.path)) == len(a.path):
                assert a.loop is None
            else:
                assert a.loop is not None
                assert a.loop[0] == a.loop[-1]
                joined = ",".join(map(str, a.path))
                assert ",".join(map(str, a.loop)) in joined
            # Single-packet autopsy sees exactly the same walk.
            assert packet_autopsy(shuffled, pid) == a

    @settings(max_examples=40, deadline=None)
    @given(
        data=_interleaved_histories(),
        changes=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                _node,
                _node,
                st.one_of(st.none(), _node),
            ),
            max_size=20,
        ),
    )
    def test_fib_reconstruction_matches_last_change_wins(self, data, changes):
        histories, shuffled = data
        routes = [
            RouteChangeRecord(
                time=t, node=n, dest=d, old_next_hop=None, new_next_hop=nh
            )
            for t, n, d, nh in changes
        ]
        autopsies = packet_autopsies(shuffled, route_changes=routes)
        for pid, history in histories.items():
            for record, hop in zip(
                sorted(history, key=lambda r: r.time), autopsies[pid].hops
            ):
                if record.dst is None or record.kind not in ("send", "forward"):
                    assert hop.fib_next_hop is None
                    continue
                applicable = [
                    r
                    for r in routes
                    if r.node == record.node
                    and r.dest == record.dst
                    and r.time <= record.time
                ]
                expected = applicable[-1].new_next_hop if applicable else None
                assert hop.fib_next_hop == expected
