"""Unit tests for the streaming run-event log (repro.obs.live).

Follows the house style of ``tests/obs/test_report.py``: every structural
rule ``check_log`` enforces gets one deliberate corruption asserting the
rule fires, with a clean control beside it proving the checker is quiet on
healthy data.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.live import (
    COORDINATOR_PID,
    LOG_KIND,
    LOG_SCHEMA_VERSION,
    SHARD_LANE_PID,
    RunEventLog,
    check_log,
    format_live,
    open_live_log,
    read_log,
    shard_lane_events,
    summarize_log,
    watch,
    write_log,
)


def make_log(path, run="shard", meta=None):
    log = RunEventLog(path, run=run, meta=meta or {"protocol": "dbf"})
    log.heartbeat(shard=0, clock=1.0, events=10, barrier=1.0,
                  relays_out=2, relays_in=1, busy_s=0.1, wall_s=0.5)
    log.heartbeat(shard=1, clock=1.0, events=7, barrier=1.0,
                  relays_out=1, relays_in=2, busy_s=0.2, wall_s=0.5)
    log.window(index=0, e_min=0.5, barrier=1.0, n_windows=12, n_relays=3,
               wall_s=0.4)
    log.heartbeat(shard=0, clock=2.0, events=25, barrier=2.0,
                  relays_out=4, relays_in=3, busy_s=0.2, wall_s=1.0)
    log.window(index=1, e_min=1.5, barrier=2.0, n_windows=9, n_relays=4,
               wall_s=0.3)
    log.shard_end(shard=0, events=25, relays_out=4, relays_in=3)
    log.shard_end(shard=1, events=7, relays_out=1, relays_in=2)
    log.end(ok=True)
    log.close()
    return path


class TestRunEventLog:
    def test_header_is_first_record(self, tmp_path):
        path = make_log(tmp_path / "run.log")
        records = read_log(path)
        assert records[0]["kind"] == "header"
        assert records[0]["schema_version"] == LOG_SCHEMA_VERSION
        assert records[0]["log_kind"] == LOG_KIND
        assert records[0]["run"] == "shard"
        assert records[0]["meta"] == {"protocol": "dbf"}

    def test_unknown_run_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown run kind"):
            RunEventLog(tmp_path / "run.log", run="banana")

    def test_append_after_close_raises(self, tmp_path):
        log = RunEventLog(tmp_path / "run.log", run="scenario")
        log.close()
        assert log.closed
        with pytest.raises(ValueError, match="closed"):
            log.append("end", ok=True)

    def test_context_manager_closes(self, tmp_path):
        with RunEventLog(tmp_path / "run.log", run="sweep") as log:
            log.end(ok=True)
        assert log.closed

    def test_sweep_phase_validated(self, tmp_path):
        with RunEventLog(tmp_path / "run.log", run="sweep") as log:
            with pytest.raises(ValueError, match="begin|end"):
                log.sweep("middle")

    def test_every_line_is_flushed(self, tmp_path):
        log = RunEventLog(tmp_path / "run.log", run="scenario")
        log.heartbeat(shard=0, clock=0.5, events=3)
        # Without closing: a concurrent reader sees both complete lines.
        records = read_log(tmp_path / "run.log")
        assert [r["kind"] for r in records] == ["header", "heartbeat"]
        log.close()


class TestOpenLiveLog:
    def test_none_passthrough(self):
        assert open_live_log(None, run="shard") == (None, False)

    def test_path_opens_owned_log(self, tmp_path):
        log, owns = open_live_log(tmp_path / "run.log", run="churn",
                                  meta={"seed": 1})
        assert owns is True
        assert read_log(tmp_path / "run.log")[0]["run"] == "churn"
        log.close()

    def test_existing_log_reused_unowned(self, tmp_path):
        outer = RunEventLog(tmp_path / "run.log", run="sweep")
        log, owns = open_live_log(outer, run="scenario")
        assert log is outer
        assert owns is False
        outer.close()


class TestRoundTrip:
    def test_read_write_byte_identical(self, tmp_path):
        path = make_log(tmp_path / "run.log")
        original = path.read_bytes()
        copy = tmp_path / "copy.log"
        write_log(read_log(path), copy)
        assert copy.read_bytes() == original

    def test_torn_tail_tolerated(self, tmp_path):
        path = make_log(tmp_path / "run.log")
        complete = len(read_log(path))
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"kind": "heartbeat", "shard": 0, "clo')  # mid-append
        records = read_log(path)
        assert len(records) == complete  # the torn line is ignored
        assert check_log(records) == []

    def test_reading_stops_at_first_bad_line(self, tmp_path):
        path = tmp_path / "run.log"
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"kind": "header"}\n')
            f.write("not json at all\n")
            f.write('{"kind": "end", "ok": true}\n')
        assert [r["kind"] for r in read_log(path)] == ["header"]


class TestCheckLog:
    def test_clean_log_is_quiet(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        assert check_log(records) == []

    def test_empty_log(self):
        assert check_log([]) == ["log is empty (no header record)"]

    def test_missing_header(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))[1:]
        assert any("first record must be the header" in p
                   for p in check_log(records))

    def test_wrong_schema_version(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        records[0]["schema_version"] = 99
        assert any("schema_version" in p for p in check_log(records))

    def test_duplicate_header(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        records.append(dict(records[0]))
        assert any("duplicate header" in p for p in check_log(records))

    def test_unknown_kind(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        records.append({"kind": "mystery"})
        assert any("unknown kind" in p for p in check_log(records))

    def test_heartbeat_clock_must_not_go_backwards(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        records.append({"kind": "heartbeat", "shard": 0, "clock": 0.5,
                        "events": 30})
        assert any("goes backwards" in p for p in check_log(records))

    def test_heartbeat_events_must_not_go_backwards(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        records.append({"kind": "heartbeat", "shard": 0, "clock": 3.0,
                        "events": 1})
        assert any("event count" in p and "backwards" in p
                   for p in check_log(records))

    def test_heartbeat_monotonicity_is_per_shard(self, tmp_path):
        # Shard 1's clock may trail shard 0's — only same-shard regressions
        # are violations.
        records = read_log(make_log(tmp_path / "run.log"))
        records.append({"kind": "heartbeat", "shard": 1, "clock": 1.5,
                        "events": 9})
        assert check_log(records) == []

    def test_window_index_must_increase(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        records.append({"kind": "window", "index": 1, "e_min": None,
                        "barrier": 3.0, "n_windows": 1, "n_relays": 0,
                        "wall_s": 0.1})
        assert any("does not increase" in p for p in check_log(records))

    def test_bool_is_not_a_count(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        records.append({"kind": "heartbeat", "shard": True, "clock": 3.0,
                        "events": 30})
        assert any("'shard' must be" in p for p in check_log(records))

    def test_seed_done_bounded_by_total(self):
        records = [
            {"kind": "header", "schema_version": LOG_SCHEMA_VERSION,
             "log_kind": LOG_KIND, "run": "sweep", "meta": {}},
            {"kind": "seed", "protocol": "dbf", "degree": 4, "seed": 1,
             "ok": True, "elapsed_s": 0.1, "attempts": 1,
             "timed_out": False, "done": 5, "total": 4},
        ]
        assert any("exceeds total" in p for p in check_log(records))

    def test_stall_requires_reason(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        records.append({"kind": "stall", "shard": 0, "window": 2.0,
                        "reason": ""})
        assert any("'reason' must be" in p for p in check_log(records))


class TestSummarize:
    def test_shard_views_fold_cumulatively(self, tmp_path):
        summary = summarize_log(read_log(make_log(tmp_path / "run.log")))
        assert summary.run == "shard"
        assert summary.ended and summary.end_ok is True
        assert sorted(summary.shards) == [0, 1]
        v0 = summary.shards[0]
        assert v0.clock == 2.0 and v0.events == 25
        assert v0.relays_out == 4 and v0.relays_in == 3
        # Two beats with wall_s -> a rate over the last interval.
        assert v0.rate == pytest.approx((25 - 10) / (1.0 - 0.5))
        # busy 0.2 of wall 1.0 -> 80% barrier wait.
        assert v0.barrier_wait_fraction == pytest.approx(0.8)
        assert summary.n_windows == 21 and summary.n_relays == 7
        assert summary.last_barrier == 2.0
        assert summary.shard_totals[0]["events"] == 25

    def test_one_process_beats_have_no_wait_fraction(self):
        summary = summarize_log([
            {"kind": "header", "schema_version": LOG_SCHEMA_VERSION,
             "log_kind": LOG_KIND, "run": "scenario", "meta": {}},
            {"kind": "heartbeat", "shard": 0, "clock": 10.0, "events": 100,
             "wall_s": 0.2, "phase": "steady"},
        ])
        view = summary.shards[0]
        assert view.barrier_wait_fraction is None
        assert view.phase == "steady"
        assert "--" in format_live(summary)

    def test_sweep_view(self):
        summary = summarize_log([
            {"kind": "header", "schema_version": LOG_SCHEMA_VERSION,
             "log_kind": LOG_KIND, "run": "sweep", "meta": {}},
            {"kind": "sweep", "phase": "begin", "total_tasks": 4,
             "resumed_tasks": 1, "workers": 2},
            {"kind": "seed", "protocol": "dbf", "degree": 4, "seed": 1,
             "ok": True, "elapsed_s": 0.5, "attempts": 1,
             "timed_out": False, "done": 2, "total": 4},
            {"kind": "seed", "protocol": "rip", "degree": 4, "seed": 2,
             "ok": False, "elapsed_s": None, "attempts": 2,
             "timed_out": True, "done": 3, "total": 4},
            {"kind": "sweep", "phase": "end", "wall_s": 1.25},
        ])
        s = summary.sweep
        assert (s.total, s.done, s.failed, s.timed_out, s.retried,
                s.resumed, s.workers) == (4, 3, 1, 1, 1, 1, 2)
        assert "FAILED" in s.last_label
        text = format_live(summary)
        assert "3/4 seeds done" in text
        assert "1 failed, 1 timed out, 1 retried, 1 resumed" in text
        assert "wall: 1.25s" in text

    def test_stall_and_violations_rendered(self, tmp_path):
        records = read_log(make_log(tmp_path / "run.log"))
        records.append({"kind": "violation", "text": "fib-loop at t=3"})
        records.append({"kind": "stall", "shard": 1, "window": 4.0,
                        "reason": "no response within 2s",
                        "heartbeat": None})
        text = format_live(summarize_log(records))
        assert "STALL: shard 1 at window t=4.0" in text
        assert "VIOLATION: fib-loop at t=3" in text


class TestWatch:
    def test_once_renders_one_frame(self, tmp_path):
        path = make_log(tmp_path / "run.log")
        out = io.StringIO()
        assert watch(path, once=True, stream=out) == 0
        text = out.getvalue()
        assert "shard run [ENDED]" in text
        assert "windows: 21" in text

    def test_follow_exits_on_end_record(self, tmp_path):
        # The log already carries its end record, so the follow loop's very
        # first frame terminates it — no timing dependence.
        path = make_log(tmp_path / "run.log")
        out = io.StringIO()
        assert watch(path, once=False, interval=0.01, stream=out) == 0

    def test_not_a_log_returns_nonzero(self, tmp_path):
        path = tmp_path / "not-a-log.txt"
        path.write_text('{"kind": "end", "ok": true}\n')
        out = io.StringIO()
        assert watch(path, once=True, stream=out) == 1
        assert "not a run-event log" in out.getvalue()

    def test_missing_file_returns_nonzero(self, tmp_path):
        out = io.StringIO()
        assert watch(tmp_path / "absent.log", once=True, stream=out) == 1


class TestShardLanes:
    def test_lane_per_shard_plus_coordinator(self, tmp_path):
        events = shard_lane_events(read_log(make_log(tmp_path / "run.log")))
        names = {e["pid"]: e["args"]["name"]
                 for e in events if e["ph"] == "M"}
        assert names[COORDINATOR_PID] == "coordinator"
        assert names[SHARD_LANE_PID + 0] == "shard 0"
        assert names[SHARD_LANE_PID + 1] == "shard 1"

    def test_window_spans_carry_event_deltas(self, tmp_path):
        events = shard_lane_events(read_log(make_log(tmp_path / "run.log")))
        spans = [e for e in events
                 if e["ph"] == "X" and e["pid"] == SHARD_LANE_PID]
        assert [s["args"]["events"] for s in spans] == [10, 15]
        # Second span covers clock 1.0s -> 2.0s in microseconds.
        assert spans[1]["ts"] == 1_000_000.0
        assert spans[1]["dur"] == 1_000_000.0
        assert spans[1]["args"]["barrier_wait_fraction"] == pytest.approx(0.8)

    def test_relay_injections_become_instants(self, tmp_path):
        events = shard_lane_events(read_log(make_log(tmp_path / "run.log")))
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1  # shard 0: relays_in 1 -> 3
        assert instants[0]["args"]["relays"] == 2

    def test_coordinator_lane_spans_barriers(self, tmp_path):
        events = shard_lane_events(read_log(make_log(tmp_path / "run.log")))
        coord = [e for e in events
                 if e["ph"] == "X" and e["pid"] == COORDINATOR_PID]
        assert [c["name"] for c in coord] == ["12 window(s)", "9 window(s)"]

    def test_json_serializable(self, tmp_path):
        events = shard_lane_events(read_log(make_log(tmp_path / "run.log")))
        json.dumps(events)  # must not raise
