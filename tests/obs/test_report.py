"""Profile report schema: build, self-check, human summary, CLI end-to-end."""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import main
from repro.obs import (
    REPORT_KIND,
    SCHEMA_VERSION,
    RunObservation,
    SweepTelemetry,
    build_report,
    check_report,
    format_report,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario


@pytest.fixture(scope="module")
def report() -> dict:
    cfg = ExperimentConfig.quick().with_(runs=1, post_fail_window=20.0)
    obs = RunObservation()
    result = run_scenario("dbf", 4, 1, cfg, obs=obs)
    telemetry = SweepTelemetry()
    telemetry.begin(workers=1, total_tasks=1)
    telemetry.record("dbf", 4, 1, ok=True, elapsed_s=0.25)
    telemetry.end()
    return build_report(
        scenario={"protocol": result.protocol, "degree": 4, "seed": 1},
        observation=obs.to_dict(),
        sweep=telemetry.to_dict(),
        meta={"profile": "quick"},
    )


class TestCheckReport:
    def test_valid_report_has_no_problems(self, report):
        assert check_report(report) == []

    def test_json_round_trip_stays_valid(self, report):
        assert check_report(json.loads(json.dumps(report))) == []

    def test_wrong_schema_version_is_reported(self, report):
        bad = copy.deepcopy(report)
        bad["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in p for p in check_report(bad))

    def test_wrong_kind_is_reported(self, report):
        bad = copy.deepcopy(report)
        bad["kind"] = "something-else"
        assert any("kind" in p for p in check_report(bad))

    def test_histogram_bucket_corruption_is_reported(self, report):
        bad = copy.deepcopy(report)
        hist = bad["metrics"]["net.link_queue_hwm"]
        assert hist["kind"] == "histogram"
        hist["counts"][0] += 1  # sum(counts) no longer matches count
        assert any("bucket counts sum" in p for p in check_report(bad))

    def test_non_monotonic_bounds_are_reported(self, report):
        bad = copy.deepcopy(report)
        hist = bad["metrics"]["net.link_queue_hwm"]
        hist["bounds"][1] = hist["bounds"][0]
        assert any("strictly increasing" in p for p in check_report(bad))

    def test_gauge_hwm_below_value_is_reported(self, report):
        bad = copy.deepcopy(report)
        gauge = bad["metrics"]["engine.sim_s"]
        gauge["hwm"] = gauge["value"] - 1.0
        assert any("hwm" in p for p in check_report(bad))

    def test_negative_counter_is_reported(self, report):
        bad = copy.deepcopy(report)
        bad["metrics"]["engine.events"]["value"] = -5
        assert any("counter" in p for p in check_report(bad))

    def test_utilization_out_of_range_is_reported(self, report):
        bad = copy.deepcopy(report)
        bad["sweep"]["utilization"] = 1.5
        assert any("utilization" in p for p in check_report(bad))

    def test_span_without_name_is_reported(self, report):
        bad = copy.deepcopy(report)
        del bad["phases"]["children"][0]["name"]
        assert any("name" in p for p in check_report(bad))

    def test_non_dict_report_is_rejected(self):
        assert check_report([]) == ["report must be a JSON object"]


class TestFormatReport:
    def test_summary_names_phases_metrics_and_sweep(self, report):
        text = format_report(report)
        for expected in (
            "profile:",
            "phases (wall time):",
            "convergence",
            "metrics:",
            "engine.events",
            "sweep: 1/1 seeds",
        ):
            assert expected in text


class TestProfileCli:
    def test_profile_smoke_writes_a_valid_report(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        rc = main(["profile", "--smoke", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["kind"] == REPORT_KIND
        assert report["schema_version"] == SCHEMA_VERSION
        assert check_report(report) == []
        # Per-phase wall times ...
        names = [c["name"] for c in report["phases"]["children"]]
        assert "convergence" in names and "steady" in names
        # ... per-protocol message/byte counts ...
        assert report["metrics"]["proto.dbf.messages"]["value"] > 0
        assert report["metrics"]["proto.dbf.bytes"]["value"] > 0
        # ... and per-seed sweep telemetry.
        assert report["sweep"]["completed_tasks"] == 2
        assert all(
            t["elapsed_s"] > 0 and t["ok"] for t in report["sweep"]["seeds"]
        )
        text = capsys.readouterr().out
        assert "phases (wall time):" in text

    def test_profile_without_sweep_omits_telemetry(self, tmp_path):
        out = tmp_path / "profile.json"
        rc = main(
            ["profile", "--protocol", "bgp3", "--seed", "2", "--out", str(out)]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["sweep"] is None
        assert report["scenario"]["protocol"] == "bgp3"
        assert check_report(report) == []
