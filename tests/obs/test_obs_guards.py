"""Overhead-guard and determinism contracts for the observability layer.

Mirrors ``tests/sim/test_tracing_guards.py``: publishes on a counting bus
are a proxy for record allocations, so the packet hot path must stay at
zero publishes when observation is disabled — and even an *enabled*
observation only subscribes to control-plane messages, so pure data traffic
still allocates nothing.

The golden test pins the other half of the contract: profiling a run reads
wall clocks and counters only, so every simulated result is bit-identical
with observation on and off.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario
from repro.net.network import Network
from repro.net.packet import Packet
from repro.obs import RunObservation
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.topology import generators


class CountingBus(TraceBus):
    """TraceBus that counts every publish call (i.e. record construction)."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.publish_count = 0

    def publish(self, record: object) -> None:
        self.publish_count += 1
        super().publish(record)


def _push_traffic(bus: TraceBus, n_packets: int = 20) -> None:
    """Line network, FIBs set by hand, CBR-ish burst end to end."""
    sim = Simulator()
    net = Network(sim, generators.line(4), bus)
    for node in net.iter_nodes():
        if node.id < 3:
            node.set_next_hop(3, node.id + 1)
    for i in range(n_packets):
        sim.schedule_at(
            i * 0.01, lambda: net.node(0).originate(Packet(src=0, dst=3))
        )
    sim.run()
    assert net.node(3).delivered == n_packets


class TestZeroOverheadWhenDisabled:
    def test_disabled_observation_never_publishes(self):
        bus = CountingBus(
            keep_packets=False, keep_routes=False, keep_messages=False
        )
        obs = RunObservation.disabled()
        obs.attach(bus)
        _push_traffic(bus)
        assert bus.publish_count == 0
        obs.finalize(bus=bus)
        assert bus.publish_count == 0

    def test_disabled_observation_leaves_wants_guards_off(self):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        obs = RunObservation.disabled()
        obs.attach(bus)
        assert not bus.wants_packet
        assert not bus.wants_message
        assert not bus.wants_route

    def test_disabled_observation_collects_no_metrics(self):
        bus = CountingBus(
            keep_packets=False, keep_routes=False, keep_messages=False
        )
        obs = RunObservation.disabled()
        obs.attach(bus)
        _push_traffic(bus)
        obs.finalize(bus=bus)
        assert obs.to_dict() == {"phases": None, "metrics": {}}

    def test_enabled_observation_leaves_the_packet_path_alone(self):
        # The enabled collectors subscribe to "message" records only; data
        # packets must still allocate nothing.
        bus = CountingBus(
            keep_packets=False, keep_routes=False, keep_messages=False
        )
        obs = RunObservation()
        obs.attach(bus)
        assert bus.wants_message  # the collector is live ...
        assert not bus.wants_packet  # ... but the data path stays guarded
        _push_traffic(bus)
        assert bus.publish_count == 0

    def test_finalize_releases_the_message_subscription(self):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        obs = RunObservation()
        obs.attach(bus)
        assert bus.wants_message
        obs.finalize(bus=bus)
        assert not bus.wants_message

    def test_finalize_still_harvests_the_always_on_counters(self):
        bus = CountingBus(
            keep_packets=False, keep_routes=False, keep_messages=False
        )
        obs = RunObservation()
        obs.attach(bus)
        _push_traffic(bus, n_packets=7)
        obs.finalize(bus=bus)
        metrics = obs.registry.snapshot()
        assert metrics["trace.sends"]["value"] == 7
        assert metrics["trace.delivers"]["value"] == 7
        assert bus.publish_count == 0  # harvested, never observed per event


GOLDEN_CONFIG = ExperimentConfig.quick().with_(
    rows=5, cols=5, runs=1, post_fail_window=30.0, record_paths=True
)

# Every simulated quantity a run produces; wall-clock-derived fields are
# deliberately absent (they legitimately differ run to run).
_RESULT_FIELDS = (
    "sent",
    "delivered",
    "drops_no_route",
    "drops_ttl",
    "drops_link_down",
    "drops_queue",
    "routing_convergence",
    "destination_convergence",
    "forwarding_convergence",
    "converged_to_expected",
    "transient_path_count",
    "messages",
    "withdrawals",
    "sender",
    "receiver",
    "failed_link",
    "pre_failure_path",
    "expected_final_path",
)


@pytest.mark.parametrize("protocol", ["dbf", "bgp3"])
def test_golden_seed7_results_identical_with_and_without_observation(protocol):
    plain = run_scenario(protocol, 4, 7, GOLDEN_CONFIG)
    obs = RunObservation(trace_memory=False)
    observed = run_scenario(protocol, 4, 7, GOLDEN_CONFIG, obs=obs)
    for field in _RESULT_FIELDS:
        assert getattr(observed, field) == getattr(plain, field), field
    # Bit-identical series, not just matching aggregates.
    assert observed.delay.values == plain.delay.values
    assert observed.throughput.values == plain.throughput.values
    # And the observation actually measured the run it rode on.
    metrics = obs.registry.snapshot()
    assert metrics["trace.sends"]["value"] == plain.sent
    assert metrics[f"proto.{protocol}.messages"]["value"] > 0
    phases = obs.profiler.to_dict()
    assert [c["name"] for c in phases["children"]] == [
        "setup", "warmup", "steady", "failure", "convergence", "drain",
    ]
    run_events = sum(
        c["events"] for c in phases["children"] if "events" in c
    )
    assert run_events == metrics["engine.events"]["value"]
