"""Tests for the fail-then-repair experiment (link restoration)."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.extensions import run_repair_scenario

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=1, post_fail_window=50.0
)


class TestRepairScenario:
    @pytest.mark.parametrize("protocol", ["rip", "dbf", "dual", "bgp3", "spf"])
    def test_returns_to_shortest_length_path(self, protocol):
        r = run_repair_scenario(protocol, 4, 1, TINY, repair_after=15.0)
        assert r.back_on_shortest_path, protocol
        assert r.restoration_convergence is not None

    def test_spf_restores_fastest(self):
        spf = run_repair_scenario("spf", 4, 1, TINY, repair_after=15.0)
        bgp = run_repair_scenario("bgp", 4, 1, TINY, repair_after=15.0)
        assert spf.restoration_convergence <= bgp.restoration_convergence

    def test_no_drops_caused_by_the_repair_itself(self):
        """Restoration only improves paths; it must not black-hole traffic."""
        r = run_repair_scenario("dbf", 4, 2, TINY, repair_after=15.0)
        # All drops happened in the failure window, not after the repair.
        assert r.delivery_ratio > 0.9

    def test_deterministic(self):
        a = run_repair_scenario("dbf", 4, 3, TINY, repair_after=15.0)
        b = run_repair_scenario("dbf", 4, 3, TINY, repair_after=15.0)
        assert a.restoration_convergence == b.restoration_convergence
        assert a.delivered == b.delivered
