"""Tests for the one-command reproduction campaign."""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET

import pytest

from repro.experiments.campaign import reproduce
from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import load_points

MICRO = ExperimentConfig.quick().with_(
    rows=5,
    cols=5,
    degrees=(4, 5),
    runs=1,
    protocols=("rip", "dbf", "bgp", "bgp3"),
    post_fail_window=30.0,
)


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    out = tmp_path_factory.mktemp("repro_out")
    report = reproduce(MICRO, out_dir=str(out))
    return report


class TestReproduce:
    def test_all_figures_present(self, campaign):
        names = set(campaign.artifacts)
        for required in (
            "figure2_topologies.txt",
            "figure3_drops.txt",
            "figure3_drops.svg",
            "figure4_ttl.txt",
            "figure4_ttl.svg",
            "figure5_throughput.txt",
            "figure5_throughput.svg",
            "figure6_convergence.txt",
            "figure6a_forwarding.svg",
            "figure6b_routing.svg",
            "figure7_delay.txt",
            "figure7_delay.svg",
            "results.json",
            "REPORT.md",
        ):
            assert required in names
            assert os.path.exists(campaign.path(required))

    def test_svgs_are_valid_xml(self, campaign):
        for name in campaign.artifacts:
            if name.endswith(".svg"):
                ET.parse(campaign.path(name))

    def test_results_json_reloadable(self, campaign):
        points = load_points(campaign.path("results.json"))
        assert set(p for p, _ in points) == set(MICRO.protocols)

    def test_report_mentions_headline(self, campaign):
        with open(campaign.path("REPORT.md")) as f:
            text = f.read()
        assert "BGP" in text and "ratio" in text
        assert "Reproduction report" in text

    def test_headline_computed(self, campaign):
        assert set(campaign.headline) == {"bgp", "bgp3", "ratio"}
