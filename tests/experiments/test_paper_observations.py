"""Integration tests of the paper's five Observations (qualitative shape).

These run the real experiment at reduced statistical breadth (a few seeds)
but full 7x7 topology scale and authentic protocol timers, and assert the
*shape* results the paper reports — who wins, in what direction, and where
the degree-6 knee falls.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_point
from repro.experiments.scenario import run_scenario

CFG = ExperimentConfig.quick().with_(runs=3, post_fail_window=60.0)


@pytest.fixture(scope="module")
def points():
    """Shared sweep: (protocol, degree) -> PointResult."""
    out = {}
    for protocol in ("rip", "dbf", "bgp", "bgp3"):
        for degree in (3, 4, 6):
            out[(protocol, degree)] = run_point(protocol, degree, CFG)
    return out


class TestObservation1Drops:
    """Paper Observation 1: drops decrease with node degree; at degree >= 6
    DBF/BGP/BGP-3 drop virtually nothing while RIP improves only slightly."""

    def test_drops_shrink_with_degree(self, points):
        for protocol in ("rip", "dbf"):
            assert (
                points[(protocol, 6)].mean_drops_no_route
                <= points[(protocol, 3)].mean_drops_no_route
            )

    def test_degree6_near_zero_for_cache_protocols(self, points):
        for protocol in ("dbf", "bgp", "bgp3"):
            assert points[(protocol, 6)].mean_drops_no_route < 5

    def test_rip_still_drops_heavily_at_degree6(self, points):
        assert points[("rip", 6)].mean_drops_no_route > 50

    def test_rip_worst_at_every_degree(self, points):
        for degree in (3, 4, 6):
            rip = points[("rip", degree)].mean_drops_no_route
            dbf = points[("dbf", degree)].mean_drops_no_route
            assert rip > dbf


class TestObservation2TtlExpirations:
    """Paper Observation 2: RIP never loops; at degree >= 6 nobody loops;
    below 6, BGP loops more than BGP-3 (MRAI lengthens loop lifetime)."""

    def test_rip_has_zero_ttl_expirations(self, points):
        for degree in (3, 4, 6):
            assert points[("rip", degree)].mean_drops_ttl == 0

    def test_no_ttl_expirations_at_degree6(self, points):
        for protocol in ("rip", "dbf", "bgp", "bgp3"):
            assert points[(protocol, 6)].mean_drops_ttl == 0

    def test_bgp_loops_longer_than_bgp3_at_degree5(self):
        bgp = run_point("bgp", 5, CFG.with_(runs=5))
        bgp3 = run_point("bgp3", 5, CFG.with_(runs=5))
        assert bgp.mean_drops_ttl > bgp3.mean_drops_ttl


class TestObservation3Throughput:
    """Paper Observation 3: failure causes a throughput dip; recovery time
    matches each protocol's update machinery (RIP ~ periodic 30 s; BGP ~
    MRAI; DBF within seconds); at degree 6 the dip nearly disappears for the
    alternate-path protocols."""

    def test_rip_throughput_drops_to_zero_then_recovers(self, points):
        series = points[("rip", 3)].mean_throughput()
        dip = series.window(0.0, 5.0)
        assert dip.min_value() < 0.3 * CFG.rate_pps
        tail = series.window(40.0, 50.0)
        assert tail.mean_value() > 0.8 * CFG.rate_pps

    def test_dbf_dip_is_short(self, points):
        series = points[("dbf", 4)].mean_throughput()
        after = series.window(8.0, 20.0)
        assert after.mean_value() > 0.9 * CFG.rate_pps

    def test_degree6_removes_dip_for_cache_protocols(self, points):
        for protocol in ("dbf", "bgp3"):
            series = points[(protocol, 6)].mean_throughput()
            post = series.window(0.0, 20.0)
            assert post.mean_value() > 0.9 * CFG.rate_pps

    def test_rip_dip_persists_even_at_degree6(self, points):
        series = points[("rip", 6)].mean_throughput()
        post = series.window(0.0, 5.0)
        assert post.min_value() < 0.5 * CFG.rate_pps


class TestObservation4Convergence:
    """Paper Observation 4: BGP-3 converges much faster than BGP, yet at high
    degree the packet-drop difference is negligible — convergence time and
    delivery decouple."""

    def test_bgp3_converges_faster(self, points):
        for degree in (3, 4, 6):
            assert (
                points[("bgp3", degree)].mean_routing_convergence
                < points[("bgp", degree)].mean_routing_convergence
            )

    def test_drop_difference_negligible_at_degree6(self, points):
        diff = abs(
            points[("bgp", 6)].mean_drops_no_route
            - points[("bgp3", 6)].mean_drops_no_route
        )
        assert diff < 5

    def test_convergence_still_positive_at_degree6(self, points):
        assert points[("bgp", 6)].mean_routing_convergence > 1.0


class TestObservation5Delay:
    """Paper Observation 5: packets delivered during convergence take longer
    paths, so instantaneous delay exceeds the steady-state value."""

    def test_transient_delay_exceeds_steady_state(self):
        point = run_point("bgp3", 4, CFG.with_(runs=5))
        series = point.mean_delay()
        steady = series.window(-5.0, 0.0).mean_value()
        transient_max = max(series.window(0.0, 20.0).values)
        assert transient_max > steady


class TestHeadline:
    """§1: same topology and rate, BGP drops several times more than BGP-3."""

    def test_bgp_drops_multiple_of_bgp3(self):
        cfg = CFG.with_(runs=5)
        bgp = run_point("bgp", 5, cfg)
        bgp3 = run_point("bgp3", 5, cfg)
        bgp_drops = bgp.mean_drops_no_route + bgp.mean_drops_ttl
        bgp3_drops = bgp3.mean_drops_no_route + bgp3.mean_drops_ttl
        assert bgp_drops > 2 * bgp3_drops


class TestLoopEscapeDelay:
    """§5.5: packets escaping a forwarding loop arrive with much larger
    delays than packets on merely sub-optimal paths."""

    def test_escaped_packets_have_inflated_hop_counts(self):
        cfg = CFG.with_(record_paths=True, runs=1)
        for seed in range(1, 15):
            r = run_scenario("bgp3", 5, seed, cfg)
            if r.loop_report and r.loop_report.escaped_loop:
                assert r.loop_report.max_extra_hops > 4
                return
        pytest.skip("no loop on the data path in sampled seeds")
