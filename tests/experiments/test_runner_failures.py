"""Failure capture in the sweep driver.

A seed that crashes inside a worker must come back as a SweepFailure naming
the seed — not tear down the pool, not vanish, and (for run_point) not lose
which seed died.  The crash vector: degree 9 passes config validation but
``regular_mesh`` rejects it inside ``run_scenario``, in-process and in
workers alike.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SweepFailure, run_point, run_sweep

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=2, post_fail_window=10.0, protocols=("dbf",)
)
BAD_DEGREE = 9  # regular_mesh only supports [3, 8]


class TestSweepFailureCapture:
    def test_serial_sweep_records_failures_and_continues(self):
        cfg = TINY.with_(degrees=(4, BAD_DEGREE))
        results = run_sweep(cfg)
        good = results[("dbf", 4)]
        assert good.n_runs == 2 and not good.failures
        bad = results[("dbf", BAD_DEGREE)]
        assert bad.n_runs == 0
        assert len(bad.failures) == 2
        assert [f.seed for f in bad.failures] == [cfg.seed, cfg.seed + 1]

    def test_parallel_sweep_records_failures_and_continues(self):
        cfg = TINY.with_(degrees=(4, BAD_DEGREE), runs=1)
        results = run_sweep(cfg, workers=2)
        assert results[("dbf", 4)].n_runs == 1
        bad = results[("dbf", BAD_DEGREE)]
        assert bad.n_runs == 0
        assert len(bad.failures) == 1
        assert bad.failures[0].seed == cfg.seed

    def test_failure_message_names_the_seed_and_cause(self):
        cfg = TINY.with_(degrees=(BAD_DEGREE,), runs=1)
        failure = run_sweep(cfg)[("dbf", BAD_DEGREE)].failures[0]
        assert isinstance(failure, SweepFailure)
        assert f"seed={cfg.seed}" in str(failure)
        assert "degree" in failure.error

    def test_serial_and_parallel_capture_identical_failures(self):
        cfg = TINY.with_(degrees=(BAD_DEGREE,), runs=2)
        serial = run_sweep(cfg)[("dbf", BAD_DEGREE)].failures
        parallel = run_sweep(cfg, workers=2)[("dbf", BAD_DEGREE)].failures
        assert serial == parallel


class TestRunPointFailures:
    """run_point matches run_sweep: failures are recorded, not raised —
    unless ``strict=True`` restores the old fail-fast behavior."""

    def test_serial_records_failures_and_continues(self):
        cfg = TINY.with_(runs=2)
        point = run_point("dbf", BAD_DEGREE, cfg)
        assert point.n_runs == 0
        assert [f.seed for f in point.failures] == [cfg.seed, cfg.seed + 1]

    def test_parallel_records_failures_and_continues(self):
        cfg = TINY.with_(runs=2)
        point = run_point("dbf", BAD_DEGREE, cfg, workers=2)
        assert point.n_runs == 0
        assert [f.seed for f in point.failures] == [cfg.seed, cfg.seed + 1]

    def test_serial_and_parallel_record_identical_failures(self):
        cfg = TINY.with_(runs=2)
        serial = run_point("dbf", BAD_DEGREE, cfg).failures
        parallel = run_point("dbf", BAD_DEGREE, cfg, workers=2).failures
        assert serial == parallel

    def test_serial_strict_error_names_the_seed(self):
        cfg = TINY.with_(runs=1)
        with pytest.raises(RuntimeError, match=rf"seed {cfg.seed} "):
            run_point("dbf", BAD_DEGREE, cfg, strict=True)

    def test_parallel_strict_error_names_the_seed(self):
        cfg = TINY.with_(runs=2)
        with pytest.raises(RuntimeError, match=rf"seed={cfg.seed}"):
            run_point("dbf", BAD_DEGREE, cfg, workers=2, strict=True)
