"""Tests for mobility-churn scenarios (`repro.experiments.churn`)."""

from __future__ import annotations

import random

import pytest

from repro.experiments.churn import make_mobility_model, run_churn_scenario
from repro.experiments.config import ChurnConfig, ExperimentConfig
from repro.experiments.persistence import scenario_to_dict
from repro.mobility import GaussMarkov, ManhattanGrid, RandomWaypoint
from repro.validation.monitors import MonitorSuite


def churn_config(**kwargs):
    churn_kwargs = dict(model="waypoint", n_nodes=10, radio_range=450.0)
    churn_kwargs.update(kwargs)
    return ExperimentConfig.quick().with_(
        post_fail_window=20.0, churn=ChurnConfig(**churn_kwargs)
    )


class TestModelFactory:
    def test_dispatch(self):
        rng = random.Random(0)
        waypoint = make_mobility_model(ChurnConfig(model="waypoint"), rng)
        gm = make_mobility_model(ChurnConfig(model="gauss-markov"), rng)
        manhattan = make_mobility_model(ChurnConfig(model="manhattan"), rng)
        assert isinstance(waypoint, RandomWaypoint)
        assert isinstance(gm, GaussMarkov)
        assert isinstance(manhattan, ManhattanGrid)

    def test_unknown_model_rejected(self):
        config = ChurnConfig()
        object.__setattr__(config, "model", "teleport")
        with pytest.raises(ValueError, match="teleport"):
            make_mobility_model(config, random.Random(0))


class TestRunChurnScenario:
    def test_requires_churn_config(self):
        with pytest.raises(ValueError, match="churn"):
            run_churn_scenario("dbf", 7, ExperimentConfig.quick())

    def test_produces_events_and_delivers(self):
        result = run_churn_scenario("dbf", 7, churn_config())
        assert result.degree == 0
        assert result.events, "mobility produced no link events"
        assert result.sent > 0
        assert result.delivered > 0
        assert len(result.initial_path) >= 2

    def test_same_seed_is_byte_identical(self):
        a = run_churn_scenario("dbf", 7, churn_config())
        b = run_churn_scenario("dbf", 7, churn_config())
        assert a.events == b.events
        assert (a.sender, a.receiver) == (b.sender, b.receiver)
        assert scenario_to_dict(a) == scenario_to_dict(b)

    def test_different_seeds_diverge(self):
        a = run_churn_scenario("dbf", 7, churn_config())
        b = run_churn_scenario("dbf", 8, churn_config())
        assert a.events != b.events or a.initial_path != b.initial_path

    def test_monitors_stay_green(self):
        suite = MonitorSuite()
        result = run_churn_scenario("dbf", 7, churn_config(), monitors=suite)
        assert result.violations == ()

    @pytest.mark.parametrize("model", ("gauss-markov", "manhattan"))
    def test_other_models_run(self, model):
        result = run_churn_scenario("spf", 3, churn_config(model=model))
        assert result.sent > 0

    def test_event_outcomes_are_attributed(self):
        result = run_churn_scenario("spf", 7, churn_config())
        for event in result.events:
            assert event.kind in ("fail", "restore")
            assert event.detect_time >= event.time
            if event.wave_start is not None:
                assert event.wave_end >= event.wave_start


class TestChurnConfigPersistence:
    def test_round_trips_through_dict(self):
        config = churn_config(model="manhattan", n_nodes=12)
        data = config.to_dict()
        assert data["churn"]["model"] == "manhattan"
        restored = ExperimentConfig.from_dict(data)
        assert restored == config
        assert restored.churn == config.churn

    def test_absent_churn_round_trips_as_none(self):
        config = ExperimentConfig.quick()
        restored = ExperimentConfig.from_dict(config.to_dict())
        assert restored.churn is None
