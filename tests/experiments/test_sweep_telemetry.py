"""Sweep execution telemetry: per-seed timing, store records, resume safety.

The telemetry contract has two halves: ``run_sweep(telemetry=...)`` fills a
:class:`~repro.obs.sweeps.SweepTelemetry` with one timing per executed seed,
and — with a store attached — each timing also lands in the shard log as a
``{"kind": "telemetry"}`` record that result loading must skip, so a sweep
resumed from a telemetry-bearing store stays bit-identical to an
uninterrupted one.
"""

from __future__ import annotations

import json

from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import save_points
from repro.experiments.runner import run_sweep
from repro.experiments.store import SweepStore
from repro.obs.sweeps import SeedTiming, SweepTelemetry

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=3, post_fail_window=10.0,
    protocols=("static",),
)


class TestSerialTelemetry:
    def test_every_seed_gets_a_timing(self):
        telemetry = SweepTelemetry()
        results = run_sweep(TINY, telemetry=telemetry)
        assert len(telemetry.seeds) == len(TINY.grid())
        assert {(t.protocol, t.degree, t.seed) for t in telemetry.seeds} == set(
            TINY.grid()
        )
        assert all(t.ok and t.elapsed_s > 0 for t in telemetry.seeds)
        assert all(t.attempts == 1 and not t.timed_out for t in telemetry.seeds)
        assert results[("static", 4)].n_runs == 3

    def test_aggregates_are_consistent(self):
        telemetry = SweepTelemetry()
        run_sweep(TINY, telemetry=telemetry)
        assert telemetry.total_tasks == len(TINY.grid())
        assert telemetry.resumed_tasks == 0
        assert telemetry.wall_s > 0
        assert telemetry.busy_s > 0
        assert 0.0 <= telemetry.utilization <= 1.0
        slowest = telemetry.slowest
        assert slowest is not None
        assert slowest.elapsed_s == max(t.elapsed_s for t in telemetry.seeds)
        assert telemetry.n_timeouts == 0
        assert telemetry.n_retries == 0

    def test_to_dict_is_json_ready(self):
        telemetry = SweepTelemetry()
        run_sweep(TINY, telemetry=telemetry)
        d = json.loads(json.dumps(telemetry.to_dict()))
        assert d["completed_tasks"] == len(TINY.grid())
        assert len(d["seeds"]) == len(TINY.grid())
        assert d["workers"] == 1


class TestPoolTelemetry:
    def test_pool_run_times_every_seed_in_worker(self):
        telemetry = SweepTelemetry()
        run_sweep(TINY, workers=2, telemetry=telemetry)
        assert telemetry.workers == 2
        assert len(telemetry.seeds) == len(TINY.grid())
        assert all(t.ok and t.elapsed_s > 0 for t in telemetry.seeds)


class TestStoreTelemetry:
    def test_timings_are_appended_as_telemetry_records(self, tmp_path):
        store = SweepStore(tmp_path / "sweep")
        telemetry = SweepTelemetry()
        run_sweep(TINY, store=store, telemetry=telemetry)
        loaded = store.load_telemetry()
        assert len(loaded) == len(TINY.grid())
        assert loaded == [t.to_dict() for t in telemetry.seeds]
        # And they survive a dataclass round trip.
        assert all(SeedTiming(**t).ok for t in loaded)

    def test_load_outcomes_skips_telemetry_records(self, tmp_path):
        store = SweepStore(tmp_path / "sweep")
        run_sweep(TINY, store=store, telemetry=SweepTelemetry())
        reopened = SweepStore(tmp_path / "sweep")
        reopened.open(TINY)
        outcomes = reopened.load_outcomes()
        assert set(outcomes) == set(TINY.grid())
        assert reopened.missing_tasks() == []

    def test_resume_over_telemetry_records_is_identical(self, tmp_path):
        # A store with telemetry interleaved must resume to the same results
        # as a plain uninterrupted sweep.
        store_dir = tmp_path / "sweep"
        run_sweep(TINY, store=SweepStore(store_dir), telemetry=SweepTelemetry())

        resumed_telemetry = SweepTelemetry()
        resumed = run_sweep(
            TINY, store=SweepStore(store_dir), telemetry=resumed_telemetry
        )
        # Nothing re-ran: all tasks came from the shards.
        assert resumed_telemetry.resumed_tasks == len(TINY.grid())
        assert resumed_telemetry.seeds == []

        plain = run_sweep(TINY)
        resumed_json = tmp_path / "resumed.json"
        plain_json = tmp_path / "plain.json"
        save_points(resumed, resumed_json)
        save_points(plain, plain_json)
        assert resumed_json.read_bytes() == plain_json.read_bytes()

    def test_shard_log_interleaves_results_and_telemetry(self, tmp_path):
        store = SweepStore(tmp_path / "sweep")
        run_sweep(TINY, store=store, telemetry=SweepTelemetry())
        kinds = []
        with open(store.shards_path, encoding="utf-8") as f:
            for line in f:
                kinds.append(json.loads(line)["kind"])
        assert kinds == ["run", "telemetry"] * len(TINY.grid())

    def test_no_telemetry_records_without_a_telemetry_sink(self, tmp_path):
        store = SweepStore(tmp_path / "sweep")
        run_sweep(TINY, store=store)
        assert store.load_telemetry() == []
