"""Tests for multi-run aggregation."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_point, run_sweep

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=3, post_fail_window=30.0
)


class TestRunPoint:
    def test_runs_requested_seeds(self):
        point = run_point("dbf", 4, TINY)
        assert point.n_runs == 3
        assert [r.seed for r in point.runs] == [TINY.seed, TINY.seed + 1, TINY.seed + 2]

    def test_means_are_averages(self):
        point = run_point("rip", 4, TINY)
        expected = sum(r.drops_no_route for r in point.runs) / 3
        assert point.mean_drops_no_route == pytest.approx(expected)

    def test_mean_throughput_aligned(self):
        point = run_point("dbf", 4, TINY)
        series = point.mean_throughput()
        assert len(series) == len(point.runs[0].throughput)
        assert series.times == point.runs[0].throughput.times

    def test_delivery_ratio_in_unit_interval(self):
        point = run_point("dbf", 4, TINY)
        assert 0.0 <= point.mean_delivery_ratio <= 1.0

    def test_convergence_success_rate(self):
        good = run_point("dbf", 4, TINY)
        assert good.convergence_success_rate == 1.0
        stuck = run_point("static", 4, TINY)
        assert stuck.convergence_success_rate == 0.0


class TestParallelExecution:
    def test_parallel_results_identical_to_serial(self):
        cfg = TINY.with_(runs=2)
        serial = run_point("dbf", 4, cfg, workers=1)
        parallel = run_point("dbf", 4, cfg, workers=2)
        assert [r.delivered for r in serial.runs] == [
            r.delivered for r in parallel.runs
        ]
        assert [r.drops_no_route for r in serial.runs] == [
            r.drops_no_route for r in parallel.runs
        ]
        assert serial.mean_routing_convergence == parallel.mean_routing_convergence


class TestRunSweep:
    def test_covers_protocol_degree_grid(self):
        cfg = TINY.with_(protocols=("rip", "dbf"), degrees=(3, 4), runs=1)
        results = run_sweep(cfg)
        assert set(results) == {("rip", 3), ("rip", 4), ("dbf", 3), ("dbf", 4)}
        assert all(p.n_runs == 1 for p in results.values())
