"""Telemetry transparency: a logged run == an unlogged run, bit for bit.

The run-event log's contract (inherited from the registry and the flight
recorder) is that logging is harvest-only — writers read already-maintained
counters strictly between engine events, never schedule anything, and never
touch an RNG.  These tests pin that on the golden scenarios from
``test_golden_metrics.py``: dbf and bgp3 at seed 7 (fast clean recovery)
and rip at seed 11 (slow periodic-update recovery), 1-process and 3-shard,
under both event-queue backends.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.dist.runner import run_scenario_sharded
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_sweep
from repro.experiments.scenario import run_scenario
from repro.obs.live import check_log, read_log, summarize_log

GOLDEN_CONFIG = ExperimentConfig.quick().with_(
    rows=5, cols=5, runs=1, post_fail_window=30.0, record_paths=True
)

#: The golden points: two regimes (fast clean vs slow lossy recovery).
POINTS = [("dbf", 7), ("bgp3", 7), ("rip", 11)]


def _fields(result) -> dict:
    """Every dataclass field, for whole-result equality with clear diffs."""
    return {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(type(result))
    }


@pytest.mark.parametrize("queue", ["heap", "calendar"])
@pytest.mark.parametrize("protocol,seed", POINTS)
def test_single_process_log_is_transparent(tmp_path, protocol, seed, queue):
    config = GOLDEN_CONFIG.with_(event_queue=queue)
    quiet = run_scenario(protocol, 4, seed, config)
    path = tmp_path / "run.log"
    logged = run_scenario(protocol, 4, seed, config, live_log=path)
    assert _fields(logged) == _fields(quiet)
    records = read_log(path)
    assert check_log(records) == []
    assert summarize_log(records).ended


@pytest.mark.parametrize("queue", ["heap", "calendar"])
@pytest.mark.parametrize("protocol,seed", POINTS)
def test_sharded_log_is_transparent(tmp_path, protocol, seed, queue):
    config = GOLDEN_CONFIG.with_(event_queue=queue, shards=3)
    quiet = run_scenario_sharded(protocol, 4, seed, config)
    logged = run_scenario_sharded(
        protocol, 4, seed, config, live_log=tmp_path / "run.log"
    )
    assert _fields(logged) == _fields(quiet)
    assert check_log(read_log(tmp_path / "run.log")) == []


def test_sweep_log_records_every_seed(tmp_path):
    config = GOLDEN_CONFIG.with_(protocols=("dbf",), degrees=(4,), runs=3)
    path = tmp_path / "sweep.log"
    results = run_sweep(config, live_log=path)
    records = read_log(path)
    assert check_log(records) == []
    assert records[0]["run"] == "sweep"

    begin = next(r for r in records if r["kind"] == "sweep")
    assert begin["phase"] == "begin" and begin["total_tasks"] == 3

    seeds = [r for r in records if r["kind"] == "seed"]
    assert [(s["protocol"], s["degree"]) for s in seeds] == [("dbf", 4)] * 3
    assert sorted(s["seed"] for s in seeds) == [1, 2, 3]
    assert all(s["ok"] for s in seeds)
    # done counts the current task, so the last record says 3/3.
    assert [s["done"] for s in sorted(seeds, key=lambda s: s["seed"])][-1] == 3
    assert all(s["total"] == 3 for s in seeds)

    end = [r for r in records if r["kind"] == "sweep"][-1]
    assert end["phase"] == "end" and end["wall_s"] > 0
    assert records[-1] == {"kind": "end", "ok": True}

    summary = summarize_log(records)
    assert summary.sweep.done == 3 and summary.sweep.failed == 0
    assert results[("dbf", 4)].mean_delivery_ratio > 0


def test_sweep_results_identical_with_and_without_log(tmp_path):
    config = GOLDEN_CONFIG.with_(protocols=("dbf",), degrees=(4,), runs=2)
    quiet = run_sweep(config)
    logged = run_sweep(config, live_log=tmp_path / "sweep.log")
    assert logged == quiet
