"""Golden-value pins for the MANET protocol family.

Same contract as ``test_golden_metrics.py``: these exact numbers were
captured from fixed-seed runs and must reproduce bit-for-bit.  Scenario
randomness is derived entirely from the seed, so any drift here means the
protocol implementations (or the harness around them) changed behavior,
not just speed.  The wired protocols' golden set lives in
``test_golden_metrics.py`` and is deliberately untouched by the MANET
work — ``test_wired_golden_set_is_untouched`` below re-asserts the
dbf/bgp3 seed-7 point from this file too, so a MANET-side regression that
leaks into the shared harness fails in both places.

If a deliberate behavior change invalidates these, re-capture with::

    PYTHONPATH=src python -c "
    from repro.experiments.config import ChurnConfig, ExperimentConfig
    from repro.experiments.scenario import run_scenario
    from repro.experiments.churn import run_churn_scenario
    cfg = ExperimentConfig.quick().with_(rows=5, cols=5, runs=1,
                                         post_fail_window=30.0,
                                         record_paths=True)
    print(run_scenario('aodv', 4, 7, cfg))
    ccfg = ExperimentConfig.quick().with_(
        post_fail_window=45.0,
        churn=ChurnConfig(model='waypoint', n_nodes=16,
                          radio_range=400.0, settle_time=15.0))
    print(run_churn_scenario('olsr', 7, ccfg))"
"""

from __future__ import annotations

import pytest

from repro.experiments.churn import run_churn_scenario
from repro.experiments.config import ChurnConfig, ExperimentConfig
from repro.experiments.scenario import run_scenario

GOLDEN_CONFIG = ExperimentConfig.quick().with_(
    rows=5, cols=5, runs=1, post_fail_window=30.0, record_paths=True
)

CHURN_CONFIG = ExperimentConfig.quick().with_(
    post_fail_window=45.0,
    churn=ChurnConfig(
        model="waypoint", n_nodes=16, radio_range=400.0, settle_time=15.0
    ),
)

# (protocol, expectations) at degree=4, seed=7 under GOLDEN_CONFIG.  Exact
# equality on floats: deterministic runs make == the right comparison.
#
# DSR's convergence clocks pin at 0.0 by design: a source-routed protocol
# never touches the FIB, so the route-record-based tracker sees no activity
# — recovery shows up in the delivery/drop columns instead.
GOLDEN = {
    "aodv": dict(
        sent=701,
        delivered=698,
        drops_link_down=1,
        drops_no_route=1,
        drops_ttl=0,
        routing_convergence=0.06881600000000532,
        forwarding_convergence=0.06881600000000532,
        messages=71,
        withdrawals=0,
        transient_path_count=5,
        converged_to_expected=True,
        control_packets=137,
        control_bytes=3336,
        delay_mean=0.012149914040117527,
        delay_max=0.030912000000007822,
    ),
    "dsr": dict(
        sent=701,
        delivered=699,
        drops_link_down=0,
        drops_no_route=1,
        drops_ttl=0,
        routing_convergence=0.0,
        forwarding_convergence=0.0,
        messages=67,
        withdrawals=0,
        transient_path_count=0,
        converged_to_expected=False,
        control_packets=133,
        control_bytes=7596,
        delay_mean=0.012163387696712486,
        delay_max=0.03564800000000279,
    ),
}

# OLSR under waypoint churn (seed 7, CHURN_CONFIG): pins the proactive
# protocol's behavior on a moving field, including its whole-run control
# overhead — the metric where OLSR and the reactive pair differ most.
GOLDEN_OLSR_CHURN = dict(
    sent=1001,
    delivered=1000,
    drops_no_route=0,
    drops_ttl=0,
    drops_link_down=0,
    messages=5859,
    events=62,
    control_packets=6609,
    control_bytes=455072,
    delay_mean=0.0015134399999993597,
    delay_max=0.0022479999998132882,
)

_SCENARIO_FIELDS = (
    "sent",
    "delivered",
    "drops_link_down",
    "drops_no_route",
    "drops_ttl",
    "routing_convergence",
    "forwarding_convergence",
    "messages",
    "withdrawals",
    "transient_path_count",
    "converged_to_expected",
)


def _assert_manet_golden(result, expected):
    assert result.manet is not None
    assert result.manet.control_packets == expected["control_packets"]
    assert result.manet.control_bytes == expected["control_bytes"]
    assert result.manet.delay.mean == expected["delay_mean"]
    assert result.manet.delay.max == expected["delay_max"]


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_manet_fixed_seed_scenario_reproduces_golden_values(protocol):
    result = run_scenario(protocol, 4, 7, GOLDEN_CONFIG)
    expected = GOLDEN[protocol]
    for field in _SCENARIO_FIELDS:
        assert getattr(result, field) == expected[field], field
    _assert_manet_golden(result, expected)


def test_olsr_waypoint_churn_reproduces_golden_values():
    result = run_churn_scenario("olsr", 7, CHURN_CONFIG)
    expected = GOLDEN_OLSR_CHURN
    for field in ("sent", "delivered", "drops_no_route", "drops_ttl",
                  "drops_link_down", "messages"):
        assert getattr(result, field) == expected[field], field
    assert len(result.events) == expected["events"]
    _assert_manet_golden(result, expected)


def test_wired_golden_set_is_untouched():
    # The MANET integration must be invisible to the wired protocols: this
    # re-runs the dbf/bgp3 golden point against the values pinned in
    # test_golden_metrics.py (imported, not copied, so the sets cannot
    # drift apart silently).
    from tests.experiments.test_golden_metrics import (
        GOLDEN as WIRED_GOLDEN,
        GOLDEN_CONFIG as WIRED_CONFIG,
        _assert_golden,
    )

    for protocol in sorted(WIRED_GOLDEN):
        result = run_scenario(protocol, 4, 7, WIRED_CONFIG)
        _assert_golden(result, WIRED_GOLDEN[protocol])
