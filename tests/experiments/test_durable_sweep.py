"""Checkpointed, resumable, fault-tolerant sweeps.

Covers the durability contract end to end: completed seeds survive any
interruption (Ctrl-C, SIGTERM, a hard kill mid-append), a resumed sweep
re-runs only missing seeds and produces results bit-identical to an
uninterrupted run, and a hung or dying worker is contained as a recorded
:class:`SweepFailure` without stalling the pool.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import save_points
from repro.experiments.runner import SweepFailure, run_sweep
from repro.experiments.store import SweepStore

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=3, post_fail_window=10.0,
    protocols=("static",),
)


def shard_lines(store: SweepStore) -> int:
    if not os.path.exists(store.shards_path):
        return 0
    with open(store.shards_path) as f:
        return sum(1 for _ in f)


class TestDurableRun:
    def test_sweep_writes_one_shard_per_task(self, tmp_path):
        store = SweepStore(tmp_path / "ck")
        results = run_sweep(TINY, store=store)
        assert results[("static", 4)].n_runs == 3
        assert shard_lines(store) == len(TINY.grid())

    def test_store_accepts_plain_path(self, tmp_path):
        results = run_sweep(TINY, store=str(tmp_path / "ck"))
        assert results[("static", 4)].n_runs == 3
        assert os.path.exists(tmp_path / "ck" / "manifest.json")

    def test_failures_are_checkpointed_too(self, tmp_path):
        cfg = TINY.with_(degrees=(4, 9), runs=1)  # degree 9 crashes in-run
        store = SweepStore(tmp_path / "ck")
        results = run_sweep(cfg, store=store)
        assert len(results[("static", 9)].failures) == 1
        # Resume re-runs nothing: the failure is a durable outcome.
        assert store.missing_tasks() == []

    def test_complete_store_reloads_without_rerunning(self, tmp_path):
        store_dir = tmp_path / "ck"
        first = run_sweep(TINY, store=store_dir)
        # Re-running with pacing high enough that any actual simulation
        # would blow the test timeout proves nothing is re-simulated.
        os.environ["REPRO_TEST_SLEEP_SECONDS"] = "60"
        try:
            second = run_sweep(TINY, store=store_dir)
        finally:
            del os.environ["REPRO_TEST_SLEEP_SECONDS"]
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_points(first, str(a))
        save_points(second, str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_partial_store_runs_only_missing_seeds(self, tmp_path):
        store = SweepStore(tmp_path / "ck")
        store.open(TINY)
        # Pre-record seed 2 as a failure no simulation would produce: if the
        # resumed sweep re-ran it, the marker would be replaced by a run.
        marker = SweepFailure(
            protocol="static", degree=4, seed=2, error="pre-recorded marker"
        )
        store.append(marker)
        store.close()
        results = run_sweep(TINY, store=store)
        point = results[("static", 4)]
        assert point.failures == [marker]
        assert [r.seed for r in point.runs] == [1, 3]

    def test_mismatched_config_refused(self, tmp_path):
        from repro.experiments.store import StoreMismatchError

        store_dir = tmp_path / "ck"
        run_sweep(TINY, store=store_dir)
        with pytest.raises(StoreMismatchError):
            run_sweep(TINY.with_(runs=5), store=store_dir)

    def test_progress_callback_invoked_per_task(self, tmp_path):
        seen = []
        run_sweep(
            TINY,
            store=tmp_path / "ck",
            progress=lambda done, total, msg: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestInterruptHandling:
    def test_sigint_mid_sweep_flushes_completed_shards(self, tmp_path):
        """A KeyboardInterrupt surfacing mid-sweep must leave every already
        completed seed durably recorded, then propagate."""
        store = SweepStore(tmp_path / "ck")

        def interrupt_after_two(done, total, msg):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(TINY, store=store, progress=interrupt_after_two)
        assert shard_lines(store) == 2
        # And the interrupted sweep resumes to a complete, identical result.
        resumed = run_sweep(TINY, store=store)
        clean = run_sweep(TINY)
        a, b = tmp_path / "resumed.json", tmp_path / "clean.json"
        save_points(resumed, str(a))
        save_points(clean, str(b))
        assert a.read_bytes() == b.read_bytes()


class TestKillAndResume:
    def test_sigterm_kill_then_resume_is_bit_identical(self, tmp_path):
        """The CI smoke in miniature: SIGTERM a sweep mid-flight, resume it,
        and require byte-for-byte equality with an uninterrupted run."""
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(
            os.environ,
            PYTHONPATH=os.pathsep.join(
                p for p in (src_root, os.environ.get("PYTHONPATH")) if p
            ),
            REPRO_TEST_SLEEP_SECONDS="0.2",
        )
        base = [
            sys.executable, "-m", "repro", "sweep",
            "--protocols", "static", "--degrees", "4", "--runs", "6",
        ]

        clean = tmp_path / "clean.json"
        subprocess.run(
            [*base, "--checkpoint", str(tmp_path / "clean_ck"),
             "--save", str(clean)],
            env=env, check=True, capture_output=True, timeout=120,
        )

        ck = tmp_path / "ck"
        proc = subprocess.Popen(
            [*base, "--checkpoint", str(ck), "--save", str(tmp_path / "x.json")],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            shards = ck / "shards.jsonl"
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if shards.exists() and shard_lines(SweepStore(ck)) >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("no shards appeared before the kill deadline")
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        killed_at = shard_lines(SweepStore(ck))
        assert 1 <= killed_at < 6, "kill landed outside mid-sweep"

        resumed = tmp_path / "resumed.json"
        subprocess.run(
            [*base, "--checkpoint", str(ck), "--save", str(resumed)],
            env=env, check=True, capture_output=True, timeout=120,
        )
        assert clean.read_bytes() == resumed.read_bytes()

    def test_resume_flag_takes_config_from_manifest(self, tmp_path):
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(
            os.environ,
            PYTHONPATH=os.pathsep.join(
                p for p in (src_root, os.environ.get("PYTHONPATH")) if p
            ),
        )
        ck = tmp_path / "ck"
        run_sweep(TINY, store=ck)
        out = subprocess.run(
            [sys.executable, "-m", "repro", "sweep",
             "--checkpoint", str(ck), "--resume"],
            env=env, check=True, capture_output=True, text=True, timeout=120,
        )
        assert "static" in out.stdout


class TestTimeoutsAndRetries:
    def test_hung_seed_times_out_without_stalling_the_pool(self, tmp_path):
        os.environ["REPRO_TEST_HANG_SEEDS"] = "2"
        try:
            start = time.monotonic()
            results = run_sweep(TINY, workers=2, timeout=2.0)
            elapsed = time.monotonic() - start
        finally:
            del os.environ["REPRO_TEST_HANG_SEEDS"]
        point = results[("static", 4)]
        assert [r.seed for r in point.runs] == [1, 3]
        assert [f.seed for f in point.failures] == [2]
        assert "timeout" in point.failures[0].error
        assert elapsed < 30.0, "pool stalled behind the hung seed"

    def test_timeout_failures_are_checkpointed(self, tmp_path):
        os.environ["REPRO_TEST_HANG_SEEDS"] = "2"
        try:
            store = SweepStore(tmp_path / "ck")
            run_sweep(TINY, workers=2, timeout=2.0, store=store)
        finally:
            del os.environ["REPRO_TEST_HANG_SEEDS"]
        outcome = store.load_outcomes()[("static", 4, 2)]
        assert isinstance(outcome, SweepFailure)
        assert store.missing_tasks() == []

    def test_dead_worker_retried_then_succeeds(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        os.environ["REPRO_TEST_DIE_ONCE_DIR"] = str(markers)
        try:
            results = run_sweep(TINY, workers=2, retries=2, retry_backoff=0.05)
        finally:
            del os.environ["REPRO_TEST_DIE_ONCE_DIR"]
        point = results[("static", 4)]
        assert point.n_runs == 3
        assert point.failures == []

    def test_retries_exhausted_records_failure(self, tmp_path):
        markers = tmp_path / "markers"
        markers.mkdir()
        os.environ["REPRO_TEST_DIE_ONCE_DIR"] = str(markers)
        try:
            # retries=0: the single death per task is already one too many.
            results = run_sweep(
                TINY.with_(runs=1), workers=1, timeout=30.0, retries=0,
            )
        finally:
            del os.environ["REPRO_TEST_DIE_ONCE_DIR"]
        point = results[("static", 4)]
        assert point.n_runs == 0
        assert len(point.failures) == 1
        assert "worker died" in point.failures[0].error

    def test_timeout_with_serial_workers_uses_pool(self):
        # timeout=... must be honored even at workers=1 (routed through a
        # one-worker pool; a truly serial run cannot preempt a hung seed).
        os.environ["REPRO_TEST_HANG_SEEDS"] = "1"
        try:
            results = run_sweep(
                TINY.with_(runs=1), workers=1, timeout=1.5,
            )
        finally:
            del os.environ["REPRO_TEST_HANG_SEEDS"]
        assert len(results[("static", 4)].failures) == 1
