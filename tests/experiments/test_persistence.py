"""Tests for result persistence (JSON round-trips)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import (
    failure_from_dict,
    failure_to_dict,
    load_points,
    save_points,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.experiments.runner import SweepFailure, run_point
from repro.experiments.scenario import run_scenario

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=2, post_fail_window=30.0
)


def _as_v2_run(run_dict: dict) -> dict:
    """Downgrade a current (v3) run dict to the v1/v2 single-failure shape."""
    d = dict(run_dict)
    events = d.pop("events")
    d["failed_link"] = list(events[0]["link"])
    d["pre_failure_path"] = d.pop("initial_path")
    return d


class TestScenarioRoundTrip:
    def test_all_scalars_survive(self):
        original = run_scenario("dbf", 4, 1, TINY)
        restored = scenario_from_dict(scenario_to_dict(original))
        for field in (
            "protocol", "degree", "seed", "sent", "delivered",
            "drops_no_route", "drops_ttl", "drops_link_down", "drops_queue",
            "routing_convergence", "forwarding_convergence",
            "converged_to_expected", "transient_path_count",
            "messages", "withdrawals", "failed_link", "pre_failure_path",
        ):
            assert getattr(restored, field) == getattr(original, field), field

    def test_series_survive(self):
        original = run_scenario("dbf", 4, 1, TINY)
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.throughput.times == original.throughput.times
        assert restored.throughput.values == original.throughput.values
        assert restored.delay.values == original.delay.values

    def test_reordering_survives(self):
        original = run_scenario("dbf", 4, 1, TINY)
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.reordering == original.reordering

    def test_dict_is_json_serializable(self):
        original = run_scenario("rip", 4, 2, TINY)
        json.dumps(scenario_to_dict(original))

    def test_monitor_skips_survive(self):
        original = run_scenario("dbf", 4, 1, TINY)
        original.monitor_skips = {"counting_to_infinity": "holddown active"}
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.monitor_skips == original.monitor_skips

    def test_loop_report_survives(self):
        original = run_scenario("dbf", 4, 1, TINY.with_(record_paths=True))
        assert original.loop_report is not None
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.loop_report == original.loop_report

    def test_full_round_trip_is_lossless(self):
        original = run_scenario(
            "dbf", 4, 1, TINY.with_(record_paths=True, validate=True)
        )
        first = scenario_to_dict(original)
        second = scenario_to_dict(scenario_from_dict(first))
        assert first == second

    def test_dump_path_survives(self):
        original = run_scenario("dbf", 4, 1, TINY)
        original.dump_path = "/tmp/sweep/flight-dbf-d4-s1.json"
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.dump_path == original.dump_path

    def test_dump_path_absent_in_old_files_loads_as_none(self):
        data = scenario_to_dict(run_scenario("dbf", 4, 1, TINY))
        del data["dump_path"]
        assert scenario_from_dict(data).dump_path is None

    def test_empty_expected_final_path_not_collapsed_to_none(self):
        data = scenario_to_dict(run_scenario("dbf", 4, 1, TINY))
        data["expected_final_path"] = []
        restored = scenario_from_dict(data)
        assert restored.expected_final_path == ()
        data["expected_final_path"] = None
        assert scenario_from_dict(data).expected_final_path is None

    def test_empty_reordering_dict_not_collapsed_to_none(self):
        data = scenario_to_dict(run_scenario("dbf", 4, 1, TINY))
        data["reordering"] = {
            "delivered": 0, "late_packets": 0,
            "max_displacement": 0, "episodes": 0,
        }
        restored = scenario_from_dict(data)
        assert restored.reordering is not None
        assert restored.reordering.delivered == 0


class TestFailureRoundTrip:
    def test_failure_survives(self):
        failure = SweepFailure(
            protocol="dbf", degree=4, seed=7, error="ValueError: boom"
        )
        assert failure_from_dict(failure_to_dict(failure)) == failure


class TestSweepFiles:
    def test_save_load_round_trip(self, tmp_path):
        points = {
            ("dbf", 4): run_point("dbf", 4, TINY),
            ("rip", 4): run_point("rip", 4, TINY),
        }
        path = tmp_path / "sweep.json"
        save_points(points, str(path))
        loaded = load_points(str(path))
        assert set(loaded) == set(points)
        for key in points:
            assert loaded[key].n_runs == points[key].n_runs
            assert loaded[key].mean_drops_no_route == points[key].mean_drops_no_route
            assert (
                loaded[key].mean_throughput().values
                == points[key].mean_throughput().values
            )

    def test_point_failures_survive(self, tmp_path):
        point = run_point("dbf", 4, TINY)
        point.failures.append(
            SweepFailure(protocol="dbf", degree=4, seed=99, error="timed out")
        )
        path = tmp_path / "sweep.json"
        save_points({("dbf", 4): point}, str(path))
        loaded = load_points(str(path))
        assert loaded[("dbf", 4)].failures == point.failures

    def test_save_load_save_is_byte_identical(self, tmp_path):
        cfg = TINY.with_(record_paths=True, validate=True)
        point = run_point("dbf", 4, cfg)
        point.failures.append(
            SweepFailure(protocol="dbf", degree=4, seed=99, error="crash")
        )
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        save_points({("dbf", 4): point}, str(first))
        save_points(load_points(str(first)), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 999, "points": []}))
        with pytest.raises(ValueError):
            load_points(str(path))

    def test_v1_file_still_loads(self, tmp_path):
        """Back-compat: a v1 results file (no failures/monitor_skips/
        loop_report fields, scalar failed_link) loads, with the missing
        fields defaulted and the failure migrated to one fail event."""
        run = run_scenario("dbf", 4, 1, TINY)
        v1_run = _as_v2_run(scenario_to_dict(run))
        # v1 writers never emitted these keys.
        for key in ("monitor_skips", "loop_report"):
            del v1_run[key]
        payload = {
            "format_version": 1,
            "points": [{"protocol": "dbf", "degree": 4, "runs": [v1_run]}],
        }
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(payload))
        loaded = load_points(str(path))
        point = loaded[("dbf", 4)]
        assert point.n_runs == 1
        assert point.failures == []
        restored = point.runs[0]
        assert restored.monitor_skips == {}
        assert restored.loop_report is None
        assert restored.delivered == run.delivered
        assert restored.throughput.values == run.throughput.values
        # Migrated event: same link, unknown times.
        assert restored.failed_link == run.failed_link
        assert restored.pre_failure_path == run.pre_failure_path
        assert len(restored.events) == 1
        assert restored.events[0].kind == "fail"
        assert restored.events[0].time is None
        assert restored.events[0].detect_time is None

    def test_v2_file_still_loads(self, tmp_path):
        """Back-compat: a v2 file (lossless, but still single-failure)."""
        run = run_scenario("dbf", 4, 1, TINY.with_(record_paths=True))
        v2_run = _as_v2_run(scenario_to_dict(run))
        payload = {
            "format_version": 2,
            "points": [
                {
                    "protocol": "dbf",
                    "degree": 4,
                    "runs": [v2_run],
                    "failures": [],
                }
            ],
        }
        path = tmp_path / "v2.json"
        path.write_text(json.dumps(payload))
        restored = load_points(str(path))[("dbf", 4)].runs[0]
        assert restored.failed_link == run.failed_link
        assert restored.initial_path == run.initial_path
        assert restored.loop_report == run.loop_report
        assert restored.events[0].link == run.events[0].link

    def test_old_formats_resave_as_v3(self, tmp_path):
        run = run_scenario("dbf", 4, 1, TINY)
        v1_run = _as_v2_run(scenario_to_dict(run))
        for key in ("monitor_skips", "loop_report"):
            del v1_run[key]
        v1 = tmp_path / "v1.json"
        v1.write_text(json.dumps({
            "format_version": 1,
            "points": [{"protocol": "dbf", "degree": 4, "runs": [v1_run]}],
        }))
        upgraded = tmp_path / "v3.json"
        save_points(load_points(str(v1)), str(upgraded))
        payload = json.loads(upgraded.read_text())
        assert payload["format_version"] == 3
        assert payload["points"][0]["failures"] == []
        migrated = payload["points"][0]["runs"][0]
        assert migrated["monitor_skips"] == {}
        assert "failed_link" not in migrated
        assert migrated["events"][0]["kind"] == "fail"
        assert migrated["events"][0]["time"] is None

    def test_v3_events_round_trip(self):
        original = run_scenario("dbf", 4, 1, TINY)
        assert original.events, "default scenario schedules one fail event"
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.events == original.events
        assert restored.initial_path == original.initial_path

    def test_file_is_human_readable_json(self, tmp_path):
        points = {("dbf", 4): run_point("dbf", 4, TINY.with_(runs=1))}
        path = tmp_path / "sweep.json"
        save_points(points, str(path))
        payload = json.loads(path.read_text())
        assert payload["points"][0]["protocol"] == "dbf"
