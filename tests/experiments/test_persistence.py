"""Tests for result persistence (JSON round-trips)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.persistence import (
    load_points,
    save_points,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.experiments.runner import run_point
from repro.experiments.scenario import run_scenario

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=2, post_fail_window=30.0
)


class TestScenarioRoundTrip:
    def test_all_scalars_survive(self):
        original = run_scenario("dbf", 4, 1, TINY)
        restored = scenario_from_dict(scenario_to_dict(original))
        for field in (
            "protocol", "degree", "seed", "sent", "delivered",
            "drops_no_route", "drops_ttl", "drops_link_down", "drops_queue",
            "routing_convergence", "forwarding_convergence",
            "converged_to_expected", "transient_path_count",
            "messages", "withdrawals", "failed_link", "pre_failure_path",
        ):
            assert getattr(restored, field) == getattr(original, field), field

    def test_series_survive(self):
        original = run_scenario("dbf", 4, 1, TINY)
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.throughput.times == original.throughput.times
        assert restored.throughput.values == original.throughput.values
        assert restored.delay.values == original.delay.values

    def test_reordering_survives(self):
        original = run_scenario("dbf", 4, 1, TINY)
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.reordering == original.reordering

    def test_dict_is_json_serializable(self):
        original = run_scenario("rip", 4, 2, TINY)
        json.dumps(scenario_to_dict(original))


class TestSweepFiles:
    def test_save_load_round_trip(self, tmp_path):
        points = {
            ("dbf", 4): run_point("dbf", 4, TINY),
            ("rip", 4): run_point("rip", 4, TINY),
        }
        path = tmp_path / "sweep.json"
        save_points(points, str(path))
        loaded = load_points(str(path))
        assert set(loaded) == set(points)
        for key in points:
            assert loaded[key].n_runs == points[key].n_runs
            assert loaded[key].mean_drops_no_route == points[key].mean_drops_no_route
            assert (
                loaded[key].mean_throughput().values
                == points[key].mean_throughput().values
            )

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 999, "points": []}))
        with pytest.raises(ValueError):
            load_points(str(path))

    def test_file_is_human_readable_json(self, tmp_path):
        points = {("dbf", 4): run_point("dbf", 4, TINY.with_(runs=1))}
        path = tmp_path / "sweep.json"
        save_points(points, str(path))
        payload = json.loads(path.read_text())
        assert payload["points"][0]["protocol"] == "dbf"
