"""Tests for text report rendering."""

from __future__ import annotations

from repro.experiments.figures import SweepTable
from repro.experiments.report import (
    format_ascii_curve,
    format_series_grid,
    format_sweep_table,
)
from repro.metrics.timeseries import BinnedSeries


def sample_table() -> SweepTable:
    table = SweepTable(title="Demo", protocols=("rip", "dbf"), degrees=(3, 4))
    table.values = {
        ("rip", 3): 10.0,
        ("rip", 4): 5.5,
        ("dbf", 3): 1.25,
        ("dbf", 4): 0.0,
    }
    return table


class TestFormatSweepTable:
    def test_contains_all_cells(self):
        text = format_sweep_table(sample_table())
        assert "Demo" in text
        for token in ("rip", "dbf", "10.0", "5.5", "1.2", "0.0"):
            assert token in text

    def test_rows_per_degree(self):
        text = format_sweep_table(sample_table())
        data_rows = [l for l in text.splitlines() if l.strip().startswith(("3", "4"))]
        assert len(data_rows) == 2


class TestFormatSeriesGrid:
    def test_samples_at_requested_times(self):
        series = {
            ("rip", 3): BinnedSeries(times=(-5.0, 0.0, 5.0), values=(20.0, 0.0, 10.0))
        }
        text = format_series_grid(series, "Tput", t_min=-5, t_max=5, step=5)
        assert "rip/d3" in text
        assert "20.0" in text and "10.0" in text

    def test_out_of_range_marked(self):
        series = {("x", 1): BinnedSeries(times=(0.0,), values=(1.0,))}
        text = format_series_grid(series, "T", t_min=-10, t_max=-5, step=5)
        assert "-" in text


class TestAsciiCurve:
    def test_renders_nonempty(self):
        series = BinnedSeries(times=(0.0, 1.0, 2.0), values=(0.0, 5.0, 2.0))
        text = format_ascii_curve(series, "curve")
        assert "curve" in text
        assert "#" in text

    def test_empty_series(self):
        series = BinnedSeries(times=(), values=())
        assert "empty" in format_ascii_curve(series, "c")
