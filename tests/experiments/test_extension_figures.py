"""Micro-scale API tests for the ablation/extension figure harnesses.

The benchmarks exercise these at realistic scale; these tests pin the
interfaces (key sets, value sanity) at the smallest usable configuration so
API regressions surface in the fast suite.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    ablation_detection_delay,
    ablation_ssld,
    extension_fast_reroute,
    extension_flap_damping,
    extension_loop_freedom_cost,
    extension_scale,
    overhead_sweep,
)

MICRO = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=1, post_fail_window=25.0
)


class TestOverheadSweep:
    def test_reports_messages_per_cell(self):
        cfg = MICRO.with_(protocols=("rip", "bgp3"))
        table = overhead_sweep(cfg)
        assert set(table.values) == {("rip", 4), ("bgp3", 4)}
        assert table.value("rip", 4) > 0


class TestSsldAblation:
    def test_key_shape(self):
        out = ablation_ssld(MICRO, degree=4)
        assert set(out) == {"bgp3", "bgp3-ssld"}
        for row in out.values():
            assert set(row) == {
                "messages", "drops_no_route", "drops_ttl", "routing_convergence",
            }


class TestDetectionDelayAblation:
    def test_floor_scales_with_delay(self):
        out = ablation_detection_delay(MICRO, degree=4, delays=(0.05, 1.0))
        assert out[1.0]["expected_floor"] > out[0.05]["expected_floor"]
        for row in out.values():
            assert row["total_drops"] >= 0


class TestFastReroute:
    def test_lfa_never_worse_than_slow_spf(self):
        out = extension_fast_reroute(MICRO, degrees=(4,))
        assert out[("spf-lfa", 4)] <= out[("spf-slow", 4)] + 1e-9
        assert out[("spf", 4)] <= out[("spf-slow", 4)] + 1e-9


class TestLoopFreedomCost:
    def test_dual_never_loops(self):
        out = extension_loop_freedom_cost(MICRO, degrees=(4,))
        assert out[("dual", 4)]["ttl"] == 0


class TestFlapDamping:
    def test_key_shape(self):
        out = extension_flap_damping(MICRO, degree=4)
        assert set(out) == {"bgp3", "bgp3-rfd"}


class TestScale:
    def test_sweeps_sizes(self):
        out = extension_scale(
            MICRO, sizes=((5, 5), (6, 6)), degree=4, protocols=("dbf",)
        )
        assert set(out) == {("dbf", 25), ("dbf", 36)}
        for row in out.values():
            assert 0 <= row["delivery_ratio"] <= 1
