"""Tests for whole-router failure experiments."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.extensions import run_node_failure_scenario
from repro.net.dynamics import LinkScheduler
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.topology import generators

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=1, post_fail_window=40.0
)


class TestFailNode:
    def test_all_adjacent_links_fail(self):
        sim = Simulator()
        net = Network(sim, generators.ring(5))
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        events = injector.fail_node(2, at=1.0)
        assert len(events) == 2
        sim.run(until=2.0)
        assert not net.link(1, 2).up
        assert not net.link(2, 3).up
        assert net.link(0, 1).up

    def test_isolated_node_rejected(self):
        from repro.topology.graph import Topology

        sim = Simulator()
        topo = Topology()
        topo.connect(0, 1)
        topo.add_node(9)
        net = Network(sim, topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        with pytest.raises(ValueError):
            injector.fail_node(9, at=1.0)


class TestNodeFailureScenario:
    def test_dbf_recovers_from_router_crash(self):
        r = run_node_failure_scenario("dbf", 4, 1, TINY)
        assert r.sent > 0
        assert r.recovered
        assert r.failed_node not in (r.sent, r.delivered)  # sanity

    def test_rip_loses_more_than_dbf_on_router_crash(self):
        """The paper's protocol ranking survives the harsher failure mode."""
        rip = run_node_failure_scenario("rip", 4, 1, TINY)
        dbf = run_node_failure_scenario("dbf", 4, 1, TINY)
        assert dbf.delivery_ratio >= rip.delivery_ratio
        assert dbf.recovered

    def test_accounting_sane(self):
        r = run_node_failure_scenario("rip", 4, 1, TINY)
        assert 0 < r.delivered <= r.sent
        assert r.drops_no_route + r.drops_ttl <= r.sent - r.delivered + 5

    def test_deterministic(self):
        a = run_node_failure_scenario("dbf", 4, 3, TINY)
        b = run_node_failure_scenario("dbf", 4, 3, TINY)
        assert (a.failed_node, a.delivered) == (b.failed_node, b.delivered)

    def test_failed_node_is_interior_path_router(self):
        r = run_node_failure_scenario("static", 4, 2, TINY)
        assert r.failed_node not in (r.sent,)  # structural sanity below
        assert 0 <= r.failed_node < TINY.rows * TINY.cols
