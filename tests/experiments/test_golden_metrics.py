"""Golden-value pin for the full metric pipeline.

These exact numbers were captured from a fixed-seed scenario *before* the
hot-path refactor (tuple heap, guarded trace dispatch, neighbor dispatch
tables) and must reproduce bit-for-bit after it: the refactor's contract is
that it changes how fast events and traces move, never which events happen
or what the collectors compute.

If a deliberate behavior change invalidates these, re-capture with::

    PYTHONPATH=src python -c "
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.scenario import run_scenario
    cfg = ExperimentConfig.quick().with_(rows=5, cols=5, runs=1,
                                         post_fail_window=30.0,
                                         record_paths=True)
    print(run_scenario('dbf', 4, 7, cfg))"
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario

GOLDEN_CONFIG = ExperimentConfig.quick().with_(
    rows=5, cols=5, runs=1, post_fail_window=30.0, record_paths=True
)

# (protocol, expectations) at degree=4, seed=7.  Floats are exact: the run
# is deterministic, so == is the right comparison, not approx.
#
# The rip/seed=11 point (GOLDEN_RIP below) pins a qualitatively different
# regime: a slow periodic-update recovery (~14.6 s routing convergence,
# 162 NO_ROUTE drops, and a final path that differs from the tracker's
# expected shortest path), so the pipeline is pinned on a hard scenario,
# not just a fast clean one.
GOLDEN = {
    "dbf": dict(
        sent=701,
        delivered=699,
        drops_link_down=1,
        drops_no_route=0,
        drops_ttl=0,
        routing_convergence=0.004111999999999227,
        forwarding_convergence=0.0020559999999996137,
        messages=196,
        withdrawals=0,
        transient_path_count=2,
        converged_to_expected=True,
        delay_mean=0.01209988814243378,
    ),
    "bgp3": dict(
        sent=701,
        delivered=699,
        drops_link_down=1,
        drops_no_route=0,
        drops_ttl=0,
        routing_convergence=0.004655999999998883,
        forwarding_convergence=0.0014159999999989736,
        messages=168,
        withdrawals=2,
        transient_path_count=2,
        converged_to_expected=True,
        delay_mean=0.01209600000000291,
    ),
}


# Second golden point: (rip, degree=4, seed=11) under the same config.
GOLDEN_RIP = dict(
    sent=701,
    delivered=537,
    drops_link_down=1,
    drops_no_route=162,
    drops_ttl=0,
    routing_convergence=14.581669885375874,
    forwarding_convergence=8.064400837817757,
    messages=388,
    withdrawals=0,
    transient_path_count=5,
    converged_to_expected=False,
    delay_mean=0.01050632830905279,
)

_PINNED_FIELDS = (
    "sent",
    "delivered",
    "drops_link_down",
    "drops_no_route",
    "drops_ttl",
    "routing_convergence",
    "forwarding_convergence",
    "messages",
    "withdrawals",
    "transient_path_count",
    "converged_to_expected",
)


def _assert_golden(result, expected):
    for field in _PINNED_FIELDS:
        assert getattr(result, field) == expected[field], field
    assert result.delay is not None and len(result.delay.values) > 0
    delay_mean = sum(result.delay.values) / len(result.delay.values)
    assert delay_mean == expected["delay_mean"]


@pytest.mark.parametrize("queue", ("heap", "calendar"))
@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_fixed_seed_scenario_reproduces_golden_values(protocol, queue):
    # Parametrized over the event-queue backends: both must reproduce the
    # exact same floats — backend choice is a speed knob, never a results
    # knob (the ISSUE 8 bit-identity gate).
    result = run_scenario(protocol, 4, 7, GOLDEN_CONFIG.with_(event_queue=queue))
    assert result.seed == 7
    _assert_golden(result, GOLDEN[protocol])


@pytest.mark.parametrize("queue", ("heap", "calendar"))
def test_rip_slow_recovery_scenario_reproduces_golden_values(queue):
    result = run_scenario("rip", 4, 11, GOLDEN_CONFIG.with_(event_queue=queue))
    assert result.seed == 11
    _assert_golden(result, GOLDEN_RIP)
