"""Integration tests for the single-run scenario harness."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=1, post_fail_window=40.0
)


class TestRunScenario:
    def test_accounting_is_complete(self):
        r = run_scenario("dbf", degree=4, seed=1, config=TINY)
        # Every originated packet is delivered, dropped, or still in flight
        # when the run ends (in-flight at most a handful).
        accounted = r.delivered + r.total_drops
        assert accounted <= r.sent
        assert r.sent - accounted < 10

    def test_sender_receiver_on_first_and_last_row(self):
        r = run_scenario("static", degree=4, seed=3, config=TINY)
        # Hosts get ids above the mesh; their routers are path[1] / path[-2].
        sender_router = r.pre_failure_path[1]
        receiver_router = r.pre_failure_path[-2]
        assert 0 <= sender_router < TINY.cols
        assert (TINY.rows - 1) * TINY.cols <= receiver_router < TINY.rows * TINY.cols

    def test_failed_link_is_on_pre_failure_path(self):
        r = run_scenario("dbf", degree=4, seed=2, config=TINY)
        edges = set(zip(r.pre_failure_path, r.pre_failure_path[1:]))
        a, b = r.failed_link
        assert (a, b) in edges or (b, a) in edges

    def test_failed_link_never_touches_hosts(self):
        for seed in range(1, 6):
            r = run_scenario("static", degree=4, seed=seed, config=TINY)
            assert r.sender not in r.failed_link
            assert r.receiver not in r.failed_link

    def test_same_seed_is_deterministic(self):
        a = run_scenario("dbf", degree=4, seed=7, config=TINY)
        b = run_scenario("dbf", degree=4, seed=7, config=TINY)
        assert a.drops_no_route == b.drops_no_route
        assert a.delivered == b.delivered
        assert a.routing_convergence == b.routing_convergence
        assert a.throughput.values == b.throughput.values

    def test_different_seeds_vary_layout(self):
        layouts = {
            run_scenario("static", degree=4, seed=s, config=TINY).failed_link
            for s in range(1, 8)
        }
        assert len(layouts) > 1

    def test_throughput_series_normalized_to_failure(self):
        r = run_scenario("dbf", degree=4, seed=1, config=TINY)
        assert r.throughput.times[0] == pytest.approx(
            TINY.traffic_start - TINY.fail_time
        )
        # Pre-failure bins carry full rate.
        assert r.throughput.values[0] == pytest.approx(TINY.rate_pps, rel=0.2)

    def test_static_baseline_never_recovers(self):
        r = run_scenario("static", degree=4, seed=1, config=TINY)
        assert not r.converged_to_expected
        assert r.delivered < r.sent
        post = r.throughput.window(5.0, 30.0)
        assert post.mean_value() == 0.0

    def test_loop_report_only_with_record_paths(self):
        r = run_scenario("dbf", degree=4, seed=1, config=TINY)
        assert r.loop_report is None
        r2 = run_scenario("dbf", degree=4, seed=1, config=TINY.with_(record_paths=True))
        assert r2.loop_report is not None

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_scenario("ospfv3", degree=4, seed=1, config=TINY)

    def test_cold_start_mode_runs(self):
        cfg = TINY.with_(cold_start=True, cold_warmup=120.0, post_fail_window=30.0)
        r = run_scenario("dbf", degree=4, seed=1, config=cfg)
        assert r.delivered > 0
        assert r.converged_to_expected
