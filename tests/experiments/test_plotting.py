"""Tests for the SVG chart renderer."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.figures import SweepTable
from repro.experiments.plotting import line_chart, save_svg, series_chart, sweep_chart
from repro.metrics.timeseries import BinnedSeries

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChart:
    def test_valid_xml(self):
        svg = line_chart({"a": [(0, 0), (1, 2)]}, "T", "x", "y")
        root = parse(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_series(self):
        svg = line_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 2), (1, 3)], "c": [(0, 1), (1, 0)]},
            "T", "x", "y",
        )
        root = parse(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        # 3 data lines (legend swatches are <line> elements).
        assert len(polylines) == 3

    def test_labels_present(self):
        svg = line_chart({"a": [(0, 0), (1, 1)]}, "My Title", "degree", "drops")
        assert "My Title" in svg
        assert "degree" in svg and "drops" in svg

    def test_escapes_special_characters(self):
        svg = line_chart({"a<b": [(0, 0), (1, 1)]}, "x & y", "t", "v")
        parse(svg)  # would raise on bad escaping
        assert "a&lt;b" in svg
        assert "x &amp; y" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({}, "T", "x", "y")

    def test_degenerate_ranges_handled(self):
        svg = line_chart({"a": [(1, 5), (1, 5)]}, "T", "x", "y")
        parse(svg)


class TestSweepChart:
    def test_renders_table(self):
        table = SweepTable(title="Fig", protocols=("rip", "dbf"), degrees=(3, 4))
        table.values = {
            ("rip", 3): 10.0,
            ("rip", 4): 5.0,
            ("dbf", 3): 1.0,
            ("dbf", 4): 0.0,
        }
        svg = sweep_chart(table, ylabel="drops")
        root = parse(svg)
        assert len(root.findall(f"{SVG_NS}polyline")) == 2
        assert "rip" in svg and "dbf" in svg


class TestSeriesChart:
    def test_renders_time_series(self):
        series = {
            ("rip", 3): BinnedSeries(times=(-5.0, 0.0, 5.0), values=(20.0, 0.0, 10.0)),
            ("dbf", 3): BinnedSeries(times=(-5.0, 0.0, 5.0), values=(20.0, 19.0, 20.0)),
        }
        svg = series_chart(series, "Fig 5", "pkt/s")
        root = parse(svg)
        assert len(root.findall(f"{SVG_NS}polyline")) == 2
        assert "rip d=3" in svg

    def test_time_window_filtering(self):
        series = {
            ("x", 1): BinnedSeries(times=(-10.0, 0.0, 10.0, 99.0), values=(1, 2, 3, 4)),
        }
        svg = series_chart(series, "T", "y", t_min=-5, t_max=50)
        # Range text reflects filtered data only.
        assert "99" not in svg


class TestSaveSvg:
    def test_writes_file(self, tmp_path):
        svg = line_chart({"a": [(0, 0), (1, 1)]}, "T", "x", "y")
        path = tmp_path / "chart.svg"
        save_svg(svg, str(path))
        assert path.read_text().startswith("<svg")
