"""Unit tests for experiment configuration."""

from __future__ import annotations

import pytest

from repro.experiments.config import PROTOCOL_NAMES, ExperimentConfig


class TestExperimentConfig:
    def test_paper_profile_matches_reconstruction(self):
        cfg = ExperimentConfig.paper()
        assert (cfg.rows, cfg.cols) == (7, 7)
        assert cfg.degrees == (3, 4, 5, 6, 7, 8)
        assert cfg.runs == 10
        assert cfg.ttl == 127
        assert cfg.protocols == ("rip", "dbf", "bgp", "bgp3")

    def test_quick_profile_keeps_timers(self):
        cfg = ExperimentConfig.quick()
        # The timers under study are the protocols' own; quick mode only
        # shrinks statistical breadth.
        assert cfg.runs < ExperimentConfig.paper().runs
        assert cfg.ttl == 127

    def test_end_time(self):
        cfg = ExperimentConfig(fail_time=10.0, post_fail_window=70.0)
        assert cfg.end_time == 80.0

    def test_with_override(self):
        cfg = ExperimentConfig.quick().with_(runs=1, degrees=(4,))
        assert cfg.runs == 1
        assert cfg.degrees == (4,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rows": 2},
            {"degrees": ()},
            {"runs": 0},
            {"traffic_start": 10.0, "fail_time": 5.0},
            {"post_fail_window": 0.0},
            {"protocols": ("ripv9",)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_protocol_names_cover_paper_and_extensions(self):
        assert {"rip", "dbf", "bgp", "bgp3", "spf"} <= set(PROTOCOL_NAMES)
