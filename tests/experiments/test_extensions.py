"""Tests for the future-work extension experiments (paper §6)."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.extensions import (
    run_multiflow_scenario,
    run_random_topology_scenario,
    run_transport_scenario,
    transport_with_baseline,
)

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=1, post_fail_window=40.0
)


class TestMultiFlow:
    def test_runs_all_flows(self):
        r = run_multiflow_scenario("dbf", 4, 1, TINY, n_flows=3, n_failures=2)
        assert len(r.flows) == 3
        assert all(f.sent > 0 for f in r.flows)
        assert r.total_delivered <= r.total_sent

    def test_failures_are_distinct_links(self):
        r = run_multiflow_scenario("dbf", 4, 2, TINY, n_flows=3, n_failures=3)
        keys = {(min(a, b), max(a, b)) for a, b in r.failed_links}
        assert len(keys) == len(r.failed_links)

    def test_overlapping_failures_hurt_rip_more_than_dbf(self):
        rip = run_multiflow_scenario("rip", 4, 1, TINY, n_flows=3, n_failures=2)
        dbf = run_multiflow_scenario("dbf", 4, 1, TINY, n_flows=3, n_failures=2)
        assert dbf.delivery_ratio >= rip.delivery_ratio

    def test_deterministic(self):
        a = run_multiflow_scenario("dbf", 4, 5, TINY)
        b = run_multiflow_scenario("dbf", 4, 5, TINY)
        assert a.total_delivered == b.total_delivered
        assert a.failed_links == b.failed_links

    def test_validation(self):
        with pytest.raises(ValueError):
            run_multiflow_scenario("dbf", 4, 1, TINY, n_flows=0)
        with pytest.raises(ValueError):
            run_multiflow_scenario("dbf", 4, 1, TINY, n_flows=2, n_failures=3)


class TestTransportScenario:
    def test_transfer_completes_despite_failure(self):
        r = run_transport_scenario("dbf", 4, 1, TINY, total_segments=400)
        assert r.stats.completed

    def test_baseline_completes_faster_or_equal(self):
        r = transport_with_baseline("rip", 4, 1, TINY, total_segments=2000)
        assert r.stats.completed
        assert r.baseline_completion is not None
        assert r.stall_penalty is not None
        assert r.stall_penalty >= 0.0

    def test_rip_stalls_longer_than_dbf(self):
        """End-to-end translation of the paper's IP-layer result: RIP's long
        switch-over gap becomes a long transport stall."""
        rip = transport_with_baseline("rip", 4, 1, TINY, total_segments=3000)
        dbf = transport_with_baseline("dbf", 4, 1, TINY, total_segments=3000)
        assert rip.stats.completed and dbf.stats.completed
        assert rip.stall_penalty >= dbf.stall_penalty


class TestRandomTopology:
    def test_runs_and_accounts(self):
        r = run_random_topology_scenario("dbf", 4, 1, TINY, n_nodes=20)
        assert r.sent > 0
        assert r.delivered + r.total_drops <= r.sent

    def test_degree_effect_holds_off_lattice(self):
        """More connectivity still means fewer drops on random graphs — for
        the alternate-path protocol, whose recovery depends on a valid cached
        alternate existing (RIP's recovery is periodic-timer-bound, so its
        drops are degree-insensitive on any topology)."""
        cfg = TINY.with_(runs=1)
        sparse = sum(
            run_random_topology_scenario("dbf", 3, s, cfg, n_nodes=20).drops_no_route
            for s in range(1, 6)
        )
        dense = sum(
            run_random_topology_scenario("dbf", 6, s, cfg, n_nodes=20).drops_no_route
            for s in range(1, 6)
        )
        assert dense <= sparse
