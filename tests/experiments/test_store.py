"""Tests for the durable sweep shard/manifest store."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SweepFailure
from repro.experiments.scenario import run_scenario
from repro.experiments.persistence import FORMAT_VERSION
from repro.experiments.store import StoreMismatchError, SweepStore

TINY = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=2, post_fail_window=10.0,
    protocols=("static",),
)


def make_store(tmp_path, config=TINY):
    store = SweepStore(tmp_path / "ck")
    store.open(config)
    return store


class TestManifest:
    def test_open_creates_manifest_with_grid_and_hash(self, tmp_path):
        store = make_store(tmp_path)
        manifest = json.loads(open(store.manifest_path).read())
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["config_hash"] == TINY.fingerprint()
        assert store.grid() == TINY.grid()
        assert store.load_config() == TINY

    def test_reopen_same_config_ok(self, tmp_path):
        store = make_store(tmp_path)
        store.close()
        again = SweepStore(store.directory)
        again.open(TINY)  # no raise
        assert again.grid() == TINY.grid()

    def test_reopen_different_config_rejected(self, tmp_path):
        store = make_store(tmp_path)
        store.close()
        other = SweepStore(store.directory)
        with pytest.raises(StoreMismatchError):
            other.open(TINY.with_(runs=3))

    def test_fingerprint_stable_and_sensitive(self):
        assert TINY.fingerprint() == TINY.with_().fingerprint()
        assert TINY.fingerprint() != TINY.with_(seed=2).fingerprint()


class TestShards:
    def test_append_load_round_trip(self, tmp_path):
        store = make_store(tmp_path)
        run = run_scenario("static", 4, 1, TINY)
        failure = SweepFailure(
            protocol="static", degree=4, seed=2, error="timed out"
        )
        store.append(run)
        store.append(failure)
        store.close()
        outcomes = store.load_outcomes()
        assert set(outcomes) == {("static", 4, 1), ("static", 4, 2)}
        assert outcomes[("static", 4, 2)] == failure
        assert outcomes[("static", 4, 1)].delivered == run.delivered

    def test_missing_tasks_in_grid_order(self, tmp_path):
        store = make_store(tmp_path)
        store.append(run_scenario("static", 4, 2, TINY))  # second seed first
        store.close()
        assert store.completed_tasks() == {("static", 4, 2)}
        assert store.missing_tasks() == [("static", 4, 1)]

    def test_torn_trailing_line_ignored_on_load(self, tmp_path):
        store = make_store(tmp_path)
        store.append(run_scenario("static", 4, 1, TINY))
        store.close()
        with open(store.shards_path, "a") as f:
            f.write('{"kind": "run", "run": {"protocol"')  # torn by a kill
        assert set(store.load_outcomes()) == {("static", 4, 1)}

    def test_torn_trailing_line_truncated_on_reopen(self, tmp_path):
        store = make_store(tmp_path)
        store.append(run_scenario("static", 4, 1, TINY))
        store.close()
        with open(store.shards_path, "a") as f:
            f.write('{"kind": "failure", "fail')
        reopened = SweepStore(store.directory)
        reopened.open(TINY)
        # The torn tail is gone; a fresh append produces a clean record.
        reopened.append(run_scenario("static", 4, 2, TINY))
        reopened.close()
        lines = open(reopened.shards_path).read().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_duplicate_records_first_wins(self, tmp_path):
        store = make_store(tmp_path)
        first = run_scenario("static", 4, 1, TINY)
        store.append(first)
        store.append(
            SweepFailure(protocol="static", degree=4, seed=1, error="late dup")
        )
        store.close()
        outcome = store.load_outcomes()[("static", 4, 1)]
        assert not isinstance(outcome, SweepFailure)

    def test_unknown_record_kind_rejected(self, tmp_path):
        store = make_store(tmp_path)
        with open(store.shards_path, "a") as f:
            f.write('{"kind": "mystery"}\n')
        with pytest.raises(ValueError):
            store.load_outcomes()

    def test_empty_store_has_no_outcomes(self, tmp_path):
        store = make_store(tmp_path)
        assert store.load_outcomes() == {}
        assert store.missing_tasks() == TINY.grid()


class TestConfigDictRoundTrip:
    def test_to_from_dict(self):
        assert ExperimentConfig.from_dict(TINY.to_dict()) == TINY

    def test_to_dict_is_json_ready(self):
        json.dumps(TINY.to_dict())

    def test_unsupported_manifest_version_rejected(self, tmp_path):
        store = make_store(tmp_path)
        manifest = json.loads(open(store.manifest_path).read())
        manifest["format_version"] = 99
        with open(store.manifest_path, "w") as f:
            json.dump(manifest, f)
        fresh = SweepStore(store.directory)
        with pytest.raises(ValueError):
            fresh.open(TINY)
