"""Tests for the observation-shape validation checks."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_point
from repro.experiments.validation import format_checks, validate_observations

CFG = ExperimentConfig.quick().with_(runs=2, post_fail_window=50.0)


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for protocol in ("rip", "dbf", "bgp", "bgp3"):
        for degree in (3, 4, 6):
            out[(protocol, degree)] = run_point(protocol, degree, CFG)
    return out


class TestValidateObservations:
    def test_real_sweep_passes_all_checks(self, sweep):
        results = validate_observations(sweep)
        failing = [r for r in results if r.passed is False]
        assert not failing, format_checks(results)

    def test_five_observation_checks(self, sweep):
        results = validate_observations(sweep)
        assert len(results) == 5

    def test_missing_protocols_skip_not_fail(self, sweep):
        partial = {k: v for k, v in sweep.items() if k[0] == "dbf"}
        results = validate_observations(partial)
        assert all(r.passed is not False for r in results[:4])
        assert any(r.skipped for r in results)

    def test_broken_sweep_fails_checks(self, sweep):
        """A sweep where 'RIP' secretly performs like DBF must trip
        Observation 1 (RIP is supposed to stay lossy)."""
        broken = dict(sweep)
        for degree in (3, 4, 6):
            broken[("rip", degree)] = sweep[("dbf", degree)]
        results = validate_observations(broken)
        obs1 = results[0]
        assert obs1.passed is False

    def test_format_checks_readable(self, sweep):
        text = format_checks(validate_observations(sweep))
        assert "PASS" in text
        assert "passed" in text


class TestDegreeEdgeCases:
    """Sweeps with one degree, or different degree sets per protocol, must
    skip range-based checks instead of crashing or mis-indexing."""

    def test_single_degree_sweep_skips_range_checks(self, sweep):
        single = {k: v for k, v in sweep.items() if k[1] == 4}
        results = validate_observations(single)
        assert all(r.passed is not False for r in results[:4])
        obs1, _, obs3, _ = results[:4]
        assert obs1.skipped and "two common" in obs1.detail
        assert obs3.skipped

    def test_mismatched_degree_sets_do_not_keyerror(self, sweep):
        # rip swept at 3/4/6, dbf only at 6, bgp3 only at 3: every
        # cross-protocol check must restrict itself to common degrees.
        ragged = {k: v for k, v in sweep.items() if k[0] == "rip"}
        ragged[("dbf", 6)] = sweep[("dbf", 6)]
        ragged[("bgp", 3)] = sweep[("bgp", 3)]
        ragged[("bgp", 4)] = sweep[("bgp", 4)]
        ragged[("bgp3", 3)] = sweep[("bgp3", 3)]
        results = validate_observations(ragged)  # must not raise
        assert len(results) == 5
        obs1 = results[0]
        assert obs1.skipped  # only one common rip/dbf degree

    def test_disjoint_bgp_degrees_skip_obs4(self, sweep):
        partial = {
            ("bgp", 3): sweep[("bgp", 3)],
            ("bgp3", 6): sweep[("bgp3", 6)],
        }
        results = validate_observations(partial)
        obs4 = results[3]
        assert obs4.skipped and "no swept degree" in obs4.detail

    def test_one_common_degree_still_checks_obs4(self, sweep):
        partial = {
            ("bgp", 4): sweep[("bgp", 4)],
            ("bgp3", 4): sweep[("bgp3", 4)],
        }
        results = validate_observations(partial)
        obs4 = results[3]
        assert not obs4.skipped
