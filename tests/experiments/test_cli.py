"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "dbf"
        assert args.degree == 4

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--protocol", "ospfv99"])

    def test_figure_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])


class TestCommands:
    def test_topology_command(self, capsys):
        assert main(["topology", "--degree", "5", "--rows", "5", "--cols", "5"]) == 0
        out = capsys.readouterr().out
        assert "25 nodes" in out
        assert "connected: True" in out

    def test_run_command(self, capsys):
        assert main(["run", "--protocol", "static", "--degree", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "sent=" in out
        assert "failed link" in out

    def test_figure2_command(self, capsys):
        assert main(["figure", "2"]) == 0
        out = capsys.readouterr().out
        assert "degree 4" in out and "degree 6" in out

    def test_figure3_command_small(self, capsys):
        assert (
            main(
                [
                    "figure",
                    "3",
                    "--degrees",
                    "4",
                    "--runs",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "rip" in out

    def test_narrate_command(self, capsys):
        assert (
            main(["narrate", "--protocol", "dbf", "--degree", "4", "--seed", "1",
                  "--window", "15"])
            == 0
        )
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "Timeline" in out

    def test_sweep_save_option(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        assert (
            main(["sweep", "--protocols", "static", "--degrees", "4",
                  "--runs", "1", "--save", str(path)])
            == 0
        )
        assert path.exists()

    def test_validate_command_small(self, capsys):
        assert (
            main(["validate", "--seeds", "2", "--degrees", "3",
                  "--oracle-seeds", "1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "fuzz: 2 cases" in out
        assert "differential oracle" in out
        assert "validation OK" in out

    def test_validate_skip_oracle(self, capsys):
        assert main(["validate", "--seeds", "1", "--skip-oracle"]) == 0
        out = capsys.readouterr().out
        assert "differential oracle" not in out
        assert "validation OK" in out

    def test_sweep_command_small(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--protocols",
                    "static",
                    "--degrees",
                    "4",
                    "--runs",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "static" in out


class TestWatchCommand:
    def test_run_live_log_then_watch(self, capsys, tmp_path):
        path = tmp_path / "run.log"
        assert main([
            "run", "--protocol", "static", "--degree", "4", "--seed", "1",
            "--live-log", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["watch", str(path), "--once", "--check"]) == 0
        out = capsys.readouterr().out
        assert "log schema: ok" in out
        assert "scenario run [ENDED]" in out

    def test_watch_check_fails_on_corrupt_log(self, capsys, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text('{"kind": "heartbeat", "shard": 0}\n')
        assert main(["watch", str(path), "--once", "--check"]) == 1
        assert "LOG SCHEMA PROBLEMS" in capsys.readouterr().out

    def test_shard_perfetto_requires_live_log(self, capsys, tmp_path):
        rc = main(["shard", "--perfetto", str(tmp_path / "t.json")])
        assert rc == 2
        assert "--live-log" in capsys.readouterr().err

    def test_shard_live_log_and_perfetto(self, capsys, tmp_path):
        log = tmp_path / "shard.log"
        trace = tmp_path / "trace.json"
        assert main([
            "shard", "--protocol", "dbf", "--degree", "4", "--seed", "7",
            "--shards", "2", "--window", "8",
            "--live-log", str(log), "--perfetto", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "run-event log written" in out
        assert "cross-shard perfetto trace written" in out
        assert trace.exists()
        capsys.readouterr()
        assert main(["watch", str(log), "--once", "--check"]) == 0
        assert "shard run [ENDED]" in capsys.readouterr().out
