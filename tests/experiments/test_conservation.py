"""Packet conservation: every packet is delivered, dropped, or in flight.

A discrete-event forwarding bug (double-count, lost callback, packet
duplicated across a failure) breaks this law, so it is asserted across the
full protocol matrix and several failure layouts.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario

CFG = ExperimentConfig.quick().with_(
    rows=5, cols=5, degrees=(4,), runs=1, post_fail_window=30.0
)

PROTOCOLS = ("rip", "dbf", "dual", "bgp", "bgp3", "spf", "static")


class TestConservation:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_no_packet_unaccounted(self, protocol, seed):
        r = run_scenario(protocol, 4, seed, CFG)
        accounted = r.delivered + r.total_drops
        in_flight = r.sent - accounted
        # Nothing is created from thin air...
        assert accounted <= r.sent, (
            f"{protocol} seed {seed}: delivered+dropped {accounted} > sent {r.sent}"
        )
        # ...and at most a pipeline's worth of packets is still in flight
        # when the run ends (path length bounded by TTL anyway).
        assert 0 <= in_flight <= 12

    @pytest.mark.parametrize("protocol", ("rip", "dual", "bgp3"))
    def test_conservation_under_heavy_load(self, protocol):
        r = run_scenario(protocol, 5, 4, CFG.with_(rate_pps=150.0))
        in_flight = r.sent - r.delivered - r.total_drops
        # Congested loops hold more packets (queues + propagation), but the
        # bound is still structural: queue capacity x on-path links.
        assert 0 <= in_flight <= 200

    def test_delivery_never_exceeds_sent_multiflow(self):
        from repro.experiments.extensions import run_multiflow_scenario

        r = run_multiflow_scenario("dbf", 4, 1, CFG, n_flows=3, n_failures=2)
        for flow in r.flows:
            assert flow.delivered <= flow.sent
