"""Tests for the per-figure harnesses (tiny configurations)."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    SweepTable,
    ablation_alternate_cache,
    ablation_load_sensitivity,
    ablation_mrai_granularity,
    extension_linkstate,
    figure2_topologies,
    figure3_drops_no_route,
    figure4_ttl_expirations,
    figure5_throughput,
    figure6_convergence,
    figure7_delay,
    headline_bgp_vs_bgp3,
)

TINY = ExperimentConfig.quick().with_(
    rows=5,
    cols=5,
    degrees=(4, 6),
    runs=1,
    protocols=("rip", "dbf"),
    post_fail_window=35.0,
)


class TestFigure2:
    def test_reports_structure_per_degree(self):
        out = figure2_topologies(5, 5, degrees=(4, 5, 6))
        assert set(out) == {4, 5, 6}
        for degree, info in out.items():
            assert info["n_nodes"] == 25
            assert info["connected"]
        assert out[6]["n_links"] > out[5]["n_links"] > out[4]["n_links"]


class TestSweepFigures:
    def test_figure3_shape(self):
        table = figure3_drops_no_route(TINY)
        assert isinstance(table, SweepTable)
        assert set(table.values) == {(p, d) for p in TINY.protocols for d in TINY.degrees}
        assert all(v >= 0 for v in table.values.values())

    def test_figure3_series_accessor(self):
        table = figure3_drops_no_route(TINY)
        series = table.series("rip")
        assert [d for d, _ in series] == [4, 6]

    def test_figure4_shape(self):
        table = figure4_ttl_expirations(TINY)
        assert all(v >= 0 for v in table.values.values())

    def test_figure6_returns_two_tables(self):
        fwd, rt = figure6_convergence(TINY)
        assert "6a" in fwd.title and "6b" in rt.title
        for key in fwd.values:
            assert rt.values[key] >= 0


class TestSeriesFigures:
    def test_figure5_series_cover_requested_grid(self):
        out = figure5_throughput(TINY, degrees=(4,))
        assert set(out) == {("rip", 4), ("dbf", 4)}
        for series in out.values():
            assert len(series) > 0

    def test_figure7_delay_series(self):
        out = figure7_delay(TINY, degrees=(4,))
        for series in out.values():
            assert all(v >= 0 for v in series.values)


class TestHeadlineAndAblations:
    def test_headline_reports_both_protocols_and_ratio(self):
        out = headline_bgp_vs_bgp3(TINY.with_(protocols=("bgp", "bgp3")), degree=4)
        assert set(out) == {"bgp", "bgp3", "ratio"}

    def test_mrai_ablation_uses_pd_variants(self):
        table = ablation_mrai_granularity(TINY, degree=4)
        assert set(p for p, _ in table.values) == {"bgp", "bgp-pd", "bgp3", "bgp3-pd"}

    def test_cache_ablation_compares_rip_dbf(self):
        table = ablation_alternate_cache(TINY)
        for degree in TINY.degrees:
            assert table.value("dbf", degree) <= table.value("rip", degree)

    def test_load_sensitivity_reports_causes(self):
        out = ablation_load_sensitivity(TINY, degree=4, rates=(10.0, 150.0))
        assert set(out) == {10.0, 150.0}
        assert set(out[10.0]) == {"ttl", "queue", "no_route"}

    def test_linkstate_extension_includes_spf(self):
        table = extension_linkstate(TINY)
        assert ("spf", 4) in table.values
