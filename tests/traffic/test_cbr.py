"""Unit tests for the CBR source and flow spec."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.topology import generators
from repro.traffic.cbr import CbrSource
from repro.traffic.flows import FlowSpec


def make(spec):
    sim = Simulator()
    net = Network(sim, generators.line(2))
    net.node(0).set_next_hop(1, 1)
    return sim, net, CbrSource(sim, net, spec)


class TestFlowSpec:
    def test_interval_and_expected_packets(self):
        spec = FlowSpec(flow_id=1, src=0, dst=1, rate_pps=20, start=0.0, stop=5.0)
        assert spec.interval == pytest.approx(0.05)
        assert spec.expected_packets == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_pps": 0},
            {"rate_pps": -5},
            {"start": 5.0, "stop": 5.0},
            {"ttl": 0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(flow_id=1, src=0, dst=1, rate_pps=10, start=0.0, stop=1.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            FlowSpec(**base)


class TestCbrSource:
    def test_emits_at_constant_rate(self):
        spec = FlowSpec(flow_id=1, src=0, dst=1, rate_pps=10, start=1.0, stop=2.0)
        sim, net, src = make(spec)
        src.start()
        sim.run(until=5.0)
        assert src.sent == 10
        assert net.node(1).delivered == 10

    def test_respects_start_time(self):
        spec = FlowSpec(flow_id=1, src=0, dst=1, rate_pps=10, start=2.0, stop=3.0)
        sim, net, src = make(spec)
        src.start()
        sim.run(until=1.9)
        assert src.sent == 0

    def test_stops_at_stop_time(self):
        spec = FlowSpec(flow_id=1, src=0, dst=1, rate_pps=100, start=0.5, stop=1.0)
        sim, net, src = make(spec)
        src.start()
        sim.run(until=10.0)
        assert src.sent == 50

    def test_start_is_idempotent(self):
        spec = FlowSpec(flow_id=1, src=0, dst=1, rate_pps=10, start=0.5, stop=1.5)
        sim, net, src = make(spec)
        src.start()
        src.start()
        sim.run(until=5.0)
        assert src.sent == 10

    def test_packets_carry_flow_spec_parameters(self):
        spec = FlowSpec(
            flow_id=7, src=0, dst=1, rate_pps=10, start=0.0, stop=0.2,
            packet_bytes=64, ttl=9,
        )
        sim = Simulator()
        net = Network(sim, generators.line(2))
        seen = []

        class App:
            def on_packet(self, packet, node):
                seen.append(packet)

        net.node(0).set_next_hop(1, 1)
        net.node(1).attach_app(App())
        CbrSource(sim, net, spec).start()
        sim.run(until=2.0)
        assert seen
        assert all(p.flow_id == 7 and p.size_bytes == 64 for p in seen)
        # TTL decremented zero times on a one-hop path (no intermediate router).
        assert all(p.ttl == 9 for p in seen)
