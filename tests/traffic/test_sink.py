"""Unit tests for the packet sink and flow statistics."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.topology import generators
from repro.traffic.flows import Delivery, FlowStats
from repro.traffic.sink import PacketSink


class TestPacketSink:
    def _deliver_one(self, record_paths=False):
        sim = Simulator()
        net = Network(sim, generators.line(3), record_paths=record_paths)
        net.node(0).set_next_hop(2, 1)
        net.node(1).set_next_hop(2, 2)
        sink = PacketSink(flow_id=1, ttl_at_send=64)
        net.node(2).attach_app(sink)
        net.node(0).originate(Packet(src=0, dst=2, flow_id=1, ttl=64, size_bytes=64))
        sim.run()
        return sim, sink

    def test_records_delivery_with_delay_and_hops(self):
        sim, sink = self._deliver_one()
        assert sink.stats.delivered == 1
        d = sink.stats.deliveries[0]
        assert d.delay == pytest.approx(sim.now)  # sent at t=0
        assert d.hops == 1  # one intermediate router decremented TTL

    def test_path_recorded_when_enabled(self):
        sim, sink = self._deliver_one(record_paths=True)
        assert sink.stats.deliveries[0].path == (0, 1, 2)

    def test_other_flows_ignored(self):
        sim = Simulator()
        net = Network(sim, generators.line(2))
        net.node(0).set_next_hop(1, 1)
        sink = PacketSink(flow_id=1)
        net.node(1).attach_app(sink)
        net.node(0).originate(Packet(src=0, dst=1, flow_id=2))
        sim.run()
        assert sink.stats.delivered == 0


class TestFlowStats:
    def test_ratios_and_aggregates(self):
        stats = FlowStats(sent=10, delivered=2)
        stats.deliveries = [
            Delivery(time=1.0, delay=0.1, hops=3, packet_id=1),
            Delivery(time=2.0, delay=0.3, hops=5, packet_id=2),
        ]
        assert stats.lost == 8
        assert stats.delivery_ratio == pytest.approx(0.2)
        assert stats.mean_delay == pytest.approx(0.2)
        assert stats.max_delay == pytest.approx(0.3)

    def test_empty_stats(self):
        stats = FlowStats()
        assert stats.delivery_ratio == 0.0
        assert stats.mean_delay == 0.0
        assert stats.max_delay == 0.0
