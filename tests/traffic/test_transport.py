"""Tests for the reliable transport (TCP-like window/timeout flow)."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.topology import generators
from repro.traffic.transport import (
    ReliableReceiver,
    ReliableSender,
    TransportConfig,
)


def make_line(n=4):
    sim = Simulator()
    net = Network(sim, generators.line(n))
    # Static routes in both directions.
    for i in range(n - 1):
        net.node(i).set_next_hop(n - 1, i + 1)
    for i in range(1, n):
        net.node(i).set_next_hop(0, i - 1)
    return sim, net


def make_pair(sim, net, total=50, n=4, config=None):
    config = config or TransportConfig()
    ReliableReceiver(net, n - 1, 0, flow_id=1, config=config)
    tx = ReliableSender(sim, net, 0, n - 1, flow_id=1, total_segments=total, config=config)
    return tx


class TestTransferBasics:
    def test_completes_in_order(self):
        sim, net = make_line()
        tx = make_pair(sim, net, total=50)
        tx.start()
        sim.run(until=60.0)
        assert tx.done
        assert tx.stats.completed
        assert tx.stats.retransmissions == 0
        assert tx.stats.transmissions == 50

    def test_window_limits_outstanding_segments(self):
        sim, net = make_line()
        cfg = TransportConfig(window=4)
        tx = make_pair(sim, net, total=100, config=cfg)
        tx.start()
        # Before any ACK returns, exactly `window` segments are out.
        assert tx.stats.transmissions == 4

    def test_progress_curve_monotone(self):
        sim, net = make_line()
        tx = make_pair(sim, net, total=30)
        tx.start()
        sim.run(until=60.0)
        acks = [cum for _, cum in tx.stats.progress]
        assert acks == sorted(acks)
        assert acks[-1] == 30

    def test_start_idempotent(self):
        sim, net = make_line()
        tx = make_pair(sim, net, total=10)
        tx.start()
        tx.start()
        sim.run(until=60.0)
        assert tx.stats.transmissions == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            TransportConfig(window=0)
        with pytest.raises(ValueError):
            TransportConfig(initial_rto=0)
        sim, net = make_line()
        with pytest.raises(ValueError):
            ReliableSender(sim, net, 0, 3, flow_id=1, total_segments=0)


class TestLossRecovery:
    def test_retransmits_through_an_outage(self):
        """Break the path mid-transfer, repair it, and require completion."""
        sim, net = make_line()
        cfg = TransportConfig(window=4, initial_rto=0.5)
        tx = make_pair(sim, net, total=200, config=cfg)
        tx.start()
        injector = LinkScheduler(sim, net, detection_delay=0.01)
        injector.fail_link(1, 2, at=0.2)
        injector.restore_link(1, 2, at=3.0)
        sim.run(until=120.0)
        assert tx.done
        assert tx.stats.retransmissions > 0
        assert tx.stats.timeouts > 0

    def test_rto_backoff_during_blackhole(self):
        sim, net = make_line()
        cfg = TransportConfig(window=2, initial_rto=0.5, max_rto=4.0)
        tx = make_pair(sim, net, total=10, config=cfg)
        tx.start()
        net.link(1, 2).fail()  # permanent: timeouts back off exponentially
        sim.run(until=30.0)
        assert not tx.done
        # Timeouts at 0.5, 1, 2, 4, 4, 4... -> at most ~9 in 30 s.
        assert 4 <= tx.stats.timeouts <= 10

    def test_duplicate_segments_acked_not_redelivered(self):
        sim, net = make_line()
        cfg = TransportConfig(window=2, initial_rto=0.2)
        rx = ReliableReceiver(net, 3, 0, flow_id=1, config=cfg)
        tx = ReliableSender(sim, net, 0, 3, flow_id=1, total_segments=5, config=cfg)
        tx.start()
        sim.run(until=30.0)
        assert tx.done
        # Receiver saw every segment at least once; next_expected is final.
        assert rx.next_expected == 5
