"""Unit + property tests for the Baran regular-mesh family (Figure 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.mesh import (
    MAX_DEGREE,
    MIN_DEGREE,
    interior_nodes,
    node_at,
    regular_mesh,
)
from repro.topology.validate import check_interior_degree


class TestConstruction:
    @pytest.mark.parametrize("degree", range(MIN_DEGREE, MAX_DEGREE + 1))
    def test_paper_mesh_interior_degree(self, degree):
        topo = regular_mesh(7, 7, degree)
        interior = interior_nodes(topo, 7, 7)
        check_interior_degree(topo, interior, degree)

    @pytest.mark.parametrize("degree", range(MIN_DEGREE, MAX_DEGREE + 1))
    def test_paper_mesh_connected(self, degree):
        assert regular_mesh(7, 7, degree).is_connected()

    def test_49_nodes_like_the_paper(self):
        assert regular_mesh(7, 7, 4).n_nodes == 49

    def test_degree_4_is_plain_grid(self):
        topo = regular_mesh(3, 3, 4)
        # 2*3*2 = 12 links in a 3x3 grid.
        assert topo.n_links == 12

    def test_degree_6_has_diagonals(self):
        topo = regular_mesh(3, 3, 6)
        assert topo.has_link(node_at(0, 0, 3), node_at(1, 1, 3))

    def test_degree_3_brick_pattern_removes_vertical_links(self):
        full = regular_mesh(7, 7, 4).n_links
        brick = regular_mesh(7, 7, 3).n_links
        assert brick < full

    def test_richer_degree_has_more_links(self):
        counts = [regular_mesh(7, 7, d).n_links for d in range(3, 9)]
        assert counts == sorted(counts)
        assert len(set(counts)) == len(counts)

    def test_positions_recorded(self):
        topo = regular_mesh(3, 3, 4)
        assert topo.positions[node_at(1, 2, 3)] == (1, 2)

    @pytest.mark.parametrize("degree", [2, 9])
    def test_unsupported_degree_rejected(self, degree):
        with pytest.raises(ValueError):
            regular_mesh(7, 7, degree)

    def test_too_small_mesh_rejected(self):
        with pytest.raises(ValueError):
            regular_mesh(2, 7, 4)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.integers(min_value=3, max_value=9),
        cols=st.integers(min_value=3, max_value=9),
        degree=st.integers(min_value=MIN_DEGREE, max_value=MAX_DEGREE),
    )
    def test_interior_regularity_any_size(self, rows, cols, degree):
        topo = regular_mesh(rows, cols, degree)
        interior = interior_nodes(topo, rows, cols)
        check_interior_degree(topo, interior, degree)

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.integers(min_value=3, max_value=9),
        cols=st.integers(min_value=3, max_value=9),
        degree=st.integers(min_value=MIN_DEGREE, max_value=MAX_DEGREE),
    )
    def test_always_connected(self, rows, cols, degree):
        assert regular_mesh(rows, cols, degree).is_connected()

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(min_value=3, max_value=8),
        cols=st.integers(min_value=3, max_value=8),
        degree=st.integers(min_value=MIN_DEGREE, max_value=MAX_DEGREE),
    )
    def test_border_degree_never_exceeds_interior(self, rows, cols, degree):
        topo = regular_mesh(rows, cols, degree)
        for node in topo.nodes:
            assert topo.degree(node) <= degree
