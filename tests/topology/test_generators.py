"""Unit tests for auxiliary topology generators."""

from __future__ import annotations

import pytest

from repro.topology import generators


class TestBasicShapes:
    def test_line(self):
        topo = generators.line(4)
        assert topo.n_nodes == 4 and topo.n_links == 3
        assert topo.degree(0) == 1 and topo.degree(1) == 2

    def test_ring(self):
        topo = generators.ring(5)
        assert topo.n_links == 5
        assert all(topo.degree(n) == 2 for n in topo.nodes)

    def test_star(self):
        topo = generators.star(4)
        assert topo.degree(0) == 4
        assert all(topo.degree(n) == 1 for n in range(1, 5))

    def test_complete(self):
        topo = generators.complete(5)
        assert topo.n_links == 10
        assert all(topo.degree(n) == 4 for n in topo.nodes)

    @pytest.mark.parametrize(
        "func,arg", [(generators.line, 1), (generators.ring, 2), (generators.star, 0), (generators.complete, 1)]
    )
    def test_minimum_sizes_enforced(self, func, arg):
        with pytest.raises(ValueError):
            func(arg)


class TestRandomRegular:
    def test_connected_and_regular(self):
        topo = generators.random_regular(20, 4, seed=7)
        assert topo.is_connected()
        assert all(topo.degree(n) == 4 for n in topo.nodes)

    def test_deterministic_per_seed(self):
        a = generators.random_regular(12, 3, seed=3)
        b = generators.random_regular(12, 3, seed=3)
        assert set(a.links) == set(b.links)

    def test_odd_parity_rejected(self):
        with pytest.raises(ValueError):
            generators.random_regular(7, 3, seed=1)

    def test_degree_ge_n_rejected(self):
        with pytest.raises(ValueError):
            generators.random_regular(4, 4, seed=1)


class TestAttachHost:
    def test_attach_allocates_fresh_id(self):
        topo = generators.ring(5)
        host = generators.attach_host(topo, router=2)
        assert host == 5
        assert topo.degree(host) == 1
        assert topo.has_link(2, host)

    def test_attach_explicit_id(self):
        topo = generators.ring(5)
        host = generators.attach_host(topo, router=0, host=100)
        assert host == 100

    def test_attach_to_unknown_router_rejected(self):
        topo = generators.ring(5)
        with pytest.raises(ValueError):
            generators.attach_host(topo, router=99)

    def test_attach_duplicate_host_rejected(self):
        topo = generators.ring(5)
        with pytest.raises(ValueError):
            generators.attach_host(topo, router=0, host=3)


class TestFromNetworkx:
    def test_round_trip(self):
        import networkx as nx

        g = nx.cycle_graph(6)
        topo = generators.from_networkx(g, name="cycle")
        assert topo.n_nodes == 6 and topo.n_links == 6
