"""Unit tests for the topology graph model."""

from __future__ import annotations

import pytest

from repro.topology.graph import (
    LinkSpec,
    Topology,
    all_shortest_path_trees,
    merge,
    shortest_path_tree,
)


class TestLinkSpec:
    def test_endpoints_canonical_order(self):
        assert LinkSpec(5, 2).endpoints == (2, 5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"a": 1, "b": 1},
            {"a": 1, "b": 2, "cost": 0},
            {"a": 1, "b": 2, "delay": -1.0},
            {"a": 1, "b": 2, "bandwidth": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LinkSpec(**kwargs)


class TestTopology:
    def test_connect_adds_nodes(self):
        topo = Topology()
        topo.connect(1, 2)
        assert topo.nodes == {1, 2}
        assert topo.has_link(2, 1)

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.connect(1, 2)
        with pytest.raises(ValueError):
            topo.connect(2, 1)

    def test_neighbors_sorted(self):
        topo = Topology()
        topo.connect(5, 1)
        topo.connect(5, 3)
        topo.connect(5, 2)
        assert list(topo.neighbors(5)) == [1, 2, 3]

    def test_degree(self):
        topo = Topology()
        topo.connect(0, 1)
        topo.connect(0, 2)
        assert topo.degree(0) == 2
        assert topo.degree(1) == 1

    def test_is_connected(self):
        topo = Topology()
        topo.connect(0, 1)
        topo.add_node(9)
        assert not topo.is_connected()

    def test_copy_is_independent(self):
        topo = Topology()
        topo.connect(0, 1)
        clone = topo.copy("clone")
        clone.connect(1, 2)
        assert not topo.has_link(1, 2)

    def test_merge_disjoint(self):
        a = Topology("a")
        a.connect(0, 1)
        b = Topology("b")
        b.connect(10, 11)
        merged = merge("m", [a, b])
        assert merged.n_nodes == 4
        assert merged.n_links == 2


class TestShortestPaths:
    def test_simple_path(self):
        topo = Topology()
        topo.connect(0, 1)
        topo.connect(1, 2)
        assert topo.shortest_path(0, 2) == [0, 1, 2]

    def test_disconnected_returns_none(self):
        topo = Topology()
        topo.connect(0, 1)
        topo.add_node(5)
        assert topo.shortest_path(0, 5) is None

    def test_exclude_link_forces_detour(self):
        topo = Topology()
        topo.connect(0, 1)
        topo.connect(1, 3)
        topo.connect(0, 2)
        topo.connect(2, 3)
        direct = topo.shortest_path(0, 3)
        assert direct == [0, 1, 3]  # lexicographic tie-break: via 1
        detour = topo.shortest_path(0, 3, exclude_link=(0, 1))
        assert detour == [0, 2, 3]

    def test_costs_respected(self):
        topo = Topology()
        topo.connect(0, 1, cost=10)
        topo.connect(0, 2, cost=1)
        topo.connect(2, 1, cost=1)
        assert topo.shortest_path(0, 1) == [0, 2, 1]

    def test_deterministic_tie_break_lowest_ids(self):
        # Diamond with two equal-cost paths: 0-1-3 and 0-2-3.
        topo = Topology()
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            topo.connect(a, b)
        assert topo.shortest_path(0, 3) == [0, 1, 3]

    def test_tree_consistency_with_single_queries(self):
        topo = Topology()
        for a, b in [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]:
            topo.connect(a, b)
        tree = shortest_path_tree(topo.to_networkx(), 0)
        for dest in topo.nodes:
            assert tree[dest] == topo.shortest_path(0, dest)

    def test_all_pairs_cache_returns_same_object(self):
        topo = Topology()
        topo.connect(0, 1)
        assert all_shortest_path_trees(topo) is all_shortest_path_trees(topo)

    def test_all_pairs_covers_every_source(self):
        topo = Topology()
        for a, b in [(0, 1), (1, 2)]:
            topo.connect(a, b)
        trees = all_shortest_path_trees(topo)
        assert set(trees) == {0, 1, 2}
        assert trees[2][0] == [2, 1, 0]

    def test_tree_paths_are_prefix_consistent(self):
        """Subpath optimality: every prefix of a tree path is the tree path
        of the intermediate node . . . the property warm starts rely on."""
        from repro.topology.mesh import regular_mesh

        topo = regular_mesh(4, 4, 5)
        tree = shortest_path_tree(topo.to_networkx(), 0)
        for dest, path in tree.items():
            for i in range(1, len(path)):
                assert tree[path[i]] == path[: i + 1]
