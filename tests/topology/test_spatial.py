"""Tests for spatial topologies (positions -> range-based connectivity)."""

from __future__ import annotations

import pytest

from repro.topology.spatial import (
    connectivity,
    connectivity_changes,
    derive_topology,
    distance,
)


class TestDistance:
    def test_planar(self):
        assert distance((0, 0, 0), (3, 4, 0)) == 5.0

    def test_3d(self):
        assert distance((1, 2, 2), (1, 2, 0)) == 2.0


class TestConnectivity:
    POSITIONS = {0: (0.0, 0.0, 0.0), 1: (100.0, 0.0, 0.0), 2: (300.0, 0.0, 0.0)}

    def test_in_range_pairs_linked(self):
        assert connectivity(self.POSITIONS, radio_range=150.0) == {(0, 1)}

    def test_range_is_inclusive(self):
        assert (0, 1) in connectivity(self.POSITIONS, radio_range=100.0)

    def test_wide_range_links_everyone(self):
        links = connectivity(self.POSITIONS, radio_range=1000.0)
        assert links == {(0, 1), (0, 2), (1, 2)}

    def test_keys_are_canonical(self):
        links = connectivity(self.POSITIONS, radio_range=1000.0)
        assert all(a < b for a, b in links)

    def test_nonpositive_range_rejected(self):
        with pytest.raises(ValueError):
            connectivity(self.POSITIONS, radio_range=0.0)


class TestConnectivityChanges:
    def test_downs_and_ups_sorted(self):
        old = {(0, 1), (2, 3), (1, 2)}
        new = {(0, 1), (0, 3), (0, 2)}
        downs, ups = connectivity_changes(old, new)
        assert downs == [(1, 2), (2, 3)]
        assert ups == [(0, 2), (0, 3)]

    def test_no_change(self):
        assert connectivity_changes({(0, 1)}, {(0, 1)}) == ([], [])


class TestDeriveTopology:
    def test_topology_matches_connectivity(self):
        positions = {0: (0.0, 0.0, 0.0), 1: (50.0, 0.0, 0.0), 2: (500.0, 0.0, 0.0)}
        topo = derive_topology(positions, radio_range=100.0)
        assert topo.has_link(0, 1)
        assert not topo.has_link(1, 2)

    def test_isolated_nodes_kept(self):
        positions = {0: (0.0, 0.0, 0.0), 1: (999.0, 999.0, 0.0)}
        topo = derive_topology(positions, radio_range=10.0)
        assert topo.nodes == {0, 1}
        assert topo.n_links == 0

    def test_explicit_links_override_derivation(self):
        positions = {0: (0.0, 0.0, 0.0), 1: (999.0, 0.0, 0.0)}
        topo = derive_topology(positions, radio_range=10.0, links={(0, 1)})
        assert topo.has_link(0, 1)

    def test_link_attrs_forwarded(self):
        positions = {0: (0.0, 0.0, 0.0), 1: (50.0, 0.0, 0.0)}
        topo = derive_topology(positions, radio_range=100.0, cost=7)
        assert topo.link(0, 1).cost == 7
