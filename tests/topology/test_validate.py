"""Unit tests for topology validation."""

from __future__ import annotations

import pytest

from repro.topology import generators
from repro.topology.graph import Topology
from repro.topology.validate import (
    TopologyError,
    check_connected,
    check_interior_degree,
    degree_histogram,
)


class TestValidation:
    def test_check_connected_passes(self):
        check_connected(generators.ring(4))

    def test_check_connected_raises(self):
        topo = Topology()
        topo.connect(0, 1)
        topo.add_node(5)
        with pytest.raises(TopologyError):
            check_connected(topo)

    def test_degree_histogram(self):
        topo = generators.star(3)
        assert degree_histogram(topo) == {3: 1, 1: 3}

    def test_check_interior_degree_passes(self):
        topo = generators.ring(5)
        check_interior_degree(topo, list(topo.nodes), 2)

    def test_check_interior_degree_reports_violations(self):
        topo = generators.line(4)
        with pytest.raises(TopologyError) as exc:
            check_interior_degree(topo, [0, 1], 2)
        assert "0" in str(exc.value)
