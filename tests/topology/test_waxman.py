"""Tests for the Waxman random-graph generator."""

from __future__ import annotations

import pytest

from repro.topology.generators import waxman


class TestWaxman:
    def test_connected(self):
        topo = waxman(25, seed=1)
        assert topo.is_connected()
        assert topo.n_nodes == 25

    def test_deterministic_per_seed(self):
        a = waxman(20, seed=5)
        b = waxman(20, seed=5)
        assert set(a.links) == set(b.links)

    def test_different_seeds_differ(self):
        # Distant seeds: the generator retries consecutive seeds until it
        # finds a connected sample, so adjacent seeds can collide.
        a = waxman(20, seed=1)
        b = waxman(20, seed=500)
        assert set(a.links) != set(b.links)

    def test_alpha_controls_density(self):
        sparse = waxman(30, seed=1, alpha=0.3)
        dense = waxman(30, seed=1, alpha=0.9)
        assert dense.n_links > sparse.n_links

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            waxman(1, seed=1)

    def test_usable_as_experiment_substrate(self):
        """Protocols converge on Waxman graphs like on any other topology."""
        from ..conftest import build_network, metrics_match_shortest_paths

        topo = waxman(15, seed=2)
        sim, net, _ = build_network(topo, "dbf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        assert metrics_match_shortest_paths(net)
