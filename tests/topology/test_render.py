"""Tests for the ASCII mesh renderer."""

from __future__ import annotations

import pytest

from repro.topology.mesh import regular_mesh
from repro.topology.render import render_mesh


class TestRenderMesh:
    def test_line_count(self):
        text = render_mesh(regular_mesh(5, 5, 4), 5, 5)
        # 5 node rows + 4 inter-rows.
        assert len(text.splitlines()) == 9

    def test_all_node_ids_present(self):
        text = render_mesh(regular_mesh(4, 4, 4), 4, 4)
        for node in range(16):
            assert f"{node:02d}" in text

    def test_horizontal_glyph_count_matches_links(self):
        topo = regular_mesh(4, 4, 4)
        text = render_mesh(topo, 4, 4)
        horizontals = sum(1 for (a, b) in topo.links if abs(a - b) == 1)
        assert text.count("--") == horizontals

    def test_vertical_glyph_count_matches_links(self):
        topo = regular_mesh(4, 4, 4)
        text = render_mesh(topo, 4, 4)
        verticals = sum(1 for (a, b) in topo.links if abs(a - b) == 4)
        assert text.count("|") == verticals

    def test_degree3_drops_some_verticals(self):
        full = render_mesh(regular_mesh(5, 5, 4), 5, 5).count("|")
        brick = render_mesh(regular_mesh(5, 5, 3), 5, 5).count("|")
        assert brick < full

    def test_degree6_draws_diagonals(self):
        text = render_mesh(regular_mesh(4, 4, 6), 4, 4)
        assert "\\" in text
        assert "/" not in text  # degree 6 has only main diagonals

    def test_degree8_draws_crossings(self):
        text = render_mesh(regular_mesh(4, 4, 8), 4, 4)
        assert "X" in text

    def test_failed_link_marked(self):
        topo = regular_mesh(4, 4, 4)
        text = render_mesh(topo, 4, 4, failed_link=(1, 2))
        assert "xx" in text
        text_v = render_mesh(topo, 4, 4, failed_link=(1, 5))
        assert "x " in text_v
