"""Tests for the preferential-attachment scale-free generator."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.topology.generators import scale_free
from repro.topology.validate import check_connected, degree_histogram

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Pinned fixed-seed output: the sorted degree sequence of
#: scale_free(30, m=2, seed=5).  Any change to the sampling order or the RNG
#: stream derivation shows up here.
GOLDEN_DEGREE_SEQUENCE = [
    2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
    3, 3, 3, 3, 3, 3,
    4, 4, 4, 4,
    5, 5, 6, 11, 11, 12,
]


def _degree_sequence(topo) -> list[int]:
    return sorted(
        sum(1 for key in topo.links if node in key) for node in topo.nodes
    )


def test_fixed_seed_golden_degree_sequence():
    topo = scale_free(30, m=2, seed=5)
    assert _degree_sequence(topo) == GOLDEN_DEGREE_SEQUENCE
    assert topo.n_nodes == 30
    assert topo.n_links == 56  # m*(n-m-1) + m initial star links


@pytest.mark.parametrize("exponent", [0.5, 1.0, 1.5])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_connected_by_construction(seed, exponent):
    topo = scale_free(80, m=2, seed=seed, exponent=exponent)
    assert topo.is_connected()
    assert topo.n_nodes == 80


def test_power_law_tail():
    # Preferential attachment grows hubs: the maximum degree dwarfs the
    # median (which stays at m), and most nodes keep small degree.
    degrees = _degree_sequence(scale_free(400, m=2, seed=1))
    median = degrees[len(degrees) // 2]
    assert median == 2
    assert degrees[-1] >= 8 * median
    small = sum(1 for d in degrees if d <= 3)
    assert small >= len(degrees) * 0.6


def test_same_seed_reproduces_same_graph_in_process():
    a = scale_free(50, m=2, seed=7)
    b = scale_free(50, m=2, seed=7)
    assert sorted(a.links) == sorted(b.links)
    c = scale_free(50, m=2, seed=8)
    assert sorted(a.links) != sorted(c.links)


def test_cross_process_determinism():
    # All randomness comes from RngStreams, so a fresh interpreter with a
    # different hash seed must grow the identical graph.
    script = (
        "from repro.topology.generators import scale_free;"
        "t = scale_free(30, m=2, seed=5);"
        "print(sorted(t.links))"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = "12345"
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    local = scale_free(30, m=2, seed=5)
    assert out.stdout.strip() == str(sorted(local.links))


@pytest.mark.parametrize("m", [1, 2, 3])
def test_generated_graphs_pass_topology_validate(m):
    # The structural guards experiments assert before running: connected
    # (check_connected raises TopologyError otherwise), every node wired
    # (attachment gives each non-seed node exactly m links, so minimum
    # degree >= 1 everywhere), and the degree histogram accounts for all
    # nodes.
    topo = scale_free(60, m=m, seed=4)
    check_connected(topo)
    hist = degree_histogram(topo)
    assert sum(hist.values()) == topo.n_nodes
    assert min(hist) >= 1
    # Canonical link keys: no self-loops, no duplicate edges.
    assert all(a < b for a, b in topo.links)
    assert len(topo.links) == len(set(topo.links))


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(n=10, m=0), "m >= 1"),
        (dict(n=3, m=2), "n >= m\\+2"),
        (dict(n=10, m=2, exponent=-0.5), "non-negative"),
    ],
)
def test_invalid_parameters_raise(kwargs, match):
    with pytest.raises(ValueError, match=match):
        scale_free(**kwargs)
