"""Property tests for the topology partitioner (the repro.dist contract)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.partition import partition_topology
from repro.topology import generators
from repro.topology.graph import Topology
from repro.topology.mesh import regular_mesh


def _check_contract(topo, partition, shards):
    # Every node in exactly one shard; shards together cover the node set.
    assert set(partition.assignment) == set(topo.nodes)
    assert sum(len(p) for p in partition.parts) == topo.n_nodes
    for node, shard in partition.assignment.items():
        assert node in partition.parts[shard]
    assert all(partition.parts)  # no empty shard
    assert partition.shards == shards

    # Cut-link set: exactly the links whose endpoints differ in shard, in
    # canonical sorted (min, max) order.
    expected_cut = sorted(
        key
        for key in topo.links
        if partition.assignment[key[0]] != partition.assignment[key[1]]
    )
    assert list(partition.cut_links) == expected_cut
    assert all(a < b for a, b in partition.cut_links)

    # Lookahead: the minimum propagation delay over cut links.
    if partition.cut_links:
        assert partition.lookahead == min(
            topo.links[key].delay for key in partition.cut_links
        )
    else:
        assert partition.lookahead == math.inf


class TestPartitionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.integers(3, 5),
        cols=st.integers(3, 5),
        shards=st.integers(2, 4),
        strategy=st.sampled_from(["mincut", "stripe"]),
    )
    def test_mesh_partitions_satisfy_contract(self, rows, cols, shards, strategy):
        topo = regular_mesh(rows, cols, 4)
        if shards > topo.n_nodes:
            return
        partition = partition_topology(topo, shards, strategy=strategy)
        _check_contract(topo, partition, shards)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(6, 40),
        m=st.integers(1, 3),
        seed=st.integers(0, 50),
        shards=st.integers(2, 5),
    )
    def test_scale_free_partitions_satisfy_contract(self, n, m, seed, shards):
        if n < m + 2 or shards > n:
            return
        topo = generators.scale_free(n, m=m, seed=seed)
        partition = partition_topology(topo, shards)
        _check_contract(topo, partition, shards)

    def test_partition_is_deterministic(self):
        topo = generators.scale_free(60, m=2, seed=9)
        first = partition_topology(topo, 3)
        second = partition_topology(topo, 3)
        assert first.assignment == second.assignment
        assert first.cut_links == second.cut_links
        assert first.lookahead == second.lookahead


class TestDegenerateInputs:
    def test_one_shard_warns_and_is_trivial(self):
        topo = regular_mesh(3, 3, 4)
        with pytest.warns(UserWarning, match="1 shard is trivial"):
            partition = partition_topology(topo, 1)
        assert partition.cut_links == ()
        assert partition.lookahead == math.inf
        assert set(partition.parts[0]) == set(topo.nodes)

    def test_more_shards_than_nodes_raises(self):
        topo = generators.line(3)
        with pytest.raises(ValueError, match="cannot split 3 node"):
            partition_topology(topo, 4)

    def test_zero_shards_raises(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            partition_topology(generators.line(3), 0)

    def test_disconnected_topology_raises(self):
        topo = Topology(name="two-islands")
        for spec in generators.line(2).links.values():
            topo.add_link(spec)
        topo.add_node(10)
        topo.add_node(11)
        from repro.topology.graph import LinkSpec

        topo.add_link(LinkSpec(10, 11, cost=1, delay=0.001, bandwidth=1e6))
        with pytest.raises(ValueError, match="disconnected"):
            partition_topology(topo, 2)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown partition strategy"):
            partition_topology(generators.line(4), 2, strategy="metis")

    def test_stripe_produces_contiguous_blocks(self):
        topo = generators.line(9)
        partition = partition_topology(topo, 3, strategy="stripe")
        assert [partition.shard_of(n) for n in range(9)] == [
            0, 0, 0, 1, 1, 1, 2, 2, 2,
        ]

    def test_mincut_on_a_line_cuts_no_more_than_stripe(self):
        # On a path graph the optimal (shards-1)-link cut is achievable.
        topo = generators.line(12)
        mincut = partition_topology(topo, 3, strategy="mincut")
        assert len(mincut.cut_links) <= len(
            partition_topology(topo, 3, strategy="stripe").cut_links
        )
