"""Fault injection: a hung or dead worker shard must never deadlock the run.

Uses the REPRO_TEST_SHARD_* hooks (same idiom as REPRO_TEST_HANG_SEEDS in
the sweep runner): the named shard hangs or dies when asked to run a window
reaching the given virtual time.  The coordinator must detect the stall via
the barrier timeout, tear every worker down, and surface the stalled
window's timestamp in the error.
"""

from __future__ import annotations

import re
import time

import pytest

from repro.dist.runner import ShardStallError, run_scenario_sharded
from repro.dist.worker import DIE_ENV, HANG_ENV
from repro.experiments.config import ExperimentConfig

CONFIG = ExperimentConfig.quick().with_(
    rows=4, cols=4, runs=1, post_fail_window=8.0, shards=2
)


def _run_process_exchange(timeout: float):
    return run_scenario_sharded(
        "dbf", 4, 7, CONFIG, exchange="process", barrier_timeout=timeout
    )


def test_hung_shard_raises_stall_with_window_time(monkeypatch):
    monkeypatch.setenv(HANG_ENV, "1:0")
    started = time.monotonic()
    with pytest.raises(ShardStallError) as excinfo:
        _run_process_exchange(timeout=2.0)
    elapsed = time.monotonic() - started
    err = excinfo.value
    assert err.shard_index == 1
    # The stalled window's virtual timestamp is in the message.
    assert re.search(r"stalled at window t=\d+\.\d{3}", str(err))
    assert err.window_time >= 0.0
    assert "no response within 2s" in str(err)
    # Detection is bounded by the barrier timeout, not the hang duration.
    assert elapsed < 30.0


def test_dead_shard_raises_stall_not_deadlock(monkeypatch):
    monkeypatch.setenv(DIE_ENV, "0:0")
    with pytest.raises(ShardStallError) as excinfo:
        _run_process_exchange(timeout=10.0)
    err = excinfo.value
    assert err.shard_index == 0
    assert "worker process died" in str(err)


def test_fault_hooks_are_inert_without_env(monkeypatch):
    monkeypatch.delenv(HANG_ENV, raising=False)
    monkeypatch.delenv(DIE_ENV, raising=False)
    result = _run_process_exchange(timeout=60.0)
    assert result.sent > 0
