"""Sharded-run telemetry: the acceptance scenario for the run-event log.

A 3-shard run with ``live_log`` must produce a log that (1) passes
``check_log``, (2) replays into exactly the per-shard event totals the
coordinator aggregated, (3) renders a Perfetto document with one lane per
shard, and (4) — the transparency invariant — leaves the merged metrics
byte-identical to the run with no telemetry at all.  A stalled shard must
surface its id and last heartbeat both in the error and in the log.
"""

from __future__ import annotations

import pytest

from repro.dist.merge import shard_perfetto_trace, run_sharded_with_traces
from repro.dist.runner import ShardStallError, run_scenario_sharded
from repro.dist.worker import HANG_ENV
from repro.experiments.config import ExperimentConfig
from repro.obs.live import SHARD_LANE_PID, check_log, read_log, summarize_log

CONFIG = ExperimentConfig.quick().with_(
    rows=5, cols=5, runs=1, post_fail_window=30.0, record_paths=True, shards=3
)


@pytest.fixture(scope="module")
def logged_run(tmp_path_factory):
    """One 3-shard bgp3 run with the log and registries on, shared below."""
    path = tmp_path_factory.mktemp("live") / "shard.log"
    registries = {}
    result = run_scenario_sharded(
        "bgp3", 4, 7, CONFIG, live_log=path, registries=registries
    )
    return result, read_log(path), registries


class TestShardedLiveLog:
    def test_log_passes_check_log(self, logged_run):
        _, records, _ = logged_run
        assert check_log(records) == []
        assert records[0]["run"] == "shard"
        assert records[0]["meta"]["shards"] == 3
        assert records[-1] == {"kind": "end", "ok": True}

    def test_log_replays_coordinator_event_totals(self, logged_run):
        # The acceptance criterion: shard-end records == the registry the
        # coordinator aggregated beat by beat == the final heartbeats.
        _, records, registries = logged_run
        summary = summarize_log(records)
        assert sorted(summary.shard_totals) == [0, 1, 2]
        for shard, totals in summary.shard_totals.items():
            registry = registries[shard]
            assert totals["events"] == registry.get("shard.events").value
            assert totals["relays_out"] == registry.get("shard.relays_out").value
            assert totals["relays_in"] == registry.get("shard.relays_in").value
            view = summary.shards[shard]
            assert view.events == totals["events"]
        assert all(r.self_check() == [] for r in registries.values())

    def test_relays_conserve_across_shards(self, logged_run):
        # Every relay leaving one shard is injected into another.
        _, records, _ = logged_run
        summary = summarize_log(records)
        out = sum(t["relays_out"] for t in summary.shard_totals.values())
        into = sum(t["relays_in"] for t in summary.shard_totals.values())
        assert out == into
        assert out == summary.n_relays

    def test_heartbeats_are_throttled(self, logged_run):
        # Thousands of barrier windows coalesce into ~interval-spaced
        # records: the log stays small while covering every window.
        _, records, _ = logged_run
        summary = summarize_log(records)
        n_heartbeats = sum(1 for r in records if r["kind"] == "heartbeat")
        assert summary.n_windows > 1000
        assert n_heartbeats < 200

    def test_final_clock_reaches_end_of_run(self, logged_run):
        _, records, _ = logged_run
        summary = summarize_log(records)
        for view in summary.shards.values():
            assert view.clock == pytest.approx(CONFIG.end_time)


class TestTelemetryTransparency:
    def test_metrics_identical_with_and_without_log(self, tmp_path):
        quiet = run_scenario_sharded("bgp3", 4, 7, CONFIG)
        logged = run_scenario_sharded(
            "bgp3", 4, 7, CONFIG, live_log=tmp_path / "x.log", registries={}
        )
        assert logged == quiet


class TestShardPerfetto:
    def test_one_lane_per_shard(self, tmp_path):
        path = tmp_path / "shard.log"
        result, traces = run_sharded_with_traces(
            "bgp3", 4, 7, CONFIG, live_log=path
        )
        doc = shard_perfetto_trace(traces, read_log(path))
        events = doc["traceEvents"]
        lane_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"shard 0", "shard 1", "shard 2", "coordinator"} <= lane_names
        # Shard lanes carry window spans; node lanes carry packet slices —
        # both on the one simulated-time axis.
        shard_spans = [
            e for e in events
            if e["ph"] == "X" and e.get("pid", 0) >= SHARD_LANE_PID
        ]
        node_events = [
            e for e in events
            if e["ph"] not in ("M",) and e.get("pid", 0) < SHARD_LANE_PID
        ]
        assert shard_spans and node_events
        end_us = CONFIG.end_time * 1e6
        assert max(e["ts"] for e in shard_spans) <= end_us
        assert doc["displayTimeUnit"] == "ms"


class TestStallForensics:
    def test_hung_shard_surfaces_identity_and_last_heartbeat(
        self, monkeypatch, tmp_path
    ):
        # Hang shard 1 at t>=4s: by then every shard has heartbeats, so the
        # error must carry the hung shard's last known state.
        monkeypatch.setenv(HANG_ENV, "1:4")
        config = CONFIG.with_(rows=4, cols=4, post_fail_window=8.0, shards=2)
        path = tmp_path / "stall.log"
        with pytest.raises(ShardStallError) as excinfo:
            run_scenario_sharded(
                "dbf", 4, 7, config, exchange="process",
                barrier_timeout=2.0, live_log=path,
            )
        err = excinfo.value
        assert err.shard_index == 1
        beat = err.heartbeats[1]
        assert beat is not None and beat.clock > 0
        assert "last heartbeat: clock=" in str(err)
        assert err.pipes_open  # captured before teardown
        assert all(w is not None for w in err.last_windows.values())

        records = read_log(path)
        assert check_log(records) == []
        stall = next(r for r in records if r["kind"] == "stall")
        assert stall["shard"] == 1
        assert stall["heartbeat"]["clock"] == beat.clock
        assert records[-1]["kind"] == "end" and records[-1]["ok"] is False
