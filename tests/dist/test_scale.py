"""The scale story: a 10k-node BGP scenario the sharded runtime makes viable.

A full warm start on a 10k-node topology is the single-process
bottleneck; the sharded path restricts BGP's warm start to the flow's
destinations (``warm_dests``), partitions the graph with the min-cut
strategy, and runs the failure scenario across 4 worker simulators.  The
offline invariants must come back clean: packet conservation exact, and
the FIB-loop monitor explicitly skipped (BGP makes no loop-freedom
promise) rather than silently dropped.
"""

from __future__ import annotations

from repro.dist.runner import ShardScenarioSpec, run_sharded
from repro.experiments.config import ExperimentConfig
from repro.net.dynamics import SingleLinkFailureDriver
from repro.topology.generators import scale_free

N_NODES = 10_000


def test_10k_node_bgp_scenario_across_4_shards():
    topo = scale_free(N_NODES, m=2, seed=3)
    assert topo.n_nodes == N_NODES

    config = ExperimentConfig.quick().with_(
        runs=1,
        post_fail_window=5.0,
        shards=4,
        partition="mincut",
    )
    # Deterministic far-apart stub nodes: the two highest-id leaves hang off
    # different parts of the graph (late joiners attach to earlier nodes).
    sender, receiver = N_NODES - 1, N_NODES - 2
    pre_path = topo.shortest_path(sender, receiver)
    assert pre_path is not None and len(pre_path) >= 3
    failed = (
        min(pre_path[1], pre_path[2]),
        max(pre_path[1], pre_path[2]),
    )
    expected_final = topo.shortest_path(sender, receiver, exclude_link=failed)
    driver = SingleLinkFailureDriver(failed, config.fail_time)

    spec = ShardScenarioSpec(
        protocol="bgp3",
        degree=2,
        seed=3,
        config=config,
        topology=topo,
        sender=sender,
        receiver=receiver,
        pre_path=tuple(pre_path),
        expected_final=tuple(expected_final) if expected_final else None,
        events=tuple(driver.generate(config.end_time)),
        warm_dests=(sender, receiver),
    )
    result = run_sharded(spec, validate=True)

    assert result.sent > 0
    assert result.delivered > 0
    # Conservation holds exactly across the shard cut.
    assert result.violations == ()
    skips = result.monitor_skips or {}
    assert "no loop-freedom promise" in skips.get("fib-loop", "")
    assert result.routing_convergence is not None
