"""Byte-identity determinism proofs: sharded == single-process.

The keystone of repro.dist: over the golden scenarios, a run partitioned
across 2, 3, or 4 shards — on either event-queue backend — must reproduce
the single-process run exactly: every pinned metric, every violation, and
all four canonical trace streams.  A hypothesis sweep extends the proof to
random mesh layouts and random partition choices.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.merge import (
    diff_results,
    run_sharded_with_traces,
    run_single_with_traces,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario

# Mirrors tests/experiments/test_golden_metrics.py: small enough to run the
# full matrix, big enough that the failure forces a real reconvergence.
GOLDEN_CONFIG = ExperimentConfig.quick().with_(
    rows=5, cols=5, runs=1, post_fail_window=30.0, record_paths=True
)

#: (protocol, seed): the two golden seed-7 points plus the rip seed-11 point
#: whose slow recovery exercises a qualitatively different trajectory.
CASES = (("dbf", 7), ("bgp3", 7), ("rip", 11))

_single_cache: dict = {}


def _single(protocol: str, seed: int, queue: str):
    key = (protocol, seed, queue)
    if key not in _single_cache:
        _single_cache[key] = run_single_with_traces(
            protocol, 4, seed, GOLDEN_CONFIG.with_(event_queue=queue)
        )
    return _single_cache[key]


@pytest.mark.parametrize("queue", ["heap", "calendar"])
@pytest.mark.parametrize("shards", [2, 3, 4])
@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-s{c[1]}")
def test_sharded_run_is_byte_identical(case, shards, queue):
    protocol, seed = case
    single, single_traces = _single(protocol, seed, queue)
    config = GOLDEN_CONFIG.with_(event_queue=queue, shards=shards)
    sharded, sharded_traces = run_sharded_with_traces(protocol, 4, seed, config)
    problems = diff_results(single, single_traces, sharded, sharded_traces)
    assert not problems, "\n".join(problems)


def test_sharded_violations_match_single_process():
    # Same scenario, monitors on: both runs must agree that the invariants
    # hold (the sharded side re-derives conservation + FIB loops offline).
    config = GOLDEN_CONFIG.with_(shards=3)
    sharded, _ = run_sharded_with_traces("dbf", 4, 7, config, validate=True)
    single = run_scenario("dbf", 4, 7, GOLDEN_CONFIG.with_(validate=True))
    assert sharded.violations == ()
    assert single.violations == ()
    # The monitors that need a live simulator are skipped loudly, not lost.
    assert "not evaluated under sharded execution" in (
        sharded.monitor_skips or {}
    ).get("convergence-sentinel", "")


def test_process_exchange_matches_local_exchange():
    config = GOLDEN_CONFIG.with_(post_fail_window=10.0, shards=3)
    local, local_traces = run_sharded_with_traces("bgp3", 4, 7, config)
    forked, forked_traces = run_sharded_with_traces(
        "bgp3", 4, 7, config, exchange="process"
    )
    problems = diff_results(local, local_traces, forked, forked_traces)
    assert not problems, "\n".join(problems)


def test_run_scenario_delegates_on_shards():
    config = GOLDEN_CONFIG.with_(post_fail_window=10.0)
    via_scenario = run_scenario("dbf", 4, 7, config.with_(shards=2))
    direct = run_scenario("dbf", 4, 7, config)
    assert via_scenario.sent == direct.sent
    assert via_scenario.delivered == direct.delivered
    assert via_scenario.routing_convergence == direct.routing_convergence


def test_run_scenario_rejects_unsupported_extras_when_sharded():
    from repro.obs.flight import FlightRecorder

    with pytest.raises(ValueError, match="recorder"):
        run_scenario(
            "dbf", 4, 7, GOLDEN_CONFIG.with_(shards=2), recorder=FlightRecorder()
        )


@settings(max_examples=6, deadline=None)
@given(
    rows=st.integers(3, 4),
    cols=st.integers(3, 5),
    seed=st.integers(1, 40),
    shards=st.integers(2, 3),
    strategy=st.sampled_from(["mincut", "stripe"]),
)
def test_random_layouts_and_cuts_stay_byte_identical(
    rows, cols, seed, shards, strategy
):
    config = ExperimentConfig.quick().with_(
        rows=rows,
        cols=cols,
        runs=1,
        post_fail_window=8.0,
        record_paths=True,
    )
    single, single_traces = run_single_with_traces("dbf", 4, seed, config)
    sharded, sharded_traces = run_sharded_with_traces(
        "dbf", 4, seed, config.with_(shards=shards, partition=strategy)
    )
    problems = diff_results(single, single_traces, sharded, sharded_traces)
    assert not problems, "\n".join(problems)
