"""Unit tests for the packet model."""

from __future__ import annotations

import pytest

from repro.net.packet import DEFAULT_TTL, Packet, reset_packet_ids


class TestPacket:
    def test_defaults(self):
        p = Packet(src=1, dst=2)
        assert p.kind == "data"
        assert p.ttl == DEFAULT_TTL == 127
        assert p.is_data and not p.is_control

    def test_ids_are_unique_and_increasing(self):
        a, b = Packet(src=1, dst=2), Packet(src=1, dst=2)
        assert b.packet_id == a.packet_id + 1

    def test_reset_packet_ids(self):
        Packet(src=1, dst=2)
        reset_packet_ids()
        assert Packet(src=1, dst=2).packet_id == 0

    def test_control_packet(self):
        p = Packet(src=1, dst=2, kind="control", payload={"x": 1}, protocol="rip")
        assert p.is_control
        assert p.payload == {"x": 1}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "bogus"},
            {"ttl": -1},
            {"size_bytes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Packet(src=1, dst=2, **kwargs)

    def test_hops_start_empty(self):
        assert Packet(src=1, dst=2).hops == []
