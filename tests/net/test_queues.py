"""Unit tests for the drop-tail queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue


def _pkt():
    return Packet(src=0, dst=1)


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(capacity=5)
        packets = [_pkt() for _ in range(3)]
        for p in packets:
            assert q.push(p)
        assert [q.pop() for _ in range(3)] == packets

    def test_capacity_enforced(self):
        q = DropTailQueue(capacity=2)
        assert q.push(_pkt())
        assert q.push(_pkt())
        assert not q.push(_pkt())
        assert q.dropped == 1
        assert len(q) == 2

    def test_pop_empty_returns_none(self):
        assert DropTailQueue(capacity=1).pop() is None

    def test_drain_empties_queue(self):
        q = DropTailQueue(capacity=5)
        packets = [_pkt() for _ in range(4)]
        for p in packets:
            q.push(p)
        assert q.drain() == packets
        assert q.empty

    def test_drain_counts_drained_packets(self):
        q = DropTailQueue(capacity=5)
        for _ in range(4):
            q.push(_pkt())
        assert q.drained == 0
        q.drain()
        assert q.drained == 4
        # Draining an empty queue is a no-op for the counter.
        q.drain()
        assert q.drained == 4
        # dropped stays overflow-only: drained packets are not overflow.
        assert q.dropped == 0

    def test_conservation_identity(self):
        # enqueued == popped + drained + still-queued, whatever the history.
        q = DropTailQueue(capacity=3)
        q.push(_pkt())
        q.push(_pkt())
        popped = 1 if q.pop() else 0
        q.push(_pkt())
        q.push(_pkt())  # overflow: rejected, not enqueued
        q.drain()
        q.push(_pkt())
        assert q.enqueued == popped + q.drained + len(q)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity=0)

    def test_counters(self):
        q = DropTailQueue(capacity=1)
        q.push(_pkt())
        q.push(_pkt())
        assert q.enqueued == 1
        assert q.dropped == 1

    @given(st.lists(st.booleans(), max_size=60))
    def test_property_len_never_exceeds_capacity(self, ops):
        q = DropTailQueue(capacity=7)
        model: list[int] = []
        for push in ops:
            if push:
                p = _pkt()
                ok = q.push(p)
                if len(model) < 7:
                    assert ok
                    model.append(p.packet_id)
                else:
                    assert not ok
            else:
                got = q.pop()
                if model:
                    assert got is not None and got.packet_id == model.pop(0)
                else:
                    assert got is None
            assert len(q) == len(model) <= 7
