"""Unit tests for node forwarding, TTL handling and drop accounting."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.tracing import DropCause, PacketRecord, RouteChangeRecord, TraceBus
from repro.topology import generators


def make_line(n=3, record_paths=False):
    sim = Simulator()
    bus = TraceBus(keep_packets=True, keep_routes=True)
    net = Network(sim, generators.line(n), bus, record_paths=record_paths)
    return sim, net, bus


def install_line_routes(net, n=3):
    """dest n-1 reachable from every node by forwarding right."""
    for i in range(n - 1):
        net.node(i).set_next_hop(n - 1, i + 1)


class TestForwarding:
    def test_end_to_end_delivery(self):
        sim, net, bus = make_line()
        install_line_routes(net)
        net.node(0).originate(Packet(src=0, dst=2, ttl=10))
        sim.run()
        assert net.node(2).delivered == 1
        kinds = [r.kind for r in bus.packets]
        assert kinds == ["send", "deliver"]

    def test_ttl_decrement_per_forwarding_hop(self):
        sim, net, bus = make_line(4)
        install_line_routes(net, 4)
        p = Packet(src=0, dst=3, ttl=10)
        net.node(0).originate(p)
        sim.run()
        # Two intermediate routers decrement; origin and delivery do not.
        assert p.ttl == 8

    def test_ttl_expiry_drops(self):
        sim, net, bus = make_line(4)
        install_line_routes(net, 4)
        net.node(0).originate(Packet(src=0, dst=3, ttl=1))
        sim.run()
        assert net.total_drops(DropCause.TTL_EXPIRED) == 1
        assert net.node(3).delivered == 0

    def test_no_route_drop(self):
        sim, net, bus = make_line()
        # No routes installed at node 1.
        net.node(0).set_next_hop(2, 1)
        net.node(0).originate(Packet(src=0, dst=2))
        sim.run()
        assert net.node(1).drops[DropCause.NO_ROUTE] == 1

    def test_originate_to_self_delivers_locally(self):
        sim, net, bus = make_line()
        net.node(0).originate(Packet(src=0, dst=0))
        assert net.node(0).delivered == 1

    def test_originate_requires_data_packet(self):
        sim, net, bus = make_line()
        with pytest.raises(ValueError):
            net.node(0).originate(Packet(src=0, dst=1, kind="control", ttl=1))

    def test_hop_recording(self):
        sim, net, bus = make_line(4, record_paths=True)
        install_line_routes(net, 4)
        p = Packet(src=0, dst=3)
        net.node(0).originate(p)
        sim.run()
        assert p.hops == [0, 1, 2, 3]

    def test_forwarded_counter(self):
        sim, net, bus = make_line(4)
        install_line_routes(net, 4)
        net.node(0).originate(Packet(src=0, dst=3))
        sim.run()
        assert net.node(1).forwarded == 1
        assert net.node(2).forwarded == 1


class TestFib:
    def test_set_next_hop_publishes_change(self):
        sim, net, bus = make_line()
        net.node(0).set_next_hop(2, 1)
        changes = bus.route_changes
        assert len(changes) == 1
        assert changes[0] == RouteChangeRecord(
            time=0.0, node=0, dest=2, old_next_hop=None, new_next_hop=1
        )

    def test_idempotent_set_publishes_nothing(self):
        sim, net, bus = make_line()
        net.node(0).set_next_hop(2, 1)
        net.node(0).set_next_hop(2, 1)
        assert len(bus.route_changes) == 1

    def test_withdraw_route(self):
        sim, net, bus = make_line()
        net.node(0).set_next_hop(2, 1)
        net.node(0).set_next_hop(2, None)
        assert net.node(0).next_hop(2) is None
        assert bus.route_changes[-1].new_next_hop is None

    def test_next_hop_must_be_neighbor(self):
        sim, net, bus = make_line()
        with pytest.raises(ValueError):
            net.node(0).set_next_hop(2, 2)  # 2 is not adjacent to 0


class TestControlPlaneWiring:
    def test_control_message_dispatched_to_protocol(self):
        sim, net, bus = make_line()
        got = []

        class FakeProto:
            def handle_message(self, payload, from_node):
                got.append((payload, from_node))

            def start(self):
                pass

        net.node(1).attach_protocol(FakeProto())
        net.node(0).send_control(1, payload="hello", size_bytes=64, protocol="x")
        sim.run()
        assert got == [("hello", 0)]

    def test_send_control_requires_neighbor(self):
        sim, net, bus = make_line()
        with pytest.raises(ValueError):
            net.node(0).send_control(2, payload=None, size_bytes=10, protocol="x")

    def test_link_down_notifies_protocol(self):
        sim, net, bus = make_line()
        got = []

        class FakeProto:
            def handle_link_down(self, neighbor):
                got.append(neighbor)

        net.node(0).attach_protocol(FakeProto())
        net.node(0).on_link_down(1)
        assert got == [1]

    def test_double_protocol_attach_rejected(self):
        sim, net, bus = make_line()
        net.node(0).attach_protocol(object())
        with pytest.raises(ValueError):
            net.node(0).attach_protocol(object())


class TestApps:
    def test_apps_receive_local_deliveries(self):
        sim, net, bus = make_line()
        install_line_routes(net)
        got = []

        class App:
            def on_packet(self, packet, node):
                got.append((packet.packet_id, node.id))

        net.node(2).attach_app(App())
        net.node(0).originate(Packet(src=0, dst=2))
        sim.run()
        assert len(got) == 1 and got[0][1] == 2

    def test_control_drops_not_counted_as_data(self):
        sim, net, bus = make_line()
        net.link(0, 1).fail()
        net.node(0).send_control(1, payload=None, size_bytes=10, protocol="x")
        sim.run()
        assert net.node(0).drops[DropCause.LINK_DOWN] == 0
