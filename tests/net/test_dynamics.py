"""Unit tests for the topology event layer (LinkScheduler and drivers)."""

from __future__ import annotations

import pytest

from repro.net.dynamics import (
    LinkEvent,
    LinkScheduler,
    ScriptedDriver,
    SingleLinkFailureDriver,
)
from repro.net.network import Network
from repro.sim.engine import SimulationError, Simulator
from repro.sim.tracing import TraceBus
from repro.topology import generators


class Recorder:
    def __init__(self):
        self.down = []
        self.up = []

    def handle_link_down(self, neighbor):
        self.down.append(neighbor)

    def handle_link_up(self, neighbor):
        self.up.append(neighbor)


def make(detection_delay=0.05, topo=None):
    sim = Simulator()
    bus = TraceBus()
    net = Network(sim, topo if topo is not None else generators.line(3), bus)
    recorders = {}
    for node in net.iter_nodes():
        rec = Recorder()
        recorders[node.id] = rec
        node.attach_protocol(rec)
    scheduler = LinkScheduler(sim, net, detection_delay=detection_delay)
    return sim, net, bus, recorders, scheduler


class TestFailureInjection:
    def test_link_goes_down_at_fail_time(self):
        sim, net, bus, recorders, scheduler = make()
        scheduler.fail_link(0, 1, at=5.0)
        sim.run(until=4.9)
        assert net.link(0, 1).up
        sim.run(until=5.1)
        assert not net.link(0, 1).up

    def test_endpoints_notified_after_detection_delay(self):
        sim, net, bus, recorders, scheduler = make(detection_delay=0.5)
        scheduler.fail_link(0, 1, at=1.0)
        sim.run(until=1.4)
        assert recorders[0].down == []
        sim.run(until=1.6)
        assert recorders[0].down == [1]
        assert recorders[1].down == [0]
        assert recorders[2].down == []

    def test_event_record_published(self):
        sim, net, bus, recorders, scheduler = make()
        scheduler.fail_link(1, 2, at=2.0)
        sim.run()
        assert len(bus.link_events) == 1
        ev = bus.link_events[0]
        assert (ev.node_a, ev.node_b, ev.up) == (1, 2, False)

    def test_failure_event_metadata(self):
        sim, net, bus, recorders, scheduler = make(detection_delay=0.05)
        event = scheduler.fail_link(0, 1, at=3.0)
        assert event.detect_time == 3.05
        assert event.link_key == (0, 1)
        assert event.fail_time == 3.0  # legacy alias for .time

    def test_unknown_link_rejected_immediately(self):
        sim, net, bus, recorders, scheduler = make()
        with pytest.raises(KeyError):
            scheduler.fail_link(0, 2, at=1.0)

    def test_negative_detection_delay_rejected(self):
        sim = Simulator()
        net = Network(sim, generators.line(2))
        with pytest.raises(ValueError):
            LinkScheduler(sim, net, detection_delay=-1.0)

    def test_restore_notifies_link_up(self):
        sim, net, bus, recorders, scheduler = make(detection_delay=0.1)
        scheduler.fail_link(0, 1, at=1.0)
        scheduler.restore_link(0, 1, at=2.0)
        sim.run()
        assert net.link(0, 1).up
        assert recorders[0].up == [1]
        assert recorders[1].up == [0]
        assert scheduler.events[0].restored_time == 2.0


class TestStrictStateTransitions:
    def test_restoring_an_up_link_is_a_loud_error(self):
        # Regression: the old injector silently skipped the bookkeeping when
        # restoring a link that never failed, hiding driver bugs.
        sim, net, bus, recorders, scheduler = make()
        scheduler.restore_link(0, 1, at=1.0)
        with pytest.raises(SimulationError, match="already up"):
            sim.run()
        assert recorders[0].up == []  # no phantom notification either

    def test_failing_a_down_link_is_a_loud_error(self):
        sim, net, bus, recorders, scheduler = make()
        scheduler.fail_link(0, 1, at=1.0)
        scheduler.fail_link(0, 1, at=2.0)
        with pytest.raises(SimulationError, match="already down"):
            sim.run()

    def test_event_validation(self):
        with pytest.raises(ValueError):
            LinkEvent("flap", 0, 1, 1.0)
        with pytest.raises(ValueError):
            LinkEvent("fail", 0, 1, -1.0)
        with pytest.raises(ValueError):
            LinkEvent("fail", 0, 1, 1.0, detection_delay=-0.1)


class TestNodeFailure:
    def test_fails_every_attached_link(self):
        sim, net, bus, recorders, scheduler = make()
        events = scheduler.fail_node(1, at=2.0)
        assert sorted(e.link_key for e in events) == [(0, 1), (1, 2)]
        sim.run()
        assert not net.link(0, 1).up
        assert not net.link(1, 2).up

    def test_zero_link_node_raises_before_scheduling(self):
        # Regression: the old injector raised only after its scheduling loop,
        # so a degree-zero node left the run half-armed.
        topo = generators.line(3)
        topo.add_node(99)  # isolated
        sim, net, bus, recorders, scheduler = make(topo=topo)
        with pytest.raises(ValueError, match="no links to fail"):
            scheduler.fail_node(99, at=1.0)
        assert scheduler.events == []


class TestFlapBookkeeping:
    def test_each_fail_records_its_own_outage(self):
        sim, net, bus, recorders, scheduler = make(detection_delay=0.01)
        for cycle in range(3):
            scheduler.fail_link(0, 1, at=1.0 + 2.0 * cycle)
            scheduler.restore_link(0, 1, at=2.0 + 2.0 * cycle)
        sim.run()
        fails = [e for e in scheduler.events if e.kind == "fail"]
        assert [e.restored_time for e in fails] == [2.0, 4.0, 6.0]
        assert net.link(0, 1).up
        # One LinkEventRecord per transition, alternating down/up.
        assert [e.up for e in bus.link_events] == [False, True] * 3
        assert bus.counters.link_events == 6

    def test_notifications_delivered_per_transition(self):
        sim, net, bus, recorders, scheduler = make(detection_delay=0.01)
        for cycle in range(2):
            scheduler.fail_link(0, 1, at=1.0 + cycle)
            scheduler.restore_link(0, 1, at=1.5 + cycle)
        sim.run()
        assert recorders[0].down == [1, 1]
        assert recorders[0].up == [1, 1]


class TestDrivers:
    def test_single_link_failure_driver_matches_manual_injection(self):
        sim, net, bus, recorders, scheduler = make()
        driver = SingleLinkFailureDriver((0, 1), fail_at=3.0)
        scheduled = scheduler.run_driver(driver, until=10.0)
        assert [(e.kind, e.link_key, e.time) for e in scheduled] == [
            ("fail", (0, 1), 3.0)
        ]
        sim.run(until=10.0)
        assert not net.link(0, 1).up

    def test_single_link_driver_with_repair(self):
        sim, net, bus, recorders, scheduler = make()
        driver = SingleLinkFailureDriver((0, 1), fail_at=3.0, restore_at=5.0)
        scheduler.run_driver(driver, until=10.0)
        sim.run(until=10.0)
        assert net.link(0, 1).up
        assert scheduler.events[0].restored_time == 5.0

    def test_single_link_driver_rejects_restore_before_fail(self):
        driver = SingleLinkFailureDriver((0, 1), fail_at=3.0, restore_at=2.0)
        with pytest.raises(ValueError):
            driver.generate(until=10.0)

    def test_scripted_driver_truncates_at_horizon(self):
        events = (
            LinkEvent("fail", 0, 1, 1.0),
            LinkEvent("restore", 0, 1, 2.0),
            LinkEvent("fail", 0, 1, 99.0),
        )
        assert len(ScriptedDriver(events).generate(until=10.0)) == 2

    def test_scripted_driver_rejects_unordered_events(self):
        events = (LinkEvent("fail", 0, 1, 2.0), LinkEvent("restore", 0, 1, 1.0))
        with pytest.raises(ValueError, match="time-ordered"):
            ScriptedDriver(events).generate(until=10.0)


class TestInitialState:
    def test_take_down_initially_is_silent(self):
        sim, net, bus, recorders, scheduler = make()
        scheduler.take_down_initially([(0, 1)])
        assert not net.link(0, 1).up
        assert bus.link_events == []
        assert recorders[0].down == []
        assert scheduler.events == []

    def test_take_down_initially_refuses_mid_run(self):
        sim, net, bus, recorders, scheduler = make()
        sim.schedule_call(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            scheduler.take_down_initially([(0, 1)])

    def test_take_down_initially_refuses_double_down(self):
        sim, net, bus, recorders, scheduler = make()
        scheduler.take_down_initially([(0, 1)])
        with pytest.raises(SimulationError):
            scheduler.take_down_initially([(0, 1)])

    def test_initially_down_link_can_be_restored(self):
        sim, net, bus, recorders, scheduler = make()
        scheduler.take_down_initially([(0, 1)])
        scheduler.restore_link(0, 1, at=2.0)
        sim.run()
        assert net.link(0, 1).up
        assert recorders[0].up == [1]
