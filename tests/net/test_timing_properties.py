"""Property-based timing invariants of the link and channel layers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.channels import ReliableChannel
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.topology.graph import LinkSpec


class TestLinkFifoProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=25)
    )
    def test_per_direction_fifo_any_sizes(self, sizes):
        """Packets of arbitrary sizes arrive in send order (store-and-forward
        serialization cannot reorder a FIFO queue)."""
        sim = Simulator()
        delivered = []
        link = Link(
            sim,
            LinkSpec(1, 2, delay=0.001, bandwidth=1_000_000),
            deliver=lambda dst, p, src: delivered.append(p.packet_id),
            dropper=lambda *a: None,
            queue_capacity=100,
        )
        ids = []
        for size in sizes:
            p = Packet(src=1, dst=2, size_bytes=size)
            ids.append(p.packet_id)
            link.transmit(1, p)
        sim.run()
        assert delivered == ids

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=20),
        stagger=st.lists(st.floats(min_value=0.0, max_value=0.01), min_size=1, max_size=20),
    )
    def test_fifo_with_staggered_sends(self, sizes, stagger):
        sim = Simulator()
        delivered = []
        link = Link(
            sim,
            LinkSpec(1, 2, delay=0.002, bandwidth=500_000),
            deliver=lambda dst, p, src: delivered.append(p.packet_id),
            dropper=lambda *a: None,
            queue_capacity=100,
        )
        ids = []
        t = 0.0
        for size, gap in zip(sizes, stagger):
            t += gap
            p = Packet(src=1, dst=2, size_bytes=size)
            ids.append(p.packet_id)
            sim.schedule_at(t, lambda p=p: link.transmit(1, p))
        sim.run()
        assert delivered == ids

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=40, max_value=1500), min_size=2, max_size=30)
    )
    def test_throughput_conservation(self, sizes):
        """delivered + dropped == sent, with drops only from queue overflow."""
        sim = Simulator()
        delivered, dropped = [], []
        link = Link(
            sim,
            LinkSpec(1, 2, delay=0.001, bandwidth=1_000_000),
            deliver=lambda dst, p, src: delivered.append(p),
            dropper=lambda p, n, c: dropped.append(p),
            queue_capacity=5,
        )
        for size in sizes:
            link.transmit(1, Packet(src=1, dst=2, size_bytes=size))
        sim.run()
        assert len(delivered) + len(dropped) == len(sizes)


class TestReliableChannelProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=30, max_value=2000), min_size=1, max_size=25)
    )
    def test_in_order_any_sizes(self, sizes):
        sim = Simulator()
        link = Link(
            sim,
            LinkSpec(1, 2, delay=0.001, bandwidth=1_000_000),
            deliver=lambda *a: None,
            dropper=lambda *a: None,
        )
        got = []
        channel = ReliableChannel(sim, link, src=1, deliver=got.append)
        for i, size in enumerate(sizes):
            assert channel.send(i, size)
        sim.run()
        assert got == list(range(len(sizes)))

    @settings(max_examples=30, deadline=None)
    @given(
        n_before=st.integers(min_value=0, max_value=10),
        n_after=st.integers(min_value=0, max_value=10),
    )
    def test_failure_loses_suffix_only(self, n_before, n_after):
        """Messages fully delivered before the failure survive; everything in
        flight or sent after is lost — never a gap in the middle."""
        sim = Simulator()
        link = Link(
            sim,
            LinkSpec(1, 2, delay=0.001, bandwidth=1_000_000),
            deliver=lambda *a: None,
            dropper=lambda *a: None,
        )
        got = []
        channel = ReliableChannel(sim, link, src=1, deliver=got.append)
        for i in range(n_before):
            channel.send(i, 100)
        sim.run()  # drain
        sim.schedule(0.0001, link.fail)
        for i in range(n_before, n_before + n_after):
            channel.send(i, 100)
        sim.run()
        assert got[: n_before] == list(range(n_before))
        # Delivered set is a prefix: sorted and contiguous.
        assert got == sorted(got)
        assert all(b - a == 1 for a, b in zip(got, got[1:]))
