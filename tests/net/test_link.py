"""Unit tests for link transmission, queuing and failure semantics."""

from __future__ import annotations

import pytest

from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.tracing import DropCause
from repro.topology.graph import LinkSpec


class Harness:
    """Capture link deliveries and drops."""

    def __init__(self, sim, spec=None, queue_capacity=20):
        self.delivered = []  # (time, dst, packet, src)
        self.dropped = []  # (time, packet, node, cause)
        self.sim = sim
        self.link = Link(
            sim,
            spec or LinkSpec(1, 2, delay=0.001, bandwidth=1_000_000),
            deliver=lambda dst, p, src: self.delivered.append((sim.now, dst, p, src)),
            dropper=lambda p, n, c: self.dropped.append((sim.now, p, n, c)),
            queue_capacity=queue_capacity,
        )


def _pkt(size=500):
    return Packet(src=1, dst=2, size_bytes=size)


class TestTransmission:
    def test_delivery_after_tx_plus_prop(self, sim):
        h = Harness(sim)
        h.link.transmit(1, _pkt(500))  # 500B at 1Mbps = 4ms + 1ms prop
        sim.run()
        assert len(h.delivered) == 1
        t, dst, _, src = h.delivered[0]
        assert t == pytest.approx(0.005)
        assert (dst, src) == (2, 1)

    def test_serialization_is_fifo_and_back_to_back(self, sim):
        h = Harness(sim)
        p1, p2 = _pkt(), _pkt()
        h.link.transmit(1, p1)
        h.link.transmit(1, p2)
        sim.run()
        times = [t for t, *_ in h.delivered]
        assert times[0] == pytest.approx(0.005)
        assert times[1] == pytest.approx(0.009)  # queued behind p1's 4ms tx

    def test_directions_are_independent(self, sim):
        h = Harness(sim)
        h.link.transmit(1, _pkt())
        h.link.transmit(2, Packet(src=2, dst=1, size_bytes=500))
        sim.run()
        times = sorted(t for t, *_ in h.delivered)
        assert times == [pytest.approx(0.005), pytest.approx(0.005)]

    def test_queue_overflow_drops(self, sim):
        h = Harness(sim, queue_capacity=2)
        # One in service + 2 queued fit; the 4th is dropped.
        for _ in range(4):
            h.link.transmit(1, _pkt())
        sim.run()
        assert len(h.delivered) == 3
        assert len(h.dropped) == 1
        _, _, node, cause = h.dropped[0]
        assert cause is DropCause.QUEUE_OVERFLOW
        assert node == 1

    def test_transmit_from_non_endpoint_rejected(self, sim):
        h = Harness(sim)
        with pytest.raises(ValueError):
            h.link.transmit(9, _pkt())

    def test_other_end(self, sim):
        h = Harness(sim)
        assert h.link.other_end(1) == 2
        assert h.link.other_end(2) == 1
        with pytest.raises(ValueError):
            h.link.other_end(3)


class TestFailure:
    def test_transmit_into_failed_link_drops(self, sim):
        h = Harness(sim)
        h.link.fail()
        h.link.transmit(1, _pkt())
        sim.run()
        assert h.delivered == []
        assert h.dropped[0][3] is DropCause.LINK_DOWN

    def test_in_flight_packets_die_on_failure(self, sim):
        h = Harness(sim)
        h.link.transmit(1, _pkt())
        sim.schedule(0.0045, h.link.fail)  # after serialization, mid-propagation
        sim.run()
        assert h.delivered == []
        assert [c for *_, c in h.dropped] == [DropCause.LINK_DOWN]

    def test_queued_packets_die_on_failure(self, sim):
        h = Harness(sim)
        for _ in range(3):
            h.link.transmit(1, _pkt())
        sim.schedule(0.001, h.link.fail)  # first still serializing
        sim.run()
        assert h.delivered == []
        assert len(h.dropped) == 3
        assert all(c is DropCause.LINK_DOWN for *_, c in h.dropped)

    def test_drained_packets_are_accounted_as_link_down(self, sim):
        # Pins the drain() audit: every packet flush_on_failure() pulls out
        # of the output queue must surface as a LINK_DOWN drop, so the
        # packet-conservation monitor sees no silent loss.
        h = Harness(sim)
        for _ in range(5):
            h.link.transmit(1, _pkt())
        sim.schedule(0.001, h.link.fail)  # first packet still serializing
        sim.run()
        channel = h.link._channels[1]
        assert channel.queue.drained == 4  # 1 in flight + 4 queued
        link_down = [p for _, p, _, c in h.dropped if c is DropCause.LINK_DOWN]
        # in-flight packet + every drained packet, nothing double-counted
        assert len(link_down) == 5
        assert len(set(id(p) for p in link_down)) == 5
        assert channel.queue.enqueued == channel.queue.drained + len(
            channel.queue
        ) + 1  # the serializing packet was popped for transmission

    def test_fail_is_idempotent(self, sim):
        h = Harness(sim)
        h.link.fail()
        h.link.fail()
        assert not h.link.up

    def test_fail_listeners_called_once(self, sim):
        h = Harness(sim)
        calls = []
        h.link.fail_listeners.append(lambda: calls.append(sim.now))
        h.link.fail()
        h.link.fail()
        assert calls == [0.0]

    def test_restore_allows_traffic_again(self, sim):
        h = Harness(sim)
        h.link.fail()
        h.link.restore()
        h.link.transmit(1, _pkt())
        sim.run()
        assert len(h.delivered) == 1

    def test_failed_at_recorded(self, sim):
        h = Harness(sim)
        sim.schedule(1.0, h.link.fail)
        sim.run()
        assert h.link.failed_at == 1.0
        h.link.restore()
        assert h.link.failed_at is None


class TestCounters:
    def test_packets_transmitted(self, sim):
        h = Harness(sim)
        for _ in range(3):
            h.link.transmit(1, _pkt())
        sim.run()
        assert h.link.packets_transmitted == 3

    def test_queue_length_visibility(self, sim):
        h = Harness(sim)
        for _ in range(5):
            h.link.transmit(1, _pkt())
        # One is in service; four remain queued.
        assert h.link.queue_length(1) == 4
        sim.run()
        assert h.link.queue_length(1) == 0
