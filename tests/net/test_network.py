"""Unit tests for network construction and aggregation."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.tracing import DropCause, TraceBus
from repro.topology import generators
from repro.topology.mesh import regular_mesh


class TestConstruction:
    def test_one_node_per_topology_node(self):
        topo = regular_mesh(3, 3, 4)
        net = Network(Simulator(), topo)
        assert set(net.nodes) == topo.nodes

    def test_one_link_per_topology_link(self):
        topo = regular_mesh(3, 3, 4)
        net = Network(Simulator(), topo)
        assert set(net.links) == set(topo.links)

    def test_nodes_know_their_neighbors(self):
        topo = generators.ring(5)
        net = Network(Simulator(), topo)
        assert net.node(0).neighbors() == [1, 4]

    def test_link_lookup_is_order_insensitive(self):
        net = Network(Simulator(), generators.line(3))
        assert net.link(0, 1) is net.link(1, 0)

    def test_iter_orders_deterministic(self):
        net = Network(Simulator(), generators.ring(4))
        assert [n.id for n in net.iter_nodes()] == [0, 1, 2, 3]
        assert [l.endpoints for l in net.iter_links()] == sorted(
            l.endpoints for l in net.iter_links()
        )


class TestProtocolAttachment:
    def test_attach_protocols_runs_factory_per_node(self):
        net = Network(Simulator(), generators.line(3))
        created = []

        class P:
            def __init__(self, node):
                created.append(node.id)

            def start(self):
                pass

        net.attach_protocols(lambda node: P(node))
        assert created == [0, 1, 2]
        assert all(n.protocol is not None for n in net.iter_nodes())

    def test_start_protocols(self):
        net = Network(Simulator(), generators.line(2))
        started = []

        class P:
            def __init__(self, node):
                self.node = node

            def start(self):
                started.append(self.node.id)

        net.attach_protocols(lambda node: P(node))
        net.start_protocols()
        assert started == [0, 1]


class TestAggregates:
    def test_totals(self):
        sim = Simulator()
        net = Network(sim, generators.line(3))
        net.node(0).set_next_hop(2, 1)
        net.node(1).set_next_hop(2, 2)
        net.node(0).originate(Packet(src=0, dst=2))
        net.node(0).originate(Packet(src=0, dst=2))
        sim.run()
        assert net.total_originated() == 2
        assert net.total_delivered() == 2
        assert net.total_drops(DropCause.NO_ROUTE) == 0

    def test_total_drops_by_cause(self):
        sim = Simulator()
        net = Network(sim, generators.line(3))
        net.node(0).set_next_hop(2, 1)  # node 1 has no route
        net.node(0).originate(Packet(src=0, dst=2))
        sim.run()
        assert net.total_drops(DropCause.NO_ROUTE) == 1
        assert net.total_delivered() == 0
