"""Unit tests for the reliable neighbor channel (TCP abstraction)."""

from __future__ import annotations

import pytest

from repro.net.channels import ReliableChannel
from repro.net.link import Link
from repro.sim.engine import Simulator
from repro.topology.graph import LinkSpec


def make_channel(sim, delay=0.001, bandwidth=1_000_000):
    spec = LinkSpec(1, 2, delay=delay, bandwidth=bandwidth)
    link = Link(sim, spec, deliver=lambda *a: None, dropper=lambda *a: None)
    got = []
    channel = ReliableChannel(sim, link, src=1, deliver=lambda p: got.append((sim.now, p)))
    return link, channel, got


class TestReliableChannel:
    def test_delivery_with_serialization_and_delay(self, sim):
        link, channel, got = make_channel(sim)
        assert channel.send("m1", size_bytes=125)  # 1 ms tx + 1 ms prop
        sim.run()
        assert got == [(pytest.approx(0.002), "m1")]

    def test_in_order_fifo_delivery(self, sim):
        link, channel, got = make_channel(sim)
        channel.send("a", 125)
        channel.send("b", 125)
        channel.send("c", 125)
        sim.run()
        assert [m for _, m in got] == ["a", "b", "c"]
        times = [t for t, _ in got]
        assert times == sorted(times)

    def test_send_fails_when_link_down(self, sim):
        link, channel, got = make_channel(sim)
        link.fail()
        assert not channel.send("x", 100)
        assert not channel.connected

    def test_in_flight_lost_on_failure(self, sim):
        link, channel, got = make_channel(sim)
        channel.send("x", 125)
        sim.schedule(0.0015, link.fail)
        sim.run()
        assert got == []
        assert channel.messages_lost == 1

    def test_counters(self, sim):
        link, channel, got = make_channel(sim)
        channel.send("a", 125)
        channel.send("b", 125)
        sim.run()
        assert channel.messages_sent == 2
        assert channel.messages_delivered == 2
        assert channel.messages_lost == 0

    def test_dst_derived_from_link(self, sim):
        link, channel, got = make_channel(sim)
        assert channel.dst == 2

    def test_busy_channel_serializes_back_to_back(self, sim):
        link, channel, got = make_channel(sim)
        channel.send("a", 1250)  # 10 ms tx
        channel.send("b", 1250)
        sim.run()
        t_a, t_b = (t for t, _ in got)
        assert t_a == pytest.approx(0.011)
        assert t_b == pytest.approx(0.021)
