"""Tests for control-plane priority queueing on links."""

from __future__ import annotations

import pytest

from repro.net.link import Link
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.topology import generators
from repro.topology.graph import LinkSpec


def make_link(sim, priority_control):
    delivered = []
    link = Link(
        sim,
        LinkSpec(1, 2, delay=0.001, bandwidth=1_000_000),
        deliver=lambda dst, p, src: delivered.append(p),
        dropper=lambda *a: None,
        priority_control=priority_control,
    )
    return link, delivered


def data(n=500):
    return Packet(src=1, dst=2, size_bytes=n)


def control(n=100):
    return Packet(src=1, dst=2, kind="control", ttl=1, size_bytes=n, payload=None)


class TestPriorityQueueing:
    def test_control_overtakes_queued_data(self, sim):
        link, delivered = make_link(sim, priority_control=True)
        # One data packet in service, three queued, then a control packet.
        for _ in range(4):
            link.transmit(1, data())
        ctl = control()
        link.transmit(1, ctl)
        sim.run()
        order = [p.kind for p in delivered]
        # The control packet jumps ahead of the three queued data packets.
        assert order == ["data", "control", "data", "data", "data"]

    def test_fifo_without_priority(self, sim):
        link, delivered = make_link(sim, priority_control=False)
        for _ in range(4):
            link.transmit(1, data())
        link.transmit(1, control())
        sim.run()
        assert [p.kind for p in delivered] == ["data"] * 4 + ["control"]

    def test_failure_flushes_both_queues(self, sim):
        drops = []
        link = Link(
            sim,
            LinkSpec(1, 2, delay=0.001, bandwidth=1_000_000),
            deliver=lambda *a: None,
            dropper=lambda p, n, c: drops.append(p),
            priority_control=True,
        )
        link.transmit(1, data())
        link.transmit(1, data())
        link.transmit(1, control())
        link.fail()
        sim.run()
        assert len(drops) == 3

    def test_network_passes_flag_through(self):
        sim = Simulator()
        net = Network(sim, generators.line(2), priority_control=True)
        assert net.link(0, 1).priority_control
