"""Unit tests for the failure injector."""

from __future__ import annotations

import pytest

from repro.net.failure import FailureInjector
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.topology import generators


class Recorder:
    def __init__(self):
        self.down = []
        self.up = []

    def handle_link_down(self, neighbor):
        self.down.append(neighbor)

    def handle_link_up(self, neighbor):
        self.up.append(neighbor)


def make(detection_delay=0.05):
    sim = Simulator()
    bus = TraceBus()
    net = Network(sim, generators.line(3), bus)
    recorders = {}
    for node in net.iter_nodes():
        rec = Recorder()
        recorders[node.id] = rec
        node.attach_protocol(rec)
    injector = FailureInjector(sim, net, detection_delay=detection_delay)
    return sim, net, bus, recorders, injector


class TestFailureInjection:
    def test_link_goes_down_at_fail_time(self):
        sim, net, bus, recorders, injector = make()
        injector.fail_link(0, 1, at=5.0)
        sim.run(until=4.9)
        assert net.link(0, 1).up
        sim.run(until=5.1)
        assert not net.link(0, 1).up

    def test_endpoints_notified_after_detection_delay(self):
        sim, net, bus, recorders, injector = make(detection_delay=0.5)
        injector.fail_link(0, 1, at=1.0)
        sim.run(until=1.4)
        assert recorders[0].down == []
        sim.run(until=1.6)
        assert recorders[0].down == [1]
        assert recorders[1].down == [0]
        assert recorders[2].down == []

    def test_event_record_published(self):
        sim, net, bus, recorders, injector = make()
        injector.fail_link(1, 2, at=2.0)
        sim.run()
        assert len(bus.link_events) == 1
        ev = bus.link_events[0]
        assert (ev.node_a, ev.node_b, ev.up) == (1, 2, False)

    def test_failure_event_metadata(self):
        sim, net, bus, recorders, injector = make(detection_delay=0.05)
        event = injector.fail_link(0, 1, at=3.0)
        assert event.detect_time == 3.05
        assert event.link_key == (0, 1)

    def test_unknown_link_rejected_immediately(self):
        sim, net, bus, recorders, injector = make()
        with pytest.raises(KeyError):
            injector.fail_link(0, 2, at=1.0)

    def test_negative_detection_delay_rejected(self):
        sim = Simulator()
        net = Network(sim, generators.line(2))
        with pytest.raises(ValueError):
            FailureInjector(sim, net, detection_delay=-1.0)

    def test_restore_notifies_link_up(self):
        sim, net, bus, recorders, injector = make(detection_delay=0.1)
        injector.fail_link(0, 1, at=1.0)
        injector.restore_link(0, 1, at=2.0)
        sim.run()
        assert net.link(0, 1).up
        assert recorders[0].up == [1]
        assert recorders[1].up == [0]
        assert injector.events[0].restored_time == 2.0
