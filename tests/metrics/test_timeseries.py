"""Unit + property tests for per-second time series."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics.timeseries import (
    BinnedSeries,
    _bins,
    average_series,
    delay_series,
    throughput_series,
)
from repro.traffic.flows import Delivery


def deliveries_at(times, delay=0.01):
    return [Delivery(time=t, delay=delay, hops=3, packet_id=i) for i, t in enumerate(times)]


class TestThroughputSeries:
    def test_counts_per_bin(self):
        d = deliveries_at([0.1, 0.2, 1.5, 2.9])
        series = throughput_series(d, start=0.0, stop=3.0)
        assert series.values == (2.0, 1.0, 1.0)
        assert series.times == (0.0, 1.0, 2.0)

    def test_out_of_window_ignored(self):
        d = deliveries_at([-1.0, 0.5, 5.0])
        series = throughput_series(d, start=0.0, stop=2.0)
        assert sum(series.values) == 1.0

    def test_origin_shifts_times(self):
        series = throughput_series([], start=10.0, stop=12.0, origin=10.0)
        assert series.times == (0.0, 1.0)

    def test_bin_width_scales_rate(self):
        d = deliveries_at([0.1, 0.2, 0.3, 0.4])
        series = throughput_series(d, start=0.0, stop=1.0, bin_width=0.5)
        assert series.values == (8.0, 0.0)  # 4 pkts in 0.5 s = 8 pkt/s

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            throughput_series([], start=1.0, stop=1.0)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=9.999), max_size=100),
    )
    def test_property_total_preserved(self, times):
        series = throughput_series(deliveries_at(times), start=0.0, stop=10.0)
        assert sum(series.values) == pytest.approx(len(times))


class TestBins:
    def test_edges_are_exact_multiples(self):
        # A running t += width accumulates float error; edges must be the
        # exact start + i*width each delivery's bin index is computed from.
        edges = _bins(0.0, 70.0, 0.1)
        assert len(edges) == 700
        for i, edge in enumerate(edges):
            assert edge == 0.0 + i * 0.1

    def test_no_spurious_final_bin_from_drift(self):
        # 0.1 is not exactly representable; 700 accumulated additions used
        # to land the last edge just below stop, creating an extra bin.
        assert len(_bins(0.0, 7.0, 0.1)) == 70
        assert len(_bins(0.0, 1.0, 0.1)) == 10

    def test_binning_consistent_with_index_formula(self):
        # A delivery exactly on a late bin edge must land in that bin.
        edges = _bins(0.0, 50.0, 0.1)
        t = edges[333]
        idx = int((t - 0.0) / 0.1)
        assert edges[idx] <= t < edges[idx] + 0.1


class TestDelaySeries:
    def test_mean_delay_per_bin(self):
        d = [
            Delivery(time=0.1, delay=0.2, hops=1, packet_id=0),
            Delivery(time=0.9, delay=0.4, hops=1, packet_id=1),
            Delivery(time=1.5, delay=1.0, hops=1, packet_id=2),
        ]
        series = delay_series(d, start=0.0, stop=2.0)
        assert series.values[0] == pytest.approx(0.3)
        assert series.values[1] == pytest.approx(1.0)

    def test_empty_bin_is_zero(self):
        series = delay_series([], start=0.0, stop=2.0)
        assert series.values == (0.0, 0.0)


class TestBinnedSeries:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            BinnedSeries(times=(0.0, 1.0), values=(1.0,))

    def test_value_at(self):
        series = BinnedSeries(times=(0.0, 1.0, 2.0), values=(5.0, 6.0, 7.0))
        assert series.value_at(1.5) == 6.0
        assert series.value_at(99.0) is None

    def test_window(self):
        series = BinnedSeries(times=(0.0, 1.0, 2.0, 3.0), values=(1.0, 2.0, 3.0, 4.0))
        sub = series.window(1.0, 3.0)
        assert sub.times == (1.0, 2.0)
        assert sub.values == (2.0, 3.0)

    def test_min_and_mean(self):
        series = BinnedSeries(times=(0.0, 1.0), values=(2.0, 4.0))
        assert series.min_value() == 2.0
        assert series.mean_value() == 3.0


class TestAverageSeries:
    def test_pointwise_mean(self):
        a = BinnedSeries(times=(0.0, 1.0), values=(2.0, 4.0))
        b = BinnedSeries(times=(0.0, 1.0), values=(4.0, 8.0))
        avg = average_series([a, b])
        assert avg.values == (3.0, 6.0)

    def test_misaligned_rejected(self):
        a = BinnedSeries(times=(0.0, 1.0), values=(2.0, 4.0))
        b = BinnedSeries(times=(0.0, 2.0), values=(4.0, 8.0))
        with pytest.raises(ValueError):
            average_series([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_series([])
