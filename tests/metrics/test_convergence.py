"""Unit tests for convergence tracking."""

from __future__ import annotations

import pytest

from repro.metrics.convergence import (
    ConvergenceTracker,
    NetworkConvergenceWatcher,
    walk_forwarding_path,
)
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.tracing import RouteChangeRecord, TraceBus
from repro.topology import generators


class TestWalkForwardingPath:
    def test_complete_path(self):
        fib = {0: 1, 1: 2, 2: None}
        snap = walk_forwarding_path(fib, 0, 2)
        assert snap.state == "ok"
        assert snap.path == (0, 1, 2)
        assert snap.complete

    def test_broken_path(self):
        fib = {0: 1, 1: None}
        snap = walk_forwarding_path(fib, 0, 5)
        assert snap.state == "broken"
        assert snap.path == (0, 1)

    def test_loop_detected(self):
        fib = {0: 1, 1: 2, 2: 1}
        snap = walk_forwarding_path(fib, 0, 9)
        assert snap.state == "loop"
        assert snap.path == (0, 1, 2, 1)

    def test_src_is_dest(self):
        snap = walk_forwarding_path({}, 3, 3)
        assert snap.state == "ok"
        assert snap.path == (3,)


def _change(time, node, dest, new):
    return RouteChangeRecord(
        time=time, node=node, dest=dest, old_next_hop=None, new_next_hop=new
    )


class TestConvergenceTracker:
    def _tracker(self):
        sim = Simulator()
        bus = TraceBus()
        net = Network(sim, generators.line(3), bus)
        net.node(0).set_next_hop(2, 1)
        net.node(1).set_next_hop(2, 2)
        tracker = ConvergenceTracker(bus, dest=2, src=0)
        tracker.seed_from_network(net)
        return sim, bus, net, tracker

    def test_seed_captures_initial_path(self):
        sim, bus, net, tracker = self._tracker()
        assert tracker.final_path.path == (0, 1, 2)
        assert tracker.final_path.complete

    def test_route_change_updates_snapshot(self):
        sim, bus, net, tracker = self._tracker()
        bus.publish(_change(5.0, 1, 2, None))
        assert tracker.final_path.state == "broken"
        assert tracker.routing_convergence_time(detect_time=4.0) == pytest.approx(1.0)

    def test_changes_for_other_dest_ignored(self):
        sim, bus, net, tracker = self._tracker()
        bus.publish(_change(5.0, 1, 9, None))
        assert tracker.route_change_times == []

    def test_forwarding_convergence_delay(self):
        sim, bus, net, tracker = self._tracker()
        bus.publish(_change(5.0, 1, 2, None))  # break
        bus.publish(_change(8.0, 1, 2, 2))  # restore
        assert tracker.forwarding_convergence_delay(detect_time=5.0) == pytest.approx(3.0)

    def test_no_changes_after_detect_is_zero(self):
        sim, bus, net, tracker = self._tracker()
        bus.publish(_change(2.0, 1, 2, None))
        assert tracker.routing_convergence_time(detect_time=10.0) == 0.0
        assert tracker.forwarding_convergence_delay(detect_time=10.0) == 0.0

    def test_transient_paths_and_converged_to(self):
        sim, bus, net, tracker = self._tracker()
        bus.publish(_change(5.0, 1, 2, None))
        bus.publish(_change(8.0, 1, 2, 2))
        transients = tracker.transient_paths(since=5.0)
        assert [s.state for s in transients] == ["broken", "ok"]
        assert tracker.converged_to((0, 1, 2))
        assert not tracker.converged_to((0, 2))

    def test_duplicate_path_snapshots_coalesced(self):
        sim, bus, net, tracker = self._tracker()
        n_before = len(tracker.snapshots)
        # A remote change that does not alter the walked path.
        bus.publish(_change(5.0, 2, 2, None))
        assert len(tracker.snapshots) == n_before


class TestNetworkConvergenceWatcher:
    def test_tracks_last_change_any_dest(self):
        bus = TraceBus()
        watcher = NetworkConvergenceWatcher(bus)
        bus.publish(_change(3.0, 0, 7, 1))
        bus.publish(_change(9.0, 4, 2, None))
        assert watcher.change_count == 2
        assert watcher.convergence_time(detect_time=1.0) == pytest.approx(8.0)

    def test_zero_when_no_changes_after_detect(self):
        bus = TraceBus()
        watcher = NetworkConvergenceWatcher(bus)
        bus.publish(_change(3.0, 0, 7, 1))
        assert watcher.convergence_time(detect_time=5.0) == 0.0

    def test_zero_when_never_changed(self):
        watcher = NetworkConvergenceWatcher(TraceBus())
        assert watcher.convergence_time(detect_time=0.0) == 0.0
