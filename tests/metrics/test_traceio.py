"""Tests for trace export/import."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, strategies as st

from repro.metrics.traceio import export_bus, read_trace, write_trace
from repro.sim.tracing import (
    DropCause,
    LinkEventRecord,
    MessageRecord,
    PacketRecord,
    RouteChangeRecord,
    TraceBus,
)

SAMPLES = [
    PacketRecord(time=1.0, kind="drop", packet_id=3, node=2, flow_id=1, ttl=5,
                 cause=DropCause.TTL_EXPIRED),
    PacketRecord(time=1.5, kind="deliver", packet_id=4, node=9, flow_id=1, ttl=120),
    PacketRecord(time=1.6, kind="send", packet_id=5, node=0, flow_id=1, ttl=128,
                 dst=9),
    RouteChangeRecord(time=2.0, node=1, dest=9, old_next_hop=2, new_next_hop=None),
    RouteChangeRecord(time=2.5, node=1, dest=9, old_next_hop=None, new_next_hop=3,
                      cause=("message", 3)),
    RouteChangeRecord(time=2.6, node=4, dest=9, old_next_hop=1, new_next_hop=None,
                      cause=("spf_recompute", None)),
    LinkEventRecord(time=3.0, node_a=1, node_b=2, up=False),
    MessageRecord(time=4.0, sender=1, receiver=2, protocol="bgp", n_routes=1,
                  is_withdrawal=True),
]


class TestRoundTrip:
    def test_all_record_types_survive(self):
        buf = io.StringIO()
        assert write_trace(SAMPLES, buf) == len(SAMPLES)
        buf.seek(0)
        restored = list(read_trace(buf))
        assert restored == SAMPLES

    def test_jsonl_one_record_per_line(self):
        buf = io.StringIO()
        write_trace(SAMPLES, buf)
        lines = [l for l in buf.getvalue().splitlines() if l]
        assert len(lines) == len(SAMPLES)
        import json

        assert all(json.loads(l)["type"] for l in lines)

    def test_blank_lines_ignored(self):
        buf = io.StringIO('\n{"type": "link", "time": 1.0, "node_a": 1, "node_b": 2, "up": true}\n\n')
        records = list(read_trace(buf))
        assert len(records) == 1

    def test_unknown_type_rejected(self):
        buf = io.StringIO('{"type": "martian", "time": 1.0}\n')
        with pytest.raises(ValueError):
            list(read_trace(buf))

    def test_packet_dst_round_trips(self):
        buf = io.StringIO()
        write_trace(SAMPLES, buf)
        buf.seek(0)
        restored = list(read_trace(buf))
        sends = [r for r in restored if getattr(r, "kind", None) == "send"]
        assert sends[0].dst == 9
        assert restored[0].dst is None  # absent stays absent

    def test_route_cause_round_trips(self):
        buf = io.StringIO()
        write_trace(SAMPLES, buf)
        buf.seek(0)
        causes = [
            r.cause for r in read_trace(buf) if isinstance(r, RouteChangeRecord)
        ]
        assert causes == [None, ("message", 3), ("spf_recompute", None)]

    def test_legacy_lines_without_new_fields_still_load(self):
        buf = io.StringIO(
            '{"type": "packet", "time": 1.0, "kind": "send", "packet_id": 1,'
            ' "node": 0, "flow_id": 0, "ttl": 64, "cause": null}\n'
            '{"type": "route", "time": 2.0, "node": 1, "dest": 9,'
            ' "old_next_hop": null, "new_next_hop": 2}\n'
        )
        packet, change = list(read_trace(buf))
        assert packet.dst is None
        assert change.cause is None


class TestNonStrictRead:
    MIXED = (
        '{"type": "link", "time": 1.0, "node_a": 1, "node_b": 2, "up": true}\n'
        '{"type": "martian", "time": 2.0}\n'
        '{"type": "quic", "time": 3.0}\n'
        '{"type": "link", "time": 4.0, "node_a": 1, "node_b": 2, "up": false}\n'
    )

    def test_skips_unknown_kinds_with_one_warning_each(self):
        with pytest.warns(UserWarning) as caught:
            records = list(read_trace(io.StringIO(self.MIXED), strict=False))
        assert [r.time for r in records] == [1.0, 4.0]
        messages = [str(w.message) for w in caught]
        assert len(messages) == 2
        assert any("martian" in m for m in messages)
        assert any("quic" in m for m in messages)

    def test_on_skip_callback_counts_instead_of_warning(self):
        skipped = []
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a warning here would fail the test
            records = list(
                read_trace(
                    io.StringIO(self.MIXED), strict=False, on_skip=skipped.append
                )
            )
        assert len(records) == 2
        assert [d["type"] for d in skipped] == ["martian", "quic"]

    def test_strict_is_the_default(self):
        with pytest.raises(ValueError):
            list(read_trace(io.StringIO(self.MIXED)))


class TestExportBus:
    def test_exports_retained_records_in_time_order(self, tmp_path):
        bus = TraceBus(keep_packets=True, keep_routes=True, keep_messages=True)
        for record in reversed(SAMPLES):
            bus.publish(record)
        path = tmp_path / "trace.jsonl"
        count = export_bus(bus, str(path))
        assert count == len(SAMPLES)
        with open(path) as f:
            restored = list(read_trace(f))
        times = [r.time for r in restored]
        assert times == sorted(times)

    def test_real_run_exports(self, tmp_path):
        from repro.net.dynamics import LinkScheduler
        from repro.topology import generators
        from ..conftest import build_network

        topo = generators.ring(4)
        sim, net, _ = build_network(topo, "dbf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        LinkScheduler(sim, net, detection_delay=0.05).fail_link(0, 1, at=5.0)
        sim.run(until=20.0)
        path = tmp_path / "run.jsonl"
        count = export_bus(net.bus, str(path))
        assert count > 0
        with open(path) as f:
            restored = list(read_trace(f))
        assert len(restored) == count
