"""Property tests for the trace-driven drop/message counters.

Hypothesis drives random record streams through a real ``TraceBus`` and
checks the counters against brute-force oracles:

* every drop lands in exactly one cause bucket, so the per-cause counts
  always sum to ``total`` and match a manual count over the stream;
* ``window_start`` filters on record time exactly (``time >= window``);
* byte/route/withdrawal accounting matches a straight sum.

Plus the unsubscribe bugfix: a ``close()``d counter stops counting, releases
the bus's ``wants_*`` guard, and is idempotent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.counters import DropCounter, MessageCounter
from repro.sim.tracing import DropCause, MessageRecord, PacketRecord, TraceBus

_CAUSES = list(DropCause)

_packet_events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.sampled_from(["send", "forward", "deliver", "drop"]),
        st.sampled_from(_CAUSES),
    ),
    max_size=60,
)

_message_events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(min_value=0, max_value=25),  # n_routes
        st.integers(min_value=0, max_value=4096),  # size_bytes
        st.booleans(),  # is_withdrawal
    ),
    max_size=60,
)

_window = st.one_of(
    st.none(), st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
)


def _publish_packets(bus: TraceBus, events) -> None:
    for i, (time, kind, cause) in enumerate(events):
        bus.publish(
            PacketRecord(
                time=time,
                kind=kind,
                packet_id=i,
                node=0,
                flow_id=1,
                ttl=64,
                cause=cause if kind == "drop" else None,
            )
        )


class TestDropCounterProperties:
    @given(events=_packet_events, window=_window)
    @settings(max_examples=60, deadline=None)
    def test_by_cause_sums_to_total_and_matches_oracle(self, events, window):
        bus = TraceBus()
        counter = DropCounter(bus, window_start=window)
        _publish_packets(bus, events)

        in_window = [
            (time, cause)
            for time, kind, cause in events
            if kind == "drop" and (window is None or time >= window)
        ]
        assert counter.total == len(in_window)
        assert sum(counter.by_cause.values()) == counter.total
        for cause in DropCause:
            expected = [t for t, c in in_window if c is cause]
            assert counter.by_cause[cause] == len(expected)
            assert counter.drop_times[cause] == expected  # publish order

    @given(events=_packet_events)
    @settings(max_examples=30, deadline=None)
    def test_non_drop_records_never_count(self, events):
        bus = TraceBus()
        counter = DropCounter(bus)
        _publish_packets(
            bus, [(t, k, c) for t, k, c in events if k != "drop"]
        )
        assert counter.total == 0


class TestMessageCounterProperties:
    @given(events=_message_events, window=_window)
    @settings(max_examples=60, deadline=None)
    def test_counts_match_straight_sums(self, events, window):
        bus = TraceBus()
        counter = MessageCounter(bus, window_start=window)
        for time, n_routes, size_bytes, is_withdrawal in events:
            bus.publish(
                MessageRecord(
                    time=time,
                    sender=0,
                    receiver=1,
                    protocol="rip",
                    n_routes=n_routes,
                    is_withdrawal=is_withdrawal,
                    size_bytes=size_bytes,
                )
            )
        kept = [
            e for e in events if window is None or e[0] >= window
        ]
        assert counter.messages == len(kept)
        assert counter.routes == sum(e[1] for e in kept)
        assert counter.bytes_sent == sum(e[2] for e in kept)
        assert counter.withdrawals == sum(1 for e in kept if e[3])


class TestCloseReleasesTheSubscription:
    """Regression for the original leak: counters never unsubscribed, so
    dead collectors kept the ``wants_*`` guards stuck on forever."""

    def test_closed_drop_counter_stops_counting(self):
        bus = TraceBus()
        counter = DropCounter(bus)
        record = PacketRecord(
            time=1.0, kind="drop", packet_id=1, node=0, flow_id=1, ttl=64,
            cause=DropCause.NO_ROUTE,
        )
        bus.publish(record)
        counter.close()
        bus.publish(record)
        assert counter.total == 1  # counts survive close; new drops don't

    def test_close_resets_the_wants_guard(self):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        counter = DropCounter(bus)
        assert bus.wants_packet
        counter.close()
        assert not bus.wants_packet

    def test_close_is_idempotent(self):
        bus = TraceBus()
        counter = DropCounter(bus)
        counter.close()
        counter.close()  # second close must not raise or double-unsubscribe

    def test_message_counter_close_resets_the_wants_guard(self):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        counter = MessageCounter(bus)
        assert bus.wants_message
        counter.close()
        assert not bus.wants_message

    def test_context_manager_closes_on_exit(self):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        with MessageCounter(bus) as counter:
            bus.publish(
                MessageRecord(
                    time=0.0, sender=0, receiver=1, protocol="rip", n_routes=2
                )
            )
        assert not bus.wants_message
        assert counter.messages == 1

    def test_close_only_releases_its_own_subscription(self):
        bus = TraceBus(keep_packets=False, keep_routes=False, keep_messages=False)
        first = DropCounter(bus)
        second = DropCounter(bus)
        first.close()
        assert bus.wants_packet  # the survivor keeps the guard up
        record = PacketRecord(
            time=1.0, kind="drop", packet_id=1, node=0, flow_id=1, ttl=64,
            cause=DropCause.TTL_EXPIRED,
        )
        bus.publish(record)
        assert first.total == 0
        assert second.total == 1
