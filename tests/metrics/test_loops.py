"""Unit tests for loop analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics.loops import analyze_deliveries, first_loop, path_has_loop
from repro.traffic.flows import Delivery


class TestPathPredicates:
    def test_loop_free(self):
        assert not path_has_loop([1, 2, 3])
        assert first_loop([1, 2, 3]) is None

    def test_simple_loop(self):
        assert path_has_loop([1, 2, 1])
        assert first_loop([1, 2, 1]) == (1, 2, 1)

    def test_first_of_multiple_loops(self):
        assert first_loop([0, 1, 2, 1, 3, 2]) == (1, 2, 1)

    def test_loop_not_at_start(self):
        assert first_loop([9, 1, 2, 3, 2]) == (2, 3, 2)

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=30))
    def test_property_predicates_agree(self, path):
        assert path_has_loop(path) == (first_loop(path) is not None)


class TestAnalyzeDeliveries:
    def _delivery(self, path, hops=None, pid=0):
        if hops is None:
            hops = len(path) - 2 if path else 0
        return Delivery(
            time=1.0,
            delay=0.1,
            hops=hops,
            packet_id=pid,
            path=tuple(path) if path else None,
        )

    def test_counts_escaped_loop_packets(self):
        deliveries = [
            self._delivery([0, 1, 2, 3]),
            self._delivery([0, 1, 2, 1, 2, 3]),
        ]
        report = analyze_deliveries(deliveries)
        assert report.delivered == 2
        assert report.escaped_loop == 1
        assert report.loop_cycles == ((1, 2, 1),)
        assert report.escape_ratio == pytest.approx(0.5)

    def test_extra_hops_vs_shortest(self):
        deliveries = [self._delivery([0, 1, 2, 3], hops=8)]
        report = analyze_deliveries(deliveries, shortest_hops=2)
        assert report.max_extra_hops == 6

    def test_paths_missing_tolerated(self):
        report = analyze_deliveries([self._delivery(None)])
        assert report.delivered == 1
        assert report.escaped_loop == 0

    def test_empty(self):
        report = analyze_deliveries([])
        assert report.delivered == 0
        assert report.escape_ratio == 0.0
