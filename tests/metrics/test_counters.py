"""Unit tests for drop and message counters."""

from __future__ import annotations

from repro.metrics.counters import DropCounter, MessageCounter
from repro.sim.tracing import DropCause, MessageRecord, PacketRecord, TraceBus


def drop_record(time=1.0, cause=DropCause.NO_ROUTE):
    return PacketRecord(
        time=time, kind="drop", packet_id=1, node=2, flow_id=1, ttl=5, cause=cause
    )


class TestDropCounter:
    def test_counts_by_cause(self):
        bus = TraceBus()
        counter = DropCounter(bus)
        bus.publish(drop_record(cause=DropCause.NO_ROUTE))
        bus.publish(drop_record(cause=DropCause.NO_ROUTE))
        bus.publish(drop_record(cause=DropCause.TTL_EXPIRED))
        assert counter.no_route == 2
        assert counter.ttl_expired == 1
        assert counter.total == 3

    def test_window_filters_early_drops(self):
        bus = TraceBus()
        counter = DropCounter(bus, window_start=10.0)
        bus.publish(drop_record(time=5.0))
        bus.publish(drop_record(time=15.0))
        assert counter.no_route == 1
        assert counter.drop_times[DropCause.NO_ROUTE] == [15.0]

    def test_non_drop_records_ignored(self):
        bus = TraceBus()
        counter = DropCounter(bus)
        bus.publish(
            PacketRecord(time=1.0, kind="deliver", packet_id=1, node=2, flow_id=1, ttl=5)
        )
        assert counter.total == 0

    def test_all_cause_properties(self):
        bus = TraceBus()
        counter = DropCounter(bus)
        for cause in DropCause:
            bus.publish(drop_record(cause=cause))
        assert counter.no_route == 1
        assert counter.ttl_expired == 1
        assert counter.link_down == 1
        assert counter.queue_overflow == 1


class TestMessageCounter:
    def test_counts_messages_and_routes(self):
        bus = TraceBus()
        counter = MessageCounter(bus)
        bus.publish(MessageRecord(time=1.0, sender=0, receiver=1, protocol="rip", n_routes=25))
        bus.publish(
            MessageRecord(
                time=2.0, sender=1, receiver=0, protocol="bgp", n_routes=1, is_withdrawal=True
            )
        )
        assert counter.messages == 2
        assert counter.routes == 26
        assert counter.withdrawals == 1

    def test_window(self):
        bus = TraceBus()
        counter = MessageCounter(bus, window_start=5.0)
        bus.publish(MessageRecord(time=1.0, sender=0, receiver=1, protocol="rip", n_routes=1))
        bus.publish(MessageRecord(time=9.0, sender=0, receiver=1, protocol="rip", n_routes=1))
        assert counter.messages == 1
