"""Tests for convergence narration."""

from __future__ import annotations

from repro.metrics.convergence import PathSnapshot
from repro.metrics.narrate import build_timeline, format_timeline
from repro.sim.tracing import DropCause, LinkEventRecord, PacketRecord, RouteChangeRecord


def route(t, node, dest, old, new):
    return RouteChangeRecord(time=t, node=node, dest=dest, old_next_hop=old, new_next_hop=new)


def drop(t, cause=DropCause.NO_ROUTE):
    return PacketRecord(time=t, kind="drop", packet_id=1, node=2, flow_id=1, ttl=5, cause=cause)


class TestBuildTimeline:
    def test_chronological_order(self):
        events = build_timeline(
            route_changes=[route(5.0, 1, 9, 2, 3)],
            link_events=[LinkEventRecord(time=1.0, node_a=1, node_b=2, up=False)],
            snapshots=[PathSnapshot(time=3.0, path=(0, 1), state="broken")],
        )
        times = [e.time for e in events]
        assert times == sorted(times)
        assert [e.kind for e in events] == ["link", "path", "route"]

    def test_route_change_phrasing(self):
        gained, lost, switched = build_timeline(
            route_changes=[
                route(1.0, 1, 9, None, 2),
                route(2.0, 1, 9, 2, None),
                route(3.0, 1, 9, 2, 3),
            ]
        )
        assert "gained" in gained.text
        assert "lost" in lost.text
        assert "switched" in switched.text

    def test_dest_filtering(self):
        events = build_timeline(
            route_changes=[route(1.0, 1, 9, None, 2), route(2.0, 1, 8, None, 2)],
            dest=9,
        )
        assert len(events) == 1

    def test_since_filtering(self):
        events = build_timeline(
            route_changes=[route(1.0, 1, 9, None, 2), route(10.0, 1, 9, 2, 3)],
            since=5.0,
        )
        assert len(events) == 1

    def test_drop_bursts_aggregated(self):
        events = build_timeline(packets=[drop(4.1), drop(4.7), drop(6.2)])
        drops = [e for e in events if e.kind == "drops"]
        assert len(drops) == 2
        assert "2 packet(s)" in drops[0].text

    def test_loop_snapshot_called_out(self):
        events = build_timeline(
            snapshots=[PathSnapshot(time=2.0, path=(0, 1, 2, 1), state="loop")]
        )
        assert "LOOPS" in events[0].text


class TestFormatTimeline:
    def test_relative_times(self):
        events = build_timeline(route_changes=[route(12.0, 1, 9, None, 2)])
        text = format_timeline(events, origin=10.0)
        assert "+2.000s" in text

    def test_truncation(self):
        events = build_timeline(
            route_changes=[route(float(i), 1, 9, None, 2) for i in range(100)]
        )
        text = format_timeline(events, max_events=10)
        assert "more events omitted" in text

    def test_empty(self):
        assert "(no events)" in format_timeline([])


class TestEndToEnd:
    def test_narrates_a_real_run(self):
        """Full pipeline: run a failure, narrate it, sanity-check the story."""
        from repro.net.failure import FailureInjector
        from repro.metrics.convergence import ConvergenceTracker
        from repro.topology import generators
        from ..conftest import build_network

        topo = generators.ring(4)
        sim, net, _ = build_network(topo, "dbf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        tracker = ConvergenceTracker(net.bus, dest=2, src=0)
        tracker.seed_from_network(net)
        injector = FailureInjector(sim, net, detection_delay=0.05)
        injector.fail_link(1, 2, at=10.0)
        sim.run(until=30.0)
        events = build_timeline(
            route_changes=net.bus.route_changes,
            link_events=net.bus.link_events,
            snapshots=tracker.snapshots,
            dest=2,
            since=9.0,
        )
        text = format_timeline(events, origin=10.0)
        assert "FAILED" in text
        assert "switched route" in text or "lost its route" in text
