"""Tests for convergence narration."""

from __future__ import annotations

from repro.metrics.convergence import PathSnapshot
from repro.metrics.narrate import build_timeline, format_timeline
from repro.sim.tracing import DropCause, LinkEventRecord, PacketRecord, RouteChangeRecord


def route(t, node, dest, old, new):
    return RouteChangeRecord(time=t, node=node, dest=dest, old_next_hop=old, new_next_hop=new)


_drop_ids = iter(range(1, 1000))


def drop(t, cause=DropCause.NO_ROUTE):
    return PacketRecord(
        time=t, kind="drop", packet_id=next(_drop_ids), node=2, flow_id=1,
        ttl=5, cause=cause,
    )


class TestBuildTimeline:
    def test_chronological_order(self):
        events = build_timeline(
            route_changes=[route(5.0, 1, 9, 2, 3)],
            link_events=[LinkEventRecord(time=1.0, node_a=1, node_b=2, up=False)],
            snapshots=[PathSnapshot(time=3.0, path=(0, 1), state="broken")],
        )
        times = [e.time for e in events]
        assert times == sorted(times)
        assert [e.kind for e in events] == ["link", "path", "route"]

    def test_route_change_phrasing(self):
        gained, lost, switched = build_timeline(
            route_changes=[
                route(1.0, 1, 9, None, 2),
                route(2.0, 1, 9, 2, None),
                route(3.0, 1, 9, 2, 3),
            ]
        )
        assert "gained" in gained.text
        assert "lost" in lost.text
        assert "switched" in switched.text

    def test_dest_filtering(self):
        events = build_timeline(
            route_changes=[route(1.0, 1, 9, None, 2), route(2.0, 1, 8, None, 2)],
            dest=9,
        )
        assert len(events) == 1

    def test_since_filtering(self):
        events = build_timeline(
            route_changes=[route(1.0, 1, 9, None, 2), route(10.0, 1, 9, 2, 3)],
            since=5.0,
        )
        assert len(events) == 1

    def test_drop_bursts_aggregated(self):
        events = build_timeline(packets=[drop(4.1), drop(4.7), drop(6.2)])
        drops = [e for e in events if e.kind == "drops"]
        assert len(drops) == 2
        assert "2 packet(s)" in drops[0].text

    def test_loop_snapshot_called_out(self):
        events = build_timeline(
            snapshots=[PathSnapshot(time=2.0, path=(0, 1, 2, 1), state="loop")]
        )
        assert "LOOPS" in events[0].text


class TestFormatTimeline:
    def test_relative_times(self):
        events = build_timeline(route_changes=[route(12.0, 1, 9, None, 2)])
        text = format_timeline(events, origin=10.0)
        assert "+2.000s" in text

    def test_truncation(self):
        events = build_timeline(
            route_changes=[route(float(i), 1, 9, None, 2) for i in range(100)]
        )
        text = format_timeline(events, max_events=10)
        assert "more events omitted" in text

    def test_empty(self):
        assert "(no events)" in format_timeline([])


def _record_level_drop_lines(packets, bin_width=1.0):
    """The pre-autopsy drop-burst narration: bin every terminal drop record.

    Real packets drop at most once (the conservation monitor enforces it),
    so binning drop *records* and binning autopsy *outcomes* must narrate
    identically — this oracle pins that the autopsy refactor changed no text.
    """
    bins = {}
    for r in packets:
        if r.kind != "drop" or r.cause is None:
            continue
        key = (int(r.time // bin_width), r.cause)
        bins[key] = bins.get(key, 0) + 1
    return [
        f"{count} packet(s) dropped ({cause.value}) in [{bin_idx}s, {bin_idx + 1}s)"
        for (bin_idx, cause), count in sorted(
            bins.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        )
    ]


class TestNarrationRegression:
    """Golden dbf/bgp3 seed-7 runs: autopsy-based narration text unchanged."""

    import pytest as _pytest

    @_pytest.mark.parametrize("protocol", ["dbf", "bgp3"])
    def test_golden_scenario_narration(self, protocol):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario
        from repro.obs.flight import FlightRecorder, packet_autopsies

        config = ExperimentConfig.quick().with_(post_fail_window=30.0)
        recorder = FlightRecorder()
        result = run_scenario(protocol, 4, 7, config, recorder=recorder)
        packets = recorder.records("packet")
        since = config.fail_time - 0.1
        events = build_timeline(
            route_changes=recorder.records("route"),
            link_events=recorder.records("link"),
            packets=packets,
            dest=result.receiver,
            since=since,
        )
        text = format_timeline(events, origin=config.fail_time)
        assert "FAILED" in text

        # Drop bursts narrate exactly as the pre-refactor record binning did.
        drop_lines = [e.text for e in events if e.kind == "drops"]
        legacy = [
            line
            for line in _record_level_drop_lines(packets)
            # match the timeline's since-filter (drop bins are keyed on time)
            if float(line.split("[")[1].split("s")[0]) >= since
        ]
        assert drop_lines  # golden seeds do drop packets post-failure
        assert drop_lines == legacy
        assert any(e.kind == "blackhole" for e in events)

        # Loop/blackhole callouts come from the same autopsies `repro trace`
        # prints, so the two views can never disagree about a packet.
        autopsies = packet_autopsies(packets)
        looped = {a.loop for a in autopsies.values() if a.loop is not None}
        narrated_loops = [e for e in events if e.kind == "loop"]
        for event in narrated_loops:
            cycle = tuple(
                int(n) for n in
                event.text.split("loop ")[1].split(":")[0].split(" -> ")
            )
            assert cycle in looped


class TestEndToEnd:
    def test_narrates_a_real_run(self):
        """Full pipeline: run a failure, narrate it, sanity-check the story."""
        from repro.net.dynamics import LinkScheduler
        from repro.metrics.convergence import ConvergenceTracker
        from repro.topology import generators
        from ..conftest import build_network

        topo = generators.ring(4)
        sim, net, _ = build_network(topo, "dbf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        tracker = ConvergenceTracker(net.bus, dest=2, src=0)
        tracker.seed_from_network(net)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 2, at=10.0)
        sim.run(until=30.0)
        events = build_timeline(
            route_changes=net.bus.route_changes,
            link_events=net.bus.link_events,
            snapshots=tracker.snapshots,
            dest=2,
            since=9.0,
        )
        text = format_timeline(events, origin=10.0)
        assert "FAILED" in text
        assert "switched route" in text or "lost its route" in text
