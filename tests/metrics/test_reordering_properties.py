"""Property tests for the arrival-order inversion analysis.

The single-pass ``analyze_reordering`` is checked against a brute-force
O(n^2) oracle on random arrival sequences (permutations and streams with
duplicates/losses): a packet is late iff some earlier arrival has a higher
id; its displacement is the gap to the running maximum; episodes are the
maximal runs of consecutive late arrivals.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.reordering import analyze_reordering
from repro.traffic.flows import Delivery


def _deliveries(ids):
    return [
        Delivery(time=float(i), delay=0.01, hops=2, packet_id=pid)
        for i, pid in enumerate(ids)
    ]


def _oracle(ids):
    """Quadratic reference implementation of the reordering report."""
    late = 0
    max_disp = 0
    episodes = 0
    prev_late = False
    for i, pid in enumerate(ids):
        high = max(ids[:i], default=-1)
        is_late = pid < high
        if is_late:
            late += 1
            max_disp = max(max_disp, high - pid)
            if not prev_late:
                episodes += 1
        prev_late = is_late
    return late, max_disp, episodes


_id_streams = st.one_of(
    st.lists(st.integers(min_value=0, max_value=30), max_size=40),
    st.permutations(list(range(12))),
)


@given(ids=_id_streams)
@settings(max_examples=120, deadline=None)
def test_single_pass_matches_quadratic_oracle(ids):
    ids = list(ids)
    report = analyze_reordering(_deliveries(ids))
    late, max_disp, episodes = _oracle(ids)
    assert report.delivered == len(ids)
    assert report.late_packets == late
    assert report.max_displacement == max_disp
    assert report.episodes == episodes


@given(ids=_id_streams)
@settings(max_examples=60, deadline=None)
def test_invariants(ids):
    ids = list(ids)
    report = analyze_reordering(_deliveries(ids))
    assert 0 <= report.late_packets <= report.delivered
    assert report.episodes <= report.late_packets
    assert (report.max_displacement > 0) == (report.late_packets > 0)
    assert 0.0 <= report.reordering_ratio <= 1.0


def test_in_order_stream_has_no_reordering():
    report = analyze_reordering(_deliveries(range(10)))
    assert report.late_packets == 0
    assert report.episodes == 0
    assert report.max_displacement == 0


def test_single_swap_is_one_episode():
    report = analyze_reordering(_deliveries([0, 2, 1, 3]))
    assert report.late_packets == 1
    assert report.episodes == 1
    assert report.max_displacement == 1
