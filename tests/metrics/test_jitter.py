"""Tests for the jitter series."""

from __future__ import annotations

import pytest

from repro.metrics.timeseries import jitter_series
from repro.traffic.flows import Delivery


def deliveries(spec):
    """spec: list of (time, delay)."""
    return [
        Delivery(time=t, delay=d, hops=3, packet_id=i)
        for i, (t, d) in enumerate(spec)
    ]


class TestJitterSeries:
    def test_constant_delay_zero_jitter(self):
        d = deliveries([(0.1, 0.05), (0.2, 0.05), (0.3, 0.05)])
        series = jitter_series(d, start=0.0, stop=1.0)
        assert series.values == (0.0,)

    def test_delay_step_produces_jitter(self):
        d = deliveries([(0.1, 0.05), (0.5, 0.15)])
        series = jitter_series(d, start=0.0, stop=1.0)
        assert series.values[0] == pytest.approx(0.1)

    def test_binning(self):
        d = deliveries([(0.1, 0.0), (0.9, 0.2), (1.5, 0.2)])
        series = jitter_series(d, start=0.0, stop=2.0)
        assert series.values[0] == pytest.approx(0.2)  # the step
        assert series.values[1] == pytest.approx(0.0)  # steady again

    def test_pair_with_prev_before_window_excluded(self):
        # The pair (t=-0.5 -> t=0.2) straddles the window start; its delay
        # delta belongs to the pre-window flow and must not leak into bin 0.
        d = deliveries([(-0.5, 0.5), (0.2, 0.05), (0.6, 0.05)])
        series = jitter_series(d, start=0.0, stop=1.0)
        assert series.values == (0.0,)

    def test_pair_with_cur_after_window_excluded(self):
        d = deliveries([(0.1, 0.05), (1.5, 0.9)])
        series = jitter_series(d, start=0.0, stop=1.0)
        assert series.values == (0.0,)

    def test_in_window_pairs_still_counted_after_edge_fix(self):
        d = deliveries([(-0.5, 0.5), (0.2, 0.05), (0.7, 0.15)])
        series = jitter_series(d, start=0.0, stop=1.0)
        assert series.values[0] == pytest.approx(0.1)  # only 0.2 -> 0.7

    def test_unsorted_input_tolerated(self):
        d = deliveries([(0.9, 0.2), (0.1, 0.0)])
        series = jitter_series(d, start=0.0, stop=1.0)
        assert series.values[0] == pytest.approx(0.2)

    def test_scenario_integration(self):
        """Convergence switch-overs produce a jitter spike at the failure."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario
        from repro.metrics.timeseries import jitter_series as js

        # jitter can be derived from any run's deliveries via the sink; here
        # just assert the function runs on real data shapes.
        cfg = ExperimentConfig.quick().with_(post_fail_window=30.0)
        r = run_scenario("dbf", 4, 1, cfg)
        assert r.delay is not None  # the harness exposes delay; jitter is
        # computed on demand from deliveries by callers.


class TestCsvExports:
    def test_sweep_table_csv(self):
        from repro.experiments.figures import SweepTable
        from repro.experiments.report import sweep_table_to_csv

        table = SweepTable(title="T", protocols=("rip", "dbf"), degrees=(3, 4))
        table.values = {("rip", 3): 1.0, ("rip", 4): 2.0, ("dbf", 3): 0.5, ("dbf", 4): 0.0}
        csv = sweep_table_to_csv(table)
        lines = csv.strip().splitlines()
        assert lines[0] == "degree,rip,dbf"
        assert lines[1] == "3,1,0.5"

    def test_series_csv(self):
        from repro.experiments.report import series_to_csv
        from repro.metrics.timeseries import BinnedSeries

        series = {
            ("rip", 3): BinnedSeries(times=(0.0, 1.0), values=(5.0, 6.0)),
            ("dbf", 3): BinnedSeries(times=(0.0, 1.0), values=(1.0, 2.0)),
        }
        csv = series_to_csv(series)
        lines = csv.strip().splitlines()
        assert lines[0] == "time,dbf_d3,rip_d3"
        assert lines[1] == "0,1,5"

    def test_series_csv_misaligned_rejected(self):
        from repro.experiments.report import series_to_csv
        from repro.metrics.timeseries import BinnedSeries

        series = {
            ("a", 1): BinnedSeries(times=(0.0,), values=(1.0,)),
            ("b", 1): BinnedSeries(times=(1.0,), values=(1.0,)),
        }
        with pytest.raises(ValueError):
            series_to_csv(series)
