"""Tests for packet reordering analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics.reordering import analyze_reordering
from repro.traffic.flows import Delivery


def deliveries(ids):
    return [
        Delivery(time=float(i), delay=0.01, hops=3, packet_id=pid)
        for i, pid in enumerate(ids)
    ]


class TestAnalyzeReordering:
    def test_in_order_is_clean(self):
        report = analyze_reordering(deliveries([0, 1, 2, 3]))
        assert report.late_packets == 0
        assert report.max_displacement == 0
        assert report.episodes == 0
        assert report.reordering_ratio == 0.0

    def test_single_inversion(self):
        report = analyze_reordering(deliveries([0, 2, 1, 3]))
        assert report.late_packets == 1
        assert report.max_displacement == 1
        assert report.episodes == 1

    def test_displacement_measured_against_high_water_mark(self):
        report = analyze_reordering(deliveries([0, 5, 1, 2, 6]))
        assert report.late_packets == 2
        assert report.max_displacement == 4  # packet 1 after packet 5
        assert report.episodes == 1  # consecutive lates form one episode

    def test_multiple_episodes(self):
        report = analyze_reordering(deliveries([1, 0, 2, 4, 3, 5]))
        assert report.episodes == 2

    def test_empty(self):
        report = analyze_reordering([])
        assert report.delivered == 0
        assert report.reordering_ratio == 0.0

    def test_gaps_without_inversion_are_clean(self):
        # Losses create id gaps, but arrival order is still monotone.
        report = analyze_reordering(deliveries([0, 7, 9, 40]))
        assert report.late_packets == 0

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=40))
    def test_property_late_count_bounds(self, ids):
        report = analyze_reordering(deliveries(ids))
        assert 0 <= report.late_packets <= max(0, len(ids) - 1)
        assert report.episodes <= report.late_packets


class TestScenarioIntegration:
    def test_reordering_present_during_convergence(self):
        """Path switch-overs reorder in-flight packets; steady state does not."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario

        cfg = ExperimentConfig.quick().with_(post_fail_window=40.0)
        r = run_scenario("dbf", 4, 1, cfg)
        assert r.reordering is not None
        assert r.reordering.delivered == r.delivered
        # No inversion before the failure is possible on a fixed path, so
        # every episode (if any) stems from the convergence event.
        assert r.reordering.late_packets >= 0
