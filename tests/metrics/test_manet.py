"""Unit tests for the MANET metric triple (PDR / NRL / E2E delay)."""

from __future__ import annotations

import math

import pytest

from repro.metrics.manet import DelayStats, ManetReport, analyze_manet, delay_stats
from repro.traffic.flows import Delivery


def _delivery(delay: float, packet_id: int = 0) -> Delivery:
    return Delivery(time=1.0 + delay, delay=delay, hops=2, packet_id=packet_id)


class TestDelayStats:
    def test_empty_deliveries(self):
        stats = delay_stats([])
        assert stats == DelayStats.empty()
        assert stats.count == 0

    def test_single_delivery(self):
        stats = delay_stats([_delivery(0.25)])
        assert stats.count == 1
        assert stats.mean == stats.median == stats.p95 == stats.max == 0.25

    def test_order_statistics(self):
        delays = [0.1, 0.2, 0.3, 0.4, 0.5]
        stats = delay_stats([_delivery(d, i) for i, d in enumerate(delays)])
        assert stats.count == 5
        assert stats.mean == pytest.approx(0.3)
        assert stats.median == pytest.approx(0.3)
        assert stats.p95 == pytest.approx(0.48)  # linear interpolation
        assert stats.max == 0.5

    def test_input_order_does_not_matter(self):
        delays = [0.5, 0.1, 0.3, 0.2, 0.4]
        shuffled = delay_stats([_delivery(d, i) for i, d in enumerate(delays)])
        ordered = delay_stats(
            [_delivery(d, i) for i, d in enumerate(sorted(delays))]
        )
        assert shuffled == ordered


class TestManetReport:
    def test_pdr_is_delivered_over_sent(self):
        report = analyze_manet(10, [_delivery(0.1, i) for i in range(7)], 20)
        assert report.pdr == 0.7
        assert report.delivered == 7
        assert report.sent == 10

    def test_nothing_sent_means_zero_pdr(self):
        report = analyze_manet(0, [], 0)
        assert report.pdr == 0.0

    def test_nrl_is_control_per_delivered(self):
        report = analyze_manet(10, [_delivery(0.1, i) for i in range(5)], 20)
        assert report.normalized_routing_load == 4.0

    def test_nrl_with_nothing_delivered_is_infinite(self):
        # Control spent, no payoff: report the signal, don't mask it.
        report = analyze_manet(10, [], 50)
        assert math.isinf(report.normalized_routing_load)

    def test_nrl_with_no_control_and_no_delivery_is_zero(self):
        report = analyze_manet(10, [], 0)
        assert report.normalized_routing_load == 0.0

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            analyze_manet(-1, [], 0)
        with pytest.raises(ValueError):
            analyze_manet(0, [], -1)

    def test_summary_is_human_readable(self):
        report = analyze_manet(10, [_delivery(0.1, i) for i in range(5)], 20)
        text = report.summary()
        assert "pdr=0.500" in text
        assert "nrl=4.00" in text
        assert "100.0ms" in text

    def test_summary_with_infinite_nrl(self):
        assert "nrl=inf" in analyze_manet(10, [], 50).summary()

    def test_report_is_frozen(self):
        report = analyze_manet(1, [_delivery(0.1)], 1)
        with pytest.raises(AttributeError):
            report.sent = 5

    def test_control_bytes_ride_along(self):
        report = analyze_manet(1, [_delivery(0.1)], 3, control_bytes=96)
        assert report.control_bytes == 96
        assert isinstance(report, ManetReport)
