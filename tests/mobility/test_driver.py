"""Tests for the mobility driver (movement -> link-event schedule)."""

from __future__ import annotations

import random

import pytest

from repro.mobility import MobilityDriver, RandomWaypoint
from repro.net.dynamics import TopologyDriver


def make_driver(seed=7, **kwargs):
    model = RandomWaypoint(
        10, (1000.0, 1000.0, 0.0), speed=(5.0, 15.0), pause=1.0,
        rng=random.Random(seed),
    )
    defaults = dict(radio_range=400.0, step=1.0)
    defaults.update(kwargs)
    return MobilityDriver(model, **defaults)


class TestSchedule:
    def test_is_a_topology_driver(self):
        assert isinstance(make_driver(), TopologyDriver)

    def test_same_seed_byte_identical_schedule(self):
        a = make_driver(seed=42).build(60.0)
        b = make_driver(seed=42).build(60.0)
        assert a.events == b.events
        assert a.initial_links == b.initial_links
        assert sorted(a.topology.links) == sorted(b.topology.links)

    def test_union_topology_covers_every_event(self):
        schedule = make_driver().build(60.0)
        for event in schedule.events:
            assert schedule.topology.has_link(event.a, event.b)

    def test_initially_down_is_union_minus_initial(self):
        schedule = make_driver().build(60.0)
        down = set(schedule.initially_down)
        assert down == set(schedule.topology.links) - schedule.initial_links
        assert schedule.initially_down == sorted(down)

    def test_events_are_time_ordered(self):
        events = make_driver().build(60.0).events
        assert all(
            events[i].time <= events[i + 1].time for i in range(len(events) - 1)
        )

    def test_alternating_transitions_per_link(self):
        """Per link the schedule must alternate fail/restore — the strict
        LinkScheduler would raise otherwise."""
        schedule = make_driver(seed=5).build(120.0)
        state = {key: True for key in schedule.initial_links}
        for event in schedule.events:
            key = event.link_key
            if event.kind == "fail":
                assert state.get(key, False), f"fail on down link {key}"
                state[key] = False
            else:
                assert not state.get(key, False), f"restore on up link {key}"
                state[key] = True

    def test_events_start_after_start_offset(self):
        schedule = make_driver(start=30.0).build(60.0)
        assert all(e.time > 30.0 for e in schedule.events)

    def test_generate_matches_build(self):
        driver = make_driver()
        events = driver.generate(60.0)
        assert tuple(events) == driver.build(60.0).events

    def test_rebuild_to_other_horizon_rejected(self):
        driver = make_driver()
        driver.build(60.0)
        with pytest.raises(ValueError, match="already built"):
            driver.build(90.0)

    def test_connected_at_start(self):
        schedule = make_driver().build(10.0)
        a, b = next(iter(schedule.initial_links))
        assert schedule.connected_at_start(a, b)
        assert schedule.connected_at_start(a, a)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_driver(step=0.0)
        with pytest.raises(ValueError):
            make_driver(start=-1.0)
