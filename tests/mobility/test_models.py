"""Tests for the mobility models: determinism, bounds, protocol shape."""

from __future__ import annotations

import random

import pytest

from repro.mobility import GaussMarkov, ManhattanGrid, MobilityModel, RandomWaypoint

AREA = (1000.0, 1000.0, 0.0)
AREA_3D = (1000.0, 1000.0, 300.0)


def make_model(name, seed=7, area=AREA):
    rng = random.Random(seed)
    if name == "waypoint":
        return RandomWaypoint(10, area, speed=(5.0, 15.0), pause=1.0, rng=rng)
    if name == "gauss-markov":
        return GaussMarkov(10, area, mean_speed=10.0, alpha=0.85, rng=rng)
    if name == "manhattan":
        return ManhattanGrid(10, area, blocks=(4, 4), speed=(5.0, 15.0), rng=rng)
    raise AssertionError(name)


MODELS = ("waypoint", "gauss-markov", "manhattan")


@pytest.mark.parametrize("name", MODELS)
class TestAllModels:
    def test_satisfies_protocol(self, name):
        assert isinstance(make_model(name), MobilityModel)

    def test_every_node_has_a_position(self, name):
        model = make_model(name)
        assert sorted(model.positions()) == list(range(10))

    def test_nodes_actually_move(self, name):
        model = make_model(name)
        before = model.positions()
        model.advance(5.0)
        after = model.positions()
        assert any(before[n] != after[n] for n in before)

    def test_stays_inside_area(self, name):
        model = make_model(name)
        for _ in range(200):
            model.advance(1.0)
            for x, y, z in model.positions().values():
                assert 0.0 <= x <= AREA[0]
                assert 0.0 <= y <= AREA[1]
                assert z == 0.0  # planar area keeps z pinned

    def test_same_seed_same_trajectory(self, name):
        a, b = make_model(name, seed=42), make_model(name, seed=42)
        for _ in range(50):
            a.advance(1.0)
            b.advance(1.0)
        assert a.positions() == b.positions()

    def test_different_seeds_diverge(self, name):
        a, b = make_model(name, seed=1), make_model(name, seed=2)
        assert a.positions() != b.positions()

    def test_positions_returns_a_copy(self, name):
        model = make_model(name)
        snap = model.positions()
        model.advance(10.0)
        assert snap != model.positions() or snap == model.positions()
        # The snapshot must be detached from internal state.
        snap[0] = (-1.0, -1.0, -1.0)
        assert model.positions()[0] != (-1.0, -1.0, -1.0)


class TestWaypoint:
    def test_pause_holds_position(self):
        rng = random.Random(3)
        model = RandomWaypoint(1, AREA, speed=(1e9, 1e9), pause=100.0, rng=rng)
        model.advance(0.001)  # arrives nearly instantly, starts pausing
        resting = model.positions()[0]
        model.advance(10.0)
        assert model.positions()[0] == resting

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            RandomWaypoint(0, AREA, speed=(1.0, 2.0), pause=0.0, rng=rng)
        with pytest.raises(ValueError):
            RandomWaypoint(2, AREA, speed=(5.0, 1.0), pause=0.0, rng=rng)


class TestGaussMarkov:
    def test_3d_area_uses_depth(self):
        model = GaussMarkov(
            20, AREA_3D, mean_speed=10.0, alpha=0.85, rng=random.Random(5)
        )
        for _ in range(20):
            model.advance(1.0)
        zs = [z for _, _, z in model.positions().values()]
        assert any(z > 0.0 for z in zs)
        assert all(0.0 <= z <= AREA_3D[2] for z in zs)

    def test_high_alpha_is_smoother_than_low(self):
        def turn_total(alpha):
            model = GaussMarkov(
                1, (1e6, 1e6, 0.0), mean_speed=10.0, alpha=alpha,
                rng=random.Random(11),
            )
            headings = []
            for _ in range(100):
                model.advance(1.0)
                headings.append(model._heading[0])
            return sum(
                abs(b - a) for a, b in zip(headings, headings[1:])
            )

        assert turn_total(0.95) < turn_total(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussMarkov(2, AREA, mean_speed=10.0, alpha=1.0, rng=random.Random(0))
        with pytest.raises(ValueError):
            GaussMarkov(2, AREA, mean_speed=0.0, alpha=0.5, rng=random.Random(0))


class TestManhattan:
    def test_positions_stay_on_streets(self):
        model = ManhattanGrid(
            10, AREA, blocks=(4, 4), speed=(5.0, 15.0), rng=random.Random(9)
        )
        sx, sy = 1000.0 / 4, 1000.0 / 4
        for _ in range(100):
            model.advance(1.0)
            for x, y, _ in model.positions().values():
                on_vertical = abs(x / sx - round(x / sx)) < 1e-9
                on_horizontal = abs(y / sy - round(y / sy)) < 1e-9
                assert on_vertical or on_horizontal

    def test_validation(self):
        with pytest.raises(ValueError):
            ManhattanGrid(
                2, AREA, blocks=(0, 4), speed=(5.0, 15.0), rng=random.Random(0)
            )
