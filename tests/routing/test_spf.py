"""Behavioral tests for the link-state SPF extension."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.routing.spf import Lsa, SpfProtocol
from repro.sim.rng import RngStreams
from repro.topology import generators
from repro.topology.graph import Topology

from ..conftest import build_network, metrics_match_shortest_paths


def diamond() -> Topology:
    topo = Topology("diamond")
    for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
        topo.connect(a, b)
    return topo


class TestColdConvergence:
    @pytest.mark.parametrize(
        "topo_factory", [lambda: generators.line(4), diamond, lambda: generators.ring(6)]
    )
    def test_flooding_converges(self, topo_factory):
        sim, net, _ = build_network(topo_factory(), "spf")
        net.start_protocols()
        sim.run(until=5.0)
        assert metrics_match_shortest_paths(net)

    def test_mesh_converges(self):
        from repro.topology.mesh import regular_mesh

        sim, net, _ = build_network(regular_mesh(4, 4, 6), "spf")
        net.start_protocols()
        sim.run(until=5.0)
        assert metrics_match_shortest_paths(net)


class TestFlooding:
    def test_duplicate_lsas_suppressed(self):
        sim, net, _ = build_network(generators.ring(4), "spf")
        net.start_protocols()
        sim.run(until=5.0)
        before = sum(n.protocol.messages_sent for n in net.iter_nodes())
        # Re-delivering a stale LSA must not restart the flood.
        proto = net.node(0).protocol
        stale = proto.database[2]
        proto.handle_message(stale, from_node=1)
        sim.run(until=6.0)
        after = sum(n.protocol.messages_sent for n in net.iter_nodes())
        assert after == before

    def test_higher_seq_replaces_and_refloods(self):
        sim, net, _ = build_network(generators.line(3), "spf")
        net.start_protocols()
        sim.run(until=5.0)
        proto0 = net.node(0).protocol
        newer = Lsa(origin=2, seq=99, adjacencies=((1, 1),))
        proto0.handle_message(newer, from_node=1)
        assert proto0.database[2].seq == 99


class TestFailureResponse:
    def test_recompute_after_failure(self):
        topo = diamond()
        sim, net, _ = build_network(topo, "spf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        assert net.node(0).next_hop(3) == 1
        injector.fail_link(1, 3, at=10.0)
        sim.run(until=11.0)
        assert net.node(0).next_hop(3) == 2
        assert net.node(1).next_hop(3) == 0

    def test_two_way_connectivity_check(self):
        """An LSA claiming a dead adjacency is ignored until both ends agree."""
        topo = diamond()
        sim, net, _ = build_network(topo, "spf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        proto0 = net.node(0).protocol
        # Node 1 stops claiming the 1-3 adjacency; 3 still claims it.
        proto0.handle_message(
            Lsa(origin=1, seq=50, adjacencies=((0, 1),)), from_node=1
        )
        assert proto0.node.next_hop(3) == 2  # 1-3 no longer usable

    def test_disconnection_withdraws_routes(self):
        topo = generators.line(3)
        sim, net, _ = build_network(topo, "spf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 2, at=10.0)
        sim.run(until=12.0)
        assert net.node(0).next_hop(2) is None
        assert net.node(0).protocol.route_metric(2) is None


class TestWarmStart:
    def test_warm_start_installs_shortest_paths(self):
        topo = diamond()
        sim, net, _ = build_network(topo, "spf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        assert metrics_match_shortest_paths(net)

    def test_warm_start_quiet_afterwards(self):
        topo = diamond()
        sim, net, _ = build_network(topo, "spf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        net.bus.route_changes.clear()
        sim.run(until=60.0)
        assert net.bus.route_changes == []
