"""Warm start must equal the converged cold-start state.

The experiment harness relies on ``warm_start`` installing exactly the state
a cold-started network converges to; these integration tests verify that
equivalence per protocol on small tie-free topologies, and that warm-started
networks are quiescent (no route churn, steady packet delivery).
"""

from __future__ import annotations

import pytest

from repro.net.packet import Packet
from repro.routing.bgp import BgpConfig
from repro.topology import generators
from repro.topology.graph import Topology

from ..conftest import build_network, metrics_match_shortest_paths

PROTOCOLS = ["rip", "dbf", "bgp", "spf"]
FAST_BGP = BgpConfig(mrai_base=0.5, mrai_jitter=0.1)


def tie_free_topology() -> Topology:
    """Ring of 5 plus a chord: unique shortest paths between all pairs."""
    topo = generators.ring(5)
    return topo


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestWarmEqualsConvergedCold:
    def _fibs(self, net):
        return {n.id: dict(n.fib) for n in net.iter_nodes()}

    def test_same_fibs_as_cold_convergence(self, protocol):
        topo = tie_free_topology()
        sim_c, net_c, _ = build_network(topo, protocol, bgp_config=FAST_BGP)
        net_c.start_protocols()
        sim_c.run(until=90.0)

        sim_w, net_w, _ = build_network(topo, protocol, bgp_config=FAST_BGP)
        for node in net_w.iter_nodes():
            node.protocol.warm_start(topo)

        assert self._fibs(net_c) == self._fibs(net_w)

    def test_warm_metrics_are_shortest(self, protocol):
        topo = tie_free_topology()
        sim, net, _ = build_network(topo, protocol, bgp_config=FAST_BGP)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        assert metrics_match_shortest_paths(net)

    def test_warm_network_is_route_quiet(self, protocol):
        """No FIB churn during failure-free operation after warm start."""
        topo = tie_free_topology()
        sim, net, _ = build_network(topo, protocol, bgp_config=FAST_BGP)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        net.bus.route_changes.clear()
        sim.run(until=120.0)
        assert net.bus.route_changes == []

    def test_warm_network_delivers_traffic(self, protocol):
        topo = tie_free_topology()
        sim, net, _ = build_network(topo, protocol, bgp_config=FAST_BGP)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        for i in range(10):
            sim.schedule_at(
                1.0 + i,
                lambda: net.node(0).originate(Packet(src=0, dst=2, size_bytes=64)),
            )
        sim.run(until=40.0)
        assert net.node(2).delivered == 10


class TestWarmStartOnMesh:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_paper_mesh_warm_start_is_quiet(self, protocol):
        from repro.topology.mesh import regular_mesh

        topo = regular_mesh(5, 5, 5)
        sim, net, _ = build_network(topo, protocol, bgp_config=FAST_BGP)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        net.bus.route_changes.clear()
        sim.run(until=70.0)
        assert net.bus.route_changes == []
