"""Unit tests for DSR: source routing, route cache, error poisoning."""

from __future__ import annotations

from repro.net.dynamics import LinkScheduler
from repro.net.packet import Packet
from repro.routing.dsr import DsrConfig, DsrProtocol, RouteError
from repro.sim.tracing import DropCause
from repro.topology import generators

from ..conftest import build_network


def _send_data(net, src: int, dst: int) -> Packet:
    packet = Packet(src=src, dst=dst, flow_id=1)
    net.node(src).originate(packet)
    return packet


class TestSourceRouting:
    def test_discovery_stamps_route_and_delivers(self):
        sim, net, _ = build_network(generators.line(4), "dsr")
        net.start_protocols()
        packet = _send_data(net, 0, 3)
        sim.run(until=1.0)
        assert net.total_delivered() == 1
        assert packet.route == (0, 1, 2, 3)

    def test_fib_stays_empty_everywhere(self):
        sim, net, _ = build_network(generators.line(4), "dsr")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        for node in net.iter_nodes():
            for dest in net.topology.nodes:
                if dest != node.id:
                    assert node.next_hop(dest) is None

    def test_cached_route_skips_rediscovery(self):
        sim, net, _ = build_network(generators.line(3), "dsr")
        net.start_protocols()
        _send_data(net, 0, 2)
        sim.run(until=1.0)
        proto = net.node(0).protocol
        assert proto.discoveries == 1
        _send_data(net, 0, 2)
        sim.run(until=2.0)
        assert proto.discoveries == 1  # cache hit, no second flood
        assert net.total_delivered() == 2

    def test_prefixes_of_discovered_routes_are_cached(self):
        sim, net, _ = build_network(generators.line(4), "dsr")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        proto = net.node(0).protocol
        # The path to 3 teaches paths to 1 and 2 for free.
        assert proto.route_path(1) == (0, 1)
        assert proto.route_path(2) == (0, 1, 2)

    def test_best_path_prefers_shortest(self):
        sim, net, _ = build_network(generators.ring(4), "dsr")
        net.start_protocols()
        proto = net.node(0).protocol
        proto._cache_path((0, 3, 2, 1, 2))
        proto._cache_path((0, 1, 2))
        proto._cache_path((0, 3, 2))
        # Shortest wins; the deterministic tie-break picks the smaller tuple.
        assert proto.route_path(2) == (0, 1, 2)


class TestRouteErrors:
    def test_broken_relay_sends_error_back_and_origin_purges(self):
        sim, net, _ = build_network(generators.line(4), "dsr")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        origin = net.node(0).protocol
        assert origin.route_path(3) == (0, 1, 2, 3)
        injector = LinkScheduler(sim, net, detection_delay=0.01)
        injector.fail_link(2, 3, at=2.0)
        sim.run(until=2.5)
        # Node 2 poisoned its own cache on link-layer feedback; the origin
        # still holds the stale path until it tries to use it.
        _send_data(net, 0, 3)
        sim.run(until=3.5)
        assert origin.route_path(3) is None
        assert net.total_drops(DropCause.NO_ROUTE) >= 1

    def test_error_poisons_both_directions_of_the_link(self):
        sim, net, _ = build_network(generators.line(4), "dsr")
        net.start_protocols()
        proto = net.node(0).protocol
        proto._cache_path((0, 1, 2, 3))
        proto._cache_path((0, 1))
        proto.handle_message(
            RouteError(broken=(2, 1), route=(0, 1)), from_node=1
        )
        # (1, 2) and (2, 1) are the same broken link; the long path dies,
        # the short one survives.
        assert proto.route_path(3) is None
        assert proto.route_path(1) == (0, 1)
        assert proto.cache_poisonings == 1

    def test_link_down_purges_local_cache(self):
        sim, net, _ = build_network(generators.line(3), "dsr")
        net.start_protocols()
        _send_data(net, 0, 2)
        sim.run(until=1.0)
        proto = net.node(0).protocol
        assert proto.route_path(2) is not None
        injector = LinkScheduler(sim, net, detection_delay=0.01)
        injector.fail_link(0, 1, at=2.0)
        sim.run(until=3.0)
        assert proto.route_path(2) is None


class TestRecovery:
    def test_rediscovery_after_failure_finds_detour(self):
        sim, net, _ = build_network(generators.ring(4), "dsr")
        net.start_protocols()
        _send_data(net, 0, 2)
        sim.run(until=1.0)
        injector = LinkScheduler(sim, net, detection_delay=0.01)
        # Break whichever two-hop path discovery found; the other survives.
        first = net.node(0).protocol.route_path(2)
        injector.fail_link(first[0], first[1], at=2.0)
        sim.run(until=3.0)
        _send_data(net, 0, 2)
        sim.run(until=6.0)
        path = net.node(0).protocol.route_path(2)
        assert path is not None and first[1] not in path
        assert net.total_delivered() == 2

    def test_promiscuous_relay_gleans_paths(self):
        config = DsrConfig(promiscuous=True)
        sim, net, rng = build_network(generators.line(4), "none")
        net.attach_protocols(lambda node: DsrProtocol(node, rng, config))
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        relay = net.node(1).protocol
        # The relay learned the downstream suffix and upstream reverse path
        # from the data packet it forwarded.
        assert relay.route_path(3) == (1, 2, 3)
        assert relay.route_path(0) == (1, 0)

    def test_non_promiscuous_relay_still_caches_from_control(self):
        sim, net, _ = build_network(generators.line(4), "dsr")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        # RREQ record gave the relay a reverse path to the originator.
        assert net.node(2).protocol.route_path(0) == (2, 1, 0)


class TestInspectionHooks:
    def test_source_route_loops_flags_duplicate_nodes(self):
        sim, net, _ = build_network(generators.line(3), "dsr")
        net.start_protocols()
        proto = net.node(0).protocol
        assert proto.source_route_loops() == []
        proto.cache.setdefault(2, set()).add((0, 1, 0, 1, 2))
        assert proto.source_route_loops() == [(0, 1, 0, 1, 2)]

    def test_route_metric_is_path_length(self):
        sim, net, _ = build_network(generators.line(4), "dsr")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        proto = net.node(0).protocol
        assert proto.route_metric(3) == 3
        assert proto.route_metric(0) == 0
        assert proto.route_metric(99) is None
