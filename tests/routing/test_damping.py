"""Tests for route flap damping (RFC 2439 machinery + BGP integration)."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.routing.bgp import BgpConfig, BgpProtocol
from repro.routing.damping import DampingConfig, RouteDampener
from repro.routing.messages import PathVectorUpdate, PathVectorWithdrawal
from repro.routing.rib import PathAttr
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.topology import generators

from ..conftest import build_network

CFG = DampingConfig(
    suppress_threshold=2000.0,
    reuse_threshold=750.0,
    half_life=10.0,
    withdrawal_penalty=1000.0,
    readvertisement_penalty=500.0,
    max_suppress_time=60.0,
)


class TestRouteDampener:
    def _dampener(self, sim, on_reuse=None):
        events = []
        dampener = RouteDampener(sim, CFG, on_reuse or events.append)
        return dampener, events

    def test_single_flap_does_not_suppress(self, sim):
        dampener, _ = self._dampener(sim)
        dampener.record_withdrawal(("n", 5))
        assert not dampener.is_suppressed(("n", 5))
        assert dampener.penalty(("n", 5)) == pytest.approx(1000.0)

    def test_repeated_flaps_suppress(self, sim):
        dampener, _ = self._dampener(sim)
        dampener.record_withdrawal(("n", 5))
        dampener.record_withdrawal(("n", 5))
        assert dampener.is_suppressed(("n", 5))
        assert dampener.suppressions == 1

    def test_penalty_decays_exponentially(self, sim):
        dampener, _ = self._dampener(sim)
        dampener.record_withdrawal(("n", 5))
        sim.run(until=10.0)  # one half-life
        assert dampener.penalty(("n", 5)) == pytest.approx(500.0, rel=1e-6)

    def test_reuse_fires_when_penalty_decays(self, sim):
        reused = []
        dampener = RouteDampener(sim, CFG, reused.append)
        dampener.record_withdrawal(("n", 5))
        dampener.record_withdrawal(("n", 5))
        sim.run(until=60.0)
        assert reused == [("n", 5)]
        assert not dampener.is_suppressed(("n", 5))
        # Penalty 2000 decays to reuse 750 after h*log2(2000/750) ~ 14.2 s.
        assert 10.0 < sim.now

    def test_forget_clears_state_and_cancels_reuse(self, sim):
        reused = []
        dampener = RouteDampener(sim, CFG, reused.append)
        dampener.record_withdrawal(("n", 5))
        dampener.record_withdrawal(("n", 5))
        dampener.forget("n")
        sim.run(until=120.0)
        assert reused == []
        assert dampener.penalty(("n", 5)) == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DampingConfig(reuse_threshold=0)
        with pytest.raises(ValueError):
            DampingConfig(suppress_threshold=700.0, reuse_threshold=750.0)
        with pytest.raises(ValueError):
            DampingConfig(half_life=0)


class TestBgpDampingIntegration:
    def _speaker(self):
        sim, net, _ = build_network(generators.star(2), "none")
        config = BgpConfig(mrai_base=0.1, mrai_jitter=0.0, damping=CFG, label="bgp-rfd")
        proto = BgpProtocol(net.node(0), RngStreams(1), net, config)
        proto.start()
        return sim, net, proto

    def _flap(self, proto, times: int, dest=9, neighbor=1):
        for i in range(times):
            proto.handle_message(
                PathVectorUpdate(path=PathAttr.of((neighbor, dest)), dests=(dest,)),
                from_node=neighbor,
            )
            proto.handle_message(PathVectorWithdrawal(dests=(dest,)), from_node=neighbor)

    def test_flapping_route_gets_suppressed(self):
        sim, net, proto = self._speaker()
        self._flap(proto, times=3)
        # Re-announce: the route is cached but suppressed, so not selected.
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        assert proto.rib_in[1][9] is not None
        assert proto.best.get(9) is None
        assert net.node(0).next_hop(9) is None

    def test_stable_alternate_still_usable(self):
        sim, net, proto = self._speaker()
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((2, 8, 9)), dests=(9,)), from_node=2
        )
        self._flap(proto, times=3, neighbor=1)
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        # Neighbor 1's shorter path is damped; the stable longer one wins.
        assert proto.best[9].first_hop == 2

    def test_reuse_restores_selection(self):
        sim, net, proto = self._speaker()
        self._flap(proto, times=3)
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        assert proto.best.get(9) is None
        sim.run(until=120.0)  # allow penalty decay + reuse
        assert proto.best.get(9) is not None
        assert net.node(0).next_hop(9) == 1

    def test_damping_suppresses_transient_loops(self):
        """In a loop-forming failure layout, damping suppresses the flapping
        stale alternates, cutting TTL deaths (the flip side of Mao et al.'s
        effect — the harmful side needs production 15-minute half-lives that
        exceed this experiment's window; see EXPERIMENTS.md)."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario

        cfg = ExperimentConfig.quick().with_(post_fail_window=60.0)
        plain = run_scenario("bgp3", 5, 4, cfg)  # known loop layout
        damped = run_scenario("bgp3-rfd", 5, 4, cfg)
        assert plain.drops_ttl > 0
        assert damped.drops_ttl < plain.drops_ttl
        assert damped.delivered >= plain.delivered

    def test_damping_is_inert_without_flaps(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario

        cfg = ExperimentConfig.quick().with_(post_fail_window=60.0)
        plain = run_scenario("bgp3", 5, 9, cfg)  # clean switch-over layout
        damped = run_scenario("bgp3-rfd", 5, 9, cfg)
        assert damped.delivered == plain.delivered
        assert damped.drops_ttl == plain.drops_ttl == 0
