"""Unit tests for AODV: discovery, sequence numbers, RERR, expiry."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.net.packet import Packet
from repro.routing.aodv import AodvConfig, AodvProtocol, Rerr
from repro.sim.tracing import DropCause
from repro.topology import generators

from ..conftest import build_network


def _send_data(net, src: int, dst: int) -> Packet:
    packet = Packet(src=src, dst=dst, flow_id=1)
    net.node(src).originate(packet)
    return packet


class TestDiscovery:
    def test_route_miss_triggers_discovery_and_delivery(self):
        sim, net, _ = build_network(generators.line(4), "aodv")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        # RREQ flooded out, RREP walked back, the buffered packet went through.
        assert net.total_delivered() == 1
        assert net.node(0).protocol.route_metric(3) == 3
        assert net.node(0).next_hop(3) == 1

    def test_reverse_routes_install_along_the_flood(self):
        sim, net, _ = build_network(generators.line(4), "aodv")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        # Every node the RREP passed through knows both endpoints.
        for mid in (1, 2):
            proto = net.node(mid).protocol
            assert proto.route_metric(0) == mid
            assert proto.route_metric(3) == 3 - mid

    def test_converged_steady_state_is_an_empty_table(self):
        sim, net, _ = build_network(generators.line(3), "aodv")
        for node in net.iter_nodes():
            node.protocol.warm_start(net.topology)
        sim.run(until=5.0)
        assert all(not node.protocol.routes for node in net.iter_nodes())

    def test_packets_buffer_during_discovery_then_release_in_order(self):
        sim, net, _ = build_network(generators.line(3), "aodv")
        net.start_protocols()
        first = _send_data(net, 0, 2)
        second = _send_data(net, 0, 2)
        proto = net.node(0).protocol
        assert proto.pending_data_packets() == 2
        assert proto.discoveries == 1  # second packet rides the same discovery
        sim.run(until=1.0)
        assert proto.pending_data_packets() == 0
        assert net.total_delivered() == 2

    def test_discovery_for_unreachable_dest_fails_after_retries(self):
        config = AodvConfig(path_discovery_time=0.5, rreq_retries=1)
        sim, net, rng = build_network(generators.line(3), "none")

        def factory(node):
            return AodvProtocol(node, rng, config)

        net.attach_protocols(factory)
        net.start_protocols()
        injector = LinkScheduler(sim, net, detection_delay=0.01)
        injector.fail_link(1, 2, at=0.1)
        sim.run(until=0.5)  # node 2 is now unreachable
        _send_data(net, 0, 2)
        sim.run(until=10.0)
        proto = net.node(0).protocol
        assert proto.discovery_failures == 1
        assert proto.pending_data_packets() == 0
        assert net.total_drops(DropCause.NO_ROUTE) >= 1


class TestSequenceNumbers:
    def test_own_seq_never_decreases_across_discoveries(self):
        sim, net, _ = build_network(generators.ring(5), "aodv")
        net.start_protocols()
        seqs = []
        for dest in (2, 3, 1):
            _send_data(net, 0, dest)
            sim.run(until=sim.now + 1.0)
            seqs.append(net.node(0).protocol.seq)
        assert seqs == sorted(seqs)

    def test_destination_reply_is_at_least_as_fresh_as_requested(self):
        sim, net, _ = build_network(generators.line(3), "aodv")
        net.start_protocols()
        _send_data(net, 0, 2)
        sim.run(until=1.0)
        dest_proto = net.node(2).protocol
        # The route node 0 installed carries node 2's advertised sequence
        # number, which can never exceed node 2's own counter.
        assert net.node(0).protocol.routes[2].seq <= dest_proto.seq


class TestLinkFailure:
    def test_link_down_invalidates_routes_and_bumps_seq(self):
        sim, net, _ = build_network(generators.line(4), "aodv")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        mid = net.node(1).protocol
        seq_before = mid.routes[3].seq
        injector = LinkScheduler(sim, net, detection_delay=0.01)
        injector.fail_link(1, 2, at=2.0)
        sim.run(until=3.0)
        assert not mid.routes[3].valid
        assert mid.routes[3].seq == seq_before + 1
        assert net.node(1).next_hop(3) is None

    def test_rerr_propagates_to_precursors(self):
        sim, net, _ = build_network(generators.line(4), "aodv")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        assert net.node(0).next_hop(3) == 1
        injector = LinkScheduler(sim, net, detection_delay=0.01)
        injector.fail_link(1, 2, at=2.0)
        sim.run(until=3.0)
        # Node 1's RERR reached node 0 (its precursor for dest 3).
        origin = net.node(0).protocol
        assert 3 in origin.routes and not origin.routes[3].valid
        assert net.node(0).next_hop(3) is None

    def test_rerr_only_honored_from_current_next_hop(self):
        sim, net, _ = build_network(generators.line(4), "aodv")
        net.start_protocols()
        _send_data(net, 0, 3)
        sim.run(until=1.0)
        origin = net.node(0).protocol
        route = origin.routes[3]
        # A spoofed RERR from a node that is not our next hop is ignored.
        origin.handle_message(Rerr(unreachable=((3, route.seq + 5),)), from_node=3)
        assert origin.routes[3].valid


class TestExpiry:
    def test_finite_timeout_expires_idle_routes(self):
        config = AodvConfig(active_route_timeout=2.0)
        sim, net, rng = build_network(generators.line(3), "none")

        def factory(node):
            return AodvProtocol(node, rng, config)

        net.attach_protocols(factory)
        net.start_protocols()
        _send_data(net, 0, 2)
        sim.run(until=1.0)
        assert net.node(0).protocol.route_metric(2) == 2
        sim.run(until=10.0)
        assert net.node(0).protocol.route_metric(2) is None
        assert net.node(0).next_hop(2) is None

    def test_infinite_timeout_keeps_routes(self):
        sim, net, _ = build_network(generators.line(3), "aodv")
        net.start_protocols()
        _send_data(net, 0, 2)
        sim.run(until=60.0)
        assert net.node(0).protocol.route_metric(2) == 2
