"""Edge-path tests for the shared distance-vector machinery."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.routing.dv_common import DistanceVectorConfig
from repro.routing.messages import DistanceVectorUpdate
from repro.routing.rip import RipProtocol
from repro.sim.rng import RngStreams
from repro.topology import generators

from ..conftest import build_network, metrics_match_shortest_paths


class TestLinkUpHandling:
    @pytest.mark.parametrize("protocol", ["rip", "dbf"])
    def test_restored_link_reintegrates(self, protocol):
        topo = generators.ring(4)
        sim, net, _ = build_network(topo, protocol)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=10.0)
        injector.restore_link(0, 1, at=20.0)
        sim.run(until=120.0)  # several periodic cycles after restoration
        assert metrics_match_shortest_paths(net)

    def test_link_up_sends_immediate_introduction(self):
        topo = generators.line(2)
        sim, net, _ = build_network(topo, "rip")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=5.0)
        injector.restore_link(0, 1, at=10.0)
        before = len([m for m in net.bus.messages if 10.0 <= m.time < 10.2])
        sim.run(until=10.2)
        after = [m for m in net.bus.messages if 10.0 <= m.time < 10.2]
        # Both endpoints advertise their tables right at re-detection, long
        # before the next periodic cycle.
        assert len(after) >= 2


class TestStaleMessageHandling:
    def test_update_from_downed_adjacency_ignored(self):
        """A message already delivered when the link is known dead must not
        resurrect routes through it."""
        topo = generators.line(2)
        sim, net, _ = build_network(topo, "none")
        proto = RipProtocol(net.node(0), RngStreams(1))
        proto.start()
        net.link(0, 1).fail()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        assert proto.route_metric(9) is None

    def test_wrong_payload_type_rejected(self):
        topo = generators.line(2)
        sim, net, _ = build_network(topo, "none")
        proto = RipProtocol(net.node(0), RngStreams(1))
        proto.start()
        with pytest.raises(TypeError):
            proto.handle_message({"not": "a DV update"}, from_node=1)

    def test_self_destination_in_update_ignored(self):
        topo = generators.line(2)
        sim, net, _ = build_network(topo, "none")
        proto = RipProtocol(net.node(0), RngStreams(1))
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((0, 3),)), from_node=1)
        assert proto.route_metric(0) == 0  # still ourselves, untouched


class TestAdvertisementContent:
    def test_periodic_update_carries_whole_table(self):
        topo = generators.line(3)
        sim, net, _ = build_network(topo, "rip")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        proto = net.node(1).protocol
        view = dict(proto._full_table_view(0))
        # Table covers every destination (poison-reversed where needed).
        assert set(view) == {0, 1, 2}
        assert view[1] == 0  # self route
        assert view[0] == proto.config.infinity  # poison reverse toward 0
        assert view[2] == 1

    def test_garbage_collected_dest_disappears_from_advertisements(self):
        config = DistanceVectorConfig(route_timeout=40.0, garbage_collect=5.0)
        topo = generators.line(2)
        sim, net, _ = build_network(topo, "none")
        proto = RipProtocol(net.node(0), RngStreams(1), config)
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        proto.handle_message(
            DistanceVectorUpdate(routes=((9, config.infinity),)), from_node=1
        )
        sim.run(until=1.0)
        assert 9 in dict(proto._full_table_view(1))  # poisoned, still advertised
        sim.run(until=10.0)
        assert 9 not in dict(proto._full_table_view(1))  # collected
