"""Property-based invariant tests for the routing protocols.

Hypothesis drives random message sequences / topologies / failures and
checks the safety properties the experiment harness relies on:

* a BGP speaker never installs a best path containing itself, and its FIB
  next hop is always a live neighbor;
* DBF's table always equals one Bellman-Ford step over its caches;
* after any single link failure on any small connected topology, the
  event-driven protocols (DBF/BGP/SPF) reconverge to correct shortest paths.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net.dynamics import LinkScheduler
from repro.routing.bgp import BgpConfig, BgpProtocol
from repro.routing.dbf import DbfProtocol
from repro.routing.messages import (
    DistanceVectorUpdate,
    PathVectorUpdate,
    PathVectorWithdrawal,
)
from repro.routing.rib import PathAttr, best_vector_choice
from repro.sim.rng import RngStreams
from repro.topology import generators
from repro.topology.graph import Topology

from ..conftest import build_network, metrics_match_shortest_paths

FAST_BGP = BgpConfig(mrai_base=0.2, mrai_jitter=0.0)

# Strategy: a random BGP event from one of two neighbors (1 or 2) about
# destinations 5-8, with loop-free-or-not paths over nodes 3-9.
_paths = st.lists(
    st.integers(min_value=1, max_value=9), min_size=1, max_size=4, unique=True
)


@st.composite
def bgp_events(draw):
    neighbor = draw(st.sampled_from([1, 2]))
    dest = draw(st.integers(min_value=5, max_value=8))
    if draw(st.booleans()):
        middle = draw(_paths)
        nodes = [neighbor] + [n for n in middle if n not in (neighbor, dest, 0)] + [dest]
        # De-duplicate while keeping order.
        seen: list[int] = []
        for n in nodes:
            if n not in seen:
                seen.append(n)
        return ("announce", neighbor, PathVectorUpdate(path=PathAttr.of(tuple(seen)), dests=(dest,)))
    return ("withdraw", neighbor, PathVectorWithdrawal(dests=(dest,)))


class TestBgpInvariants:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(events=st.lists(bgp_events(), max_size=25))
    def test_best_path_never_contains_self_and_next_hop_is_neighbor(self, events):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = BgpProtocol(net.node(0), RngStreams(1), net, FAST_BGP)
        proto.start()
        for kind, neighbor, payload in events:
            proto.handle_message(payload, from_node=neighbor)
            for dest, best in proto.best.items():
                assert not best.contains(0)
                assert best.first_hop in (1, 2)
                assert net.node(0).next_hop(dest) == best.first_hop
            # FIB and best agree on unreachability too.
            for dest in (5, 6, 7, 8):
                if dest not in proto.best:
                    assert net.node(0).next_hop(dest) is None

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(events=st.lists(bgp_events(), max_size=25))
    def test_best_is_minimum_over_rib_in(self, events):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = BgpProtocol(net.node(0), RngStreams(1), net, FAST_BGP)
        proto.start()
        for kind, neighbor, payload in events:
            proto.handle_message(payload, from_node=neighbor)
        for dest in (5, 6, 7, 8):
            candidates = [
                proto.rib_in[nbr][dest]
                for nbr in proto.rib_in
                if dest in proto.rib_in[nbr]
            ]
            expected = min(candidates, key=PathAttr.preference_key, default=None)
            assert proto.best.get(dest) == expected


@st.composite
def dv_events(draw):
    neighbor = draw(st.sampled_from([1, 2]))
    dest = draw(st.integers(min_value=5, max_value=8))
    metric = draw(st.integers(min_value=0, max_value=20))
    return (neighbor, dest, metric)


class TestDbfInvariants:
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(events=st.lists(dv_events(), max_size=30))
    def test_table_equals_bellman_ford_over_cache(self, events):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = DbfProtocol(net.node(0), RngStreams(1))
        proto.start()
        for neighbor, dest, metric in events:
            proto.handle_message(
                DistanceVectorUpdate(routes=((dest, metric),)), from_node=neighbor
            )
        for dest in (5, 6, 7, 8):
            metric, nbr = best_vector_choice(
                proto.cache, dest, proto.link_costs(), infinity=proto.config.infinity
            )
            assert proto.route_metric(dest) == (None if nbr is None else metric)
            assert net.node(0).next_hop(dest) == nbr


def _random_connected_topology(draw) -> Topology:
    n = draw(st.integers(min_value=4, max_value=8))
    topo = generators.ring(n)  # connectivity backbone
    extra = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=6,
        )
    )
    for a, b in extra:
        if a != b and not topo.has_link(a, b):
            topo.connect(a, b)
    return topo


@st.composite
def topologies(draw):
    return _random_connected_topology(draw)


class TestReconvergenceFuzz:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(topo=topologies(), edge_idx=st.integers(min_value=0, max_value=1000), data=st.integers())
    @pytest.mark.parametrize("protocol", ["dbf", "bgp", "spf", "dual"])
    def test_single_failure_reconverges_to_shortest_paths(self, protocol, topo, edge_idx, data):
        edges = sorted(topo.links)
        a, b = edges[edge_idx % len(edges)]
        survivor = topo.copy("survivor")
        del survivor.links[(a, b)]
        if not survivor.is_connected():
            return  # disconnection handled in dedicated tests

        sim, net, _ = build_network(topo, protocol, bgp_config=FAST_BGP)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(a, b, at=1.0)
        sim.run(until=60.0)

        import networkx as nx

        lengths = dict(
            nx.all_pairs_dijkstra_path_length(survivor.to_networkx(), weight="weight")
        )
        for node in net.iter_nodes():
            for dest in topo.nodes:
                if dest == node.id:
                    continue
                assert node.protocol.route_metric(dest) == lengths[node.id][dest], (
                    f"{protocol}: node {node.id} metric to {dest} after failing ({a},{b})"
                )
