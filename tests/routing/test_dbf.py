"""Behavioral tests for DBF (distance vector with alternate-path cache)."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.routing.dbf import DbfProtocol
from repro.routing.dv_common import DistanceVectorConfig
from repro.routing.messages import DistanceVectorUpdate
from repro.sim.rng import RngStreams
from repro.topology import generators
from repro.topology.graph import Topology

from ..conftest import build_network, metrics_match_shortest_paths


def diamond() -> Topology:
    """0-1, 0-2, 1-3, 2-3: two disjoint equal-cost paths from 0 to 3."""
    topo = Topology("diamond")
    for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
        topo.connect(a, b)
    return topo


class TestColdConvergence:
    def test_line_converges(self):
        sim, net, _ = build_network(generators.line(4), "dbf")
        net.start_protocols()
        sim.run(until=40.0)
        assert metrics_match_shortest_paths(net)

    def test_diamond_converges(self):
        sim, net, _ = build_network(diamond(), "dbf")
        net.start_protocols()
        sim.run(until=40.0)
        assert metrics_match_shortest_paths(net)

    def test_mesh_converges(self):
        from repro.topology.mesh import regular_mesh

        sim, net, _ = build_network(regular_mesh(3, 3, 5), "dbf")
        net.start_protocols()
        sim.run(until=60.0)
        assert metrics_match_shortest_paths(net)


class TestInstantSwitchOver:
    def test_zero_time_path_switch_over(self):
        """The paper's defining DBF property: on failure detection, the router
        switches to a cached alternate in the same instant."""
        topo = diamond()
        sim, net, _ = build_network(topo, "dbf")
        bus = net.bus
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        assert net.node(0).next_hop(3) == 1  # tie-break: lowest neighbor
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=10.0)
        sim.run(until=10.051)
        # Switched at the detection instant, not a periodic interval later.
        assert net.node(0).next_hop(3) == 2
        changes = [
            r for r in bus.route_changes if r.node == 0 and r.dest == 3
        ]
        assert changes[-1].time == pytest.approx(10.05)

    def test_alternate_respects_poison_reverse(self):
        """A neighbor that routes through us advertises infinity, so it is
        never chosen as the alternate (two-hop loop prevention)."""
        topo = generators.line(3)  # 0-1-2
        sim, net, _ = build_network(topo, "dbf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        proto1 = net.node(1).protocol
        # Node 0 routes to 2 through node 1, so its cached advert is poisoned.
        assert proto1.cache.advertised(0, 2) == proto1.config.infinity
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 2, at=5.0)
        sim.run(until=6.0)
        assert net.node(1).next_hop(2) is None  # no valid alternate exists


class TestCacheSemantics:
    def test_cache_stores_raw_advertised_metric(self):
        sim, net, _ = build_network(generators.line(2), "none")
        proto = DbfProtocol(net.node(0), RngStreams(1))
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 3),)), from_node=1)
        assert proto.cache.advertised(1, 9) == 3
        assert proto.route_metric(9) == 4  # +1 link cost

    def test_infinity_advert_cached_not_distorted(self):
        sim, net, _ = build_network(generators.line(2), "none")
        proto = DbfProtocol(net.node(0), RngStreams(1))
        proto.start()
        inf = proto.config.infinity
        proto.handle_message(DistanceVectorUpdate(routes=((9, inf),)), from_node=1)
        assert proto.cache.advertised(1, 9) == inf
        assert proto.route_metric(9) is None

    def test_reselect_picks_next_best_after_worsening(self):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = DbfProtocol(net.node(0), RngStreams(1))
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        proto.handle_message(DistanceVectorUpdate(routes=((9, 2),)), from_node=2)
        assert proto.node.next_hop(9) == 1
        # Current best worsens past the cached alternate: switch immediately.
        proto.handle_message(DistanceVectorUpdate(routes=((9, 7),)), from_node=1)
        assert proto.node.next_hop(9) == 2
        assert proto.route_metric(9) == 3

    def test_neighbor_loss_forgets_cache(self):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = DbfProtocol(net.node(0), RngStreams(1))
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        net.link(0, 1).fail()
        proto.handle_link_down(1)
        assert proto.cache.advertised(1, 9) == proto.config.infinity
        assert proto.route_metric(9) is None


class TestCountingToNextBest:
    def test_counts_to_next_best_not_infinity(self):
        """Paper §6: with redundant connectivity, a distance-vector protocol
        counts to the next-best path instead of counting to infinity."""
        # Ring of 5: after (0, 1) fails, 0's path to 1 is the long way round.
        topo = generators.ring(5)
        sim, net, _ = build_network(topo, "dbf")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=10.0)
        sim.run(until=60.0)
        assert net.node(0).protocol.route_metric(1) == 4
        assert net.node(0).next_hop(1) == 4

    def test_disconnection_counts_to_infinity_and_stops(self):
        config = DistanceVectorConfig(infinity=16)
        topo = generators.line(3)
        sim, net, _ = build_network(topo, "dbf", dv_config=config)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=10.0)
        sim.run(until=120.0)
        assert net.node(0).protocol.route_metric(2) is None
        assert net.node(2).protocol.route_metric(0) is None
