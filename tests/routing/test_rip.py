"""Behavioral tests for RIP (best-route-only distance vector)."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.routing.dv_common import DistanceVectorConfig
from repro.routing.messages import DistanceVectorUpdate
from repro.routing.rip import RipProtocol
from repro.sim.rng import RngStreams
from repro.topology import generators

from ..conftest import build_network, metrics_match_shortest_paths


class TestColdConvergence:
    def test_line_converges_to_shortest_paths(self):
        sim, net, _ = build_network(generators.line(4), "rip")
        net.start_protocols()
        sim.run(until=40.0)
        assert metrics_match_shortest_paths(net)

    def test_ring_converges(self):
        sim, net, _ = build_network(generators.ring(5), "rip")
        net.start_protocols()
        sim.run(until=40.0)
        assert metrics_match_shortest_paths(net)

    def test_mesh_converges(self):
        from repro.topology.mesh import regular_mesh

        sim, net, _ = build_network(regular_mesh(3, 3, 4), "rip")
        net.start_protocols()
        sim.run(until=60.0)
        assert metrics_match_shortest_paths(net)


class TestPoisonReverse:
    def test_routes_via_receiver_advertised_as_infinity(self):
        sim, net, _ = build_network(generators.line(3), "rip")
        net.start_protocols()
        sim.run(until=40.0)
        proto0 = net.node(0).protocol
        # Node 0 routes to 2 via 1; its advertisement to 1 must poison dest 2.
        assert proto0._advertised_metric(2, 1) == proto0.config.infinity
        # ...but not to other neighbors (none here) / for other dests.
        assert proto0._advertised_metric(0, 1) == 0


class TestFailureResponse:
    def test_no_alternate_path_until_periodic_update(self):
        """The paper's §4.1: RIP keeps no alternates, so after a failure the
        route stays dead until another neighbor's periodic update arrives."""
        # Square: 0-1, 1-3, 0-2, 2-3; traffic dest is 3.
        topo = generators.ring(4)  # 0-1-2-3-0
        sim, net, _ = build_network(topo, "rip")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        # Node 0 reaches 2 via 1 (tie-break); fail (0, 1).
        assert net.node(0).next_hop(2) == 1
        injector.fail_link(0, 1, at=10.0)
        sim.run(until=10.2)
        # Immediately after detection: no route (RIP has no cache).
        assert net.node(0).next_hop(2) is None
        sim.run(until=50.0)
        # A periodic update from node 3 eventually restores reachability.
        assert net.node(0).next_hop(2) == 3

    def test_link_down_poisons_routes_through_dead_neighbor(self):
        topo = generators.line(3)
        sim, net, _ = build_network(topo, "rip")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 2, at=5.0)
        sim.run(until=6.0)
        # 1 lost its only path to 2; 0 learns via 1's triggered poison.
        assert net.node(1).protocol.route_metric(2) is None
        assert net.node(0).protocol.route_metric(2) is None

    def test_triggered_poison_propagates_fast(self):
        topo = generators.line(5)
        sim, net, _ = build_network(topo, "rip")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(3, 4, at=5.0)
        sim.run(until=5.5)  # well before any periodic interval
        assert net.node(0).protocol.route_metric(4) is None


class TestRouteAging:
    def test_unrefreshed_route_times_out(self):
        config = DistanceVectorConfig(route_timeout=40.0, garbage_collect=10.0)
        sim, net, rng = build_network(generators.line(2), "none")
        proto = RipProtocol(net.node(0), RngStreams(1), config)
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        assert proto.route_metric(9) == 2
        sim.run(until=39.0)
        assert proto.route_metric(9) == 2
        sim.run(until=45.0)
        assert proto.route_metric(9) is None

    def test_refresh_resets_timeout(self):
        config = DistanceVectorConfig(route_timeout=40.0, garbage_collect=10.0)
        sim, net, _ = build_network(generators.line(2), "none")
        proto = RipProtocol(net.node(0), RngStreams(1), config)
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        sim.schedule_at(30.0, lambda: proto.handle_message(
            DistanceVectorUpdate(routes=((9, 1),)), from_node=1
        ))
        sim.run(until=60.0)
        assert proto.route_metric(9) == 2  # refreshed at t=30, expires at 70
        sim.run(until=75.0)
        assert proto.route_metric(9) is None

    def test_poisoned_route_garbage_collected(self):
        config = DistanceVectorConfig(route_timeout=40.0, garbage_collect=5.0)
        sim, net, _ = build_network(generators.line(2), "none")
        proto = RipProtocol(net.node(0), RngStreams(1), config)
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        proto.handle_message(
            DistanceVectorUpdate(routes=((9, config.infinity),)), from_node=1
        )
        assert proto.route_metric(9) is None
        assert 9 in proto.table  # poisoned, not yet collected
        sim.run(until=6.0)
        assert 9 not in proto.table


class TestRouteSelection:
    def test_update_from_current_next_hop_always_adopted(self):
        sim, net, _ = build_network(generators.line(2), "none")
        proto = RipProtocol(net.node(0), RngStreams(1))
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        assert proto.route_metric(9) == 2
        # Same next hop reports a worse metric: adopt it (count up).
        proto.handle_message(DistanceVectorUpdate(routes=((9, 5),)), from_node=1)
        assert proto.route_metric(9) == 6

    def test_worse_route_from_other_neighbor_ignored(self):
        sim, net, _ = build_network(generators.star(2), "none")  # hub 0, leaves 1,2
        proto = RipProtocol(net.node(0), RngStreams(1))
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        proto.handle_message(DistanceVectorUpdate(routes=((9, 5),)), from_node=2)
        assert proto.route_metric(9) == 2
        assert proto.node.next_hop(9) == 1

    def test_better_route_from_other_neighbor_adopted(self):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = RipProtocol(net.node(0), RngStreams(1))
        proto.start()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 5),)), from_node=1)
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=2)
        assert proto.route_metric(9) == 2
        assert proto.node.next_hop(9) == 2

    def test_infinity_advert_for_unknown_dest_ignored(self):
        sim, net, _ = build_network(generators.line(2), "none")
        proto = RipProtocol(net.node(0), RngStreams(1))
        proto.start()
        proto.handle_message(
            DistanceVectorUpdate(routes=((9, proto.config.infinity),)), from_node=1
        )
        assert 9 not in proto.table


class TestTriggeredUpdateDamping:
    def test_consecutive_triggered_updates_are_spaced(self, bus):
        sim, net, _ = build_network(generators.line(2), "none")
        bus = net.bus
        proto = RipProtocol(net.node(0), RngStreams(1))
        proto.start()
        proto._periodic.stop()  # isolate triggered updates from periodic ones
        # Two changes in quick succession.
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        sim.run(until=0.1)
        proto.handle_message(DistanceVectorUpdate(routes=((8, 1),)), from_node=1)
        sim.run(until=10.0)
        triggered = [
            m for m in bus.messages if m.protocol == "rip" and m.sender == 0
        ]
        assert len(triggered) >= 2
        gap = triggered[1].time - triggered[0].time
        assert 1.0 - 1e-9 <= gap  # damping timer is U(1, 5)
