"""Link-flapping coverage: repeated fail/restore cycles under every family.

The paper's experiment perturbs the mesh exactly once.  These tests drive
the same harness through N fail/restore cycles of the on-path link (via a
``driver_factory`` returning a :class:`~repro.net.dynamics.ScriptedDriver`)
and check that the core invariants survive sustained churn:

* packet conservation holds (every packet delivered or dropped once);
* loop-free protocols stay loop-free through every wave;
* at quiescence — the link ends restored, so the final graph is the
  original mesh — every protocol's route metrics agree with the SPF
  differential oracle.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario
from repro.net.dynamics import LinkEvent, ScriptedDriver
from repro.validation.monitors import (
    LOOP_FREE_PROTOCOLS,
    MonitorSuite,
    RibConsistencyMonitor,
)
from repro.validation.oracle import _oracle_costs, _snapshot_metrics

PROTOCOLS = ("rip", "dbf", "bgp3", "spf", "dual")
CYCLES = 3

CONFIG = ExperimentConfig.quick().with_(
    rows=5, cols=5, runs=1, post_fail_window=60.0
)


def flapping_driver(plan):
    """N fail/restore cycles of the planned link, ending restored."""
    a, b = plan.failed
    events = []
    for cycle in range(CYCLES):
        events.append(LinkEvent("fail", a, b, plan.fail_at + 6.0 * cycle))
        events.append(LinkEvent("restore", a, b, plan.fail_at + 6.0 * cycle + 3.0))
    return ScriptedDriver(tuple(events))


def run_flapping(protocol, seed=7):
    suite = MonitorSuite()
    result = run_scenario(
        protocol, 4, seed, CONFIG, monitors=suite, driver_factory=flapping_driver
    )
    return result, suite


class TestFlapping:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_all_cycles_executed_and_link_ends_up(self, protocol):
        result, suite = run_flapping(protocol)
        assert len(result.events) == 2 * CYCLES
        assert [e.kind for e in result.events] == ["fail", "restore"] * CYCLES
        ctx = suite.context
        assert ctx is not None
        a, b = result.events[0].link
        assert ctx.network.link(a, b).up

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_packet_conservation_through_churn(self, protocol):
        result, _ = run_flapping(protocol)
        conservation = [
            v for v in result.violations if v.startswith("[packet-conservation")
        ]
        assert conservation == []
        assert result.delivered + result.total_drops <= result.sent

    @pytest.mark.parametrize("protocol", sorted(LOOP_FREE_PROTOCOLS & set(PROTOCOLS)))
    def test_loop_free_protocols_stay_loop_free(self, protocol):
        result, suite = run_flapping(protocol)
        loops = [v for v in result.violations if v.startswith("[fib-loop")]
        assert loops == []
        assert "fib-loop" not in suite.skips

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_oracle_agreement_at_quiescence(self, protocol):
        """After the last restore the graph is the original mesh again, so
        every protocol must converge back to the all-links-up SPF costs."""
        result, suite = run_flapping(protocol)
        rib = next(
            m for m in suite.monitors if isinstance(m, RibConsistencyMonitor)
        )
        assert rib.skipped is None, f"did not quiesce: {rib.skipped}"
        ctx = suite.context
        assert ctx is not None
        actual = _snapshot_metrics(ctx.network)
        expected = _oracle_costs(suite)
        mismatches = [
            (node, dest, row[dest], expected[node][dest])
            for node, row in sorted(actual.items())
            for dest in sorted(row)
            if row[dest] != expected[node][dest]
        ]
        assert mismatches == []

    def test_per_event_waves_attributed(self):
        result, _ = run_flapping("spf")
        assert len(result.events) == 2 * CYCLES
        # The first failure must cause routing activity; every wave window
        # that saw activity carries a consistent [start, end] interval.
        assert result.events[0].wave_start is not None
        for event in result.events:
            if event.wave_start is not None:
                assert event.wave_end is not None
                assert event.wave_start >= event.detect_time
                assert event.wave_end >= event.wave_start
