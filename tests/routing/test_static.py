"""Tests for the static-routing baseline."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.topology import generators

from ..conftest import build_network, metrics_match_shortest_paths


class TestStatic:
    def test_installs_shortest_paths(self):
        topo = generators.ring(5)
        sim, net, _ = build_network(topo, "static")
        net.start_protocols()
        assert metrics_match_shortest_paths(net)

    def test_never_adapts_to_failure(self):
        topo = generators.ring(5)
        sim, net, _ = build_network(topo, "static")
        net.start_protocols()
        before = net.node(0).next_hop(2)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=5.0)
        sim.run(until=20.0)
        assert net.node(0).next_hop(2) == before

    def test_exchanges_no_messages(self):
        topo = generators.line(3)
        sim, net, _ = build_network(topo, "static")
        net.start_protocols()
        sim.run(until=60.0)
        assert net.bus.messages == []
        with pytest.raises(TypeError):
            net.node(0).protocol.handle_message(None, 1)
