"""Behavioral tests for the path-vector protocol (BGP / BGP-3)."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.routing.bgp import BgpConfig, BgpProtocol
from repro.routing.messages import PathVectorUpdate, PathVectorWithdrawal
from repro.routing.rib import PathAttr
from repro.sim.rng import RngStreams
from repro.topology import generators
from repro.topology.graph import Topology

from ..conftest import build_network, metrics_match_shortest_paths

FAST = BgpConfig(mrai_base=0.2, mrai_jitter=0.0, label="bgp")


def diamond() -> Topology:
    topo = Topology("diamond")
    for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
        topo.connect(a, b)
    return topo


class TestColdConvergence:
    @pytest.mark.parametrize("topo_factory", [lambda: generators.line(4), diamond, lambda: generators.ring(5)])
    def test_converges_to_shortest_paths(self, topo_factory):
        sim, net, _ = build_network(topo_factory(), "bgp", bgp_config=FAST)
        net.start_protocols()
        sim.run(until=30.0)
        assert metrics_match_shortest_paths(net)

    def test_mesh_converges(self):
        from repro.topology.mesh import regular_mesh

        sim, net, _ = build_network(regular_mesh(3, 3, 4), "bgp", bgp_config=FAST)
        net.start_protocols()
        sim.run(until=60.0)
        assert metrics_match_shortest_paths(net)

    def test_no_refresh_needed_after_convergence(self):
        """BGP advertises once over the reliable session; long quiet periods
        must not lose routes (no periodic refresh, no timeout)."""
        sim, net, _ = build_network(generators.line(3), "bgp", bgp_config=FAST)
        net.start_protocols()
        sim.run(until=500.0)
        assert metrics_match_shortest_paths(net)


class TestLoopPrevention:
    def test_path_containing_self_treated_as_withdrawal(self):
        sim, net, _ = build_network(generators.line(3), "bgp", bgp_config=FAST)
        net.start_protocols()
        sim.run(until=10.0)
        proto1 = net.node(1).protocol
        # Node 0's advertisement of a path through node 1 must not be cached.
        assert 2 not in proto1.rib_in[0] or not proto1.rib_in[0][2].contains(1)

    def test_looped_update_removes_previous_path(self):
        sim, net, _ = build_network(generators.line(2), "none")
        proto = BgpProtocol(net.node(0), RngStreams(1), net, FAST)
        proto.start()
        sim.run()
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        assert proto.route_metric(9) == 2
        # Same neighbor now reports a path that loops through us.
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 0, 9)), dests=(9,)), from_node=1
        )
        assert proto.route_metric(9) is None


class TestSelection:
    def test_shortest_path_preferred(self):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = BgpProtocol(net.node(0), RngStreams(1), net, FAST)
        proto.start()
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 8, 9)), dests=(9,)), from_node=1
        )
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((2, 9)), dests=(9,)), from_node=2
        )
        assert proto.node.next_hop(9) == 2
        assert proto.route_metric(9) == 2

    def test_tie_breaks_by_lowest_neighbor(self):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = BgpProtocol(net.node(0), RngStreams(1), net, FAST)
        proto.start()
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((2, 9)), dests=(9,)), from_node=2
        )
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        assert proto.node.next_hop(9) == 1

    def test_withdrawal_falls_back_to_alternate(self):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = BgpProtocol(net.node(0), RngStreams(1), net, FAST)
        proto.start()
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((2, 9)), dests=(9,)), from_node=2
        )
        assert proto.node.next_hop(9) == 1
        proto.handle_message(PathVectorWithdrawal(dests=(9,)), from_node=1)
        assert proto.node.next_hop(9) == 2


class TestMrai:
    def _two_neighbor_speaker(self):
        sim, net, _ = build_network(generators.star(2), "none")
        bus = net.bus
        proto = BgpProtocol(
            net.node(0), RngStreams(1), net, BgpConfig(mrai_base=10.0, mrai_jitter=0.0)
        )
        # Leaves need speakers so channels can deliver.
        BgpProtocol(net.node(1), RngStreams(2), net, FAST)
        BgpProtocol(net.node(2), RngStreams(3), net, FAST)
        proto.start()
        # start() announces the self route, arming MRAI for 10 s; let that
        # initial timer drain so the tests begin from a quiet steady state.
        sim.run(until=12.0)
        return sim, net, bus, proto

    def test_second_change_held_by_mrai(self):
        sim, net, bus, proto = self._two_neighbor_speaker()
        # First learned route: announced immediately, arming MRAI.
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        t_first = sim.now
        sim.run(until=14.0)
        # Change: the route lengthens; the re-announcement toward neighbor 2
        # must wait for MRAI expiry.
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((2, 7, 9)), dests=(9,)), from_node=2
        )
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 7, 9)), dests=(9,)), from_node=1
        )
        sim.run(until=40.0)
        route9 = [
            m
            for m in bus.messages
            if m.sender == 0
            and m.receiver == 2
            and not m.is_withdrawal
            and m.time >= t_first
        ]
        assert len(route9) >= 2
        assert route9[0].time == pytest.approx(t_first)
        assert route9[1].time - route9[0].time >= 10.0 - 1e-9

    def test_withdrawals_exempt_from_mrai(self):
        sim, net, bus, proto = self._two_neighbor_speaker()
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        sim.run(until=14.0)
        # Route dies entirely: the withdrawal must go out immediately even
        # though MRAI timers are armed.
        proto.handle_message(PathVectorWithdrawal(dests=(9,)), from_node=1)
        withdrawals = [m for m in bus.messages if m.sender == 0 and m.is_withdrawal]
        assert withdrawals
        assert withdrawals[-1].time == pytest.approx(sim.now)

    def test_per_destination_mrai_does_not_block_other_dests(self):
        sim, net, _ = build_network(generators.star(2), "none")
        bus = net.bus
        cfg = BgpConfig(mrai_base=10.0, mrai_jitter=0.0, per_destination_mrai=True)
        proto = BgpProtocol(net.node(0), RngStreams(1), net, cfg)
        BgpProtocol(net.node(1), RngStreams(2), net, FAST)
        BgpProtocol(net.node(2), RngStreams(3), net, FAST)
        proto.start()
        sim.run(until=1.0)
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        t0 = sim.now
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 8)), dests=(8,)), from_node=1
        )
        sim.run(until=5.0)
        ann = [
            m
            for m in bus.messages
            if m.sender == 0 and m.receiver == 2 and not m.is_withdrawal and m.time >= t0
        ]
        # Both destinations announced promptly (within the same event burst
        # window), none blocked behind the other's MRAI.
        assert len(ann) >= 2
        assert ann[1].time - ann[0].time < 1.0


class TestFailureResponse:
    def test_instant_switch_to_cached_alternate(self):
        topo = diamond()
        sim, net, _ = build_network(topo, "bgp", bgp_config=FAST)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        assert net.node(0).next_hop(3) == 1
        injector.fail_link(0, 1, at=10.0)
        sim.run(until=10.051)
        assert net.node(0).next_hop(3) == 2

    def test_session_state_flushed_on_link_down(self):
        topo = diamond()
        sim, net, _ = build_network(topo, "bgp", bgp_config=FAST)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=10.0)
        sim.run(until=11.0)
        proto0 = net.node(0).protocol
        assert 1 not in proto0.rib_in
        assert 1 not in proto0._channels

    def test_network_reconverges_after_failure(self):
        topo = diamond()
        sim, net, _ = build_network(topo, "bgp", bgp_config=FAST)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 3, at=10.0)
        sim.run(until=60.0)
        # All routes must avoid the dead link and be shortest in the new graph.
        assert net.node(0).next_hop(3) == 2
        assert net.node(1).next_hop(3) == 0
        assert net.node(1).protocol.route_metric(3) == 3

    def test_total_disconnection_withdraws_everywhere(self):
        topo = generators.line(3)
        sim, net, _ = build_network(topo, "bgp", bgp_config=FAST)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 2, at=10.0)
        sim.run(until=30.0)
        assert net.node(0).protocol.route_metric(2) is None
        assert net.node(1).protocol.route_metric(2) is None
