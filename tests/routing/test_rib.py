"""Unit + property tests for RIB structures."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.routing.rib import (
    RIP_INFINITY,
    DistanceVectorRoute,
    NeighborVectorCache,
    PathAttr,
    best_vector_choice,
)


class TestDistanceVectorRoute:
    def test_reachable(self):
        assert DistanceVectorRoute(5, 3, 2).reachable
        assert not DistanceVectorRoute(5, RIP_INFINITY, None).reachable
        assert not DistanceVectorRoute(5, 3, None).reachable


class TestNeighborVectorCache:
    def test_learn_and_advertised(self):
        cache = NeighborVectorCache()
        cache.learn(1, 9, 4)
        assert cache.advertised(1, 9) == 4

    def test_unknown_is_infinity(self):
        cache = NeighborVectorCache()
        assert cache.advertised(1, 9) == RIP_INFINITY

    def test_metrics_clamped_to_infinity(self):
        cache = NeighborVectorCache()
        cache.learn(1, 9, 99)
        assert cache.advertised(1, 9) == RIP_INFINITY

    def test_forget_neighbor(self):
        cache = NeighborVectorCache()
        cache.learn(1, 9, 4)
        cache.forget_neighbor(1)
        assert cache.advertised(1, 9) == RIP_INFINITY
        assert cache.neighbors() == []

    def test_known_destinations(self):
        cache = NeighborVectorCache()
        cache.learn(1, 9, 4)
        cache.learn(2, 8, 3)
        assert cache.known_destinations() == {8, 9}


class TestBestVectorChoice:
    def test_picks_minimum_metric(self):
        cache = NeighborVectorCache()
        cache.learn(1, 9, 4)
        cache.learn(2, 9, 2)
        metric, nbr = best_vector_choice(cache, 9, {1: 1, 2: 1})
        assert (metric, nbr) == (3, 2)

    def test_tie_breaks_by_lowest_neighbor(self):
        cache = NeighborVectorCache()
        cache.learn(5, 9, 2)
        cache.learn(3, 9, 2)
        metric, nbr = best_vector_choice(cache, 9, {3: 1, 5: 1})
        assert nbr == 3

    def test_excluded_neighbors_ignored(self):
        cache = NeighborVectorCache()
        cache.learn(1, 9, 1)
        cache.learn(2, 9, 5)
        metric, nbr = best_vector_choice(cache, 9, {2: 1})  # link to 1 is down
        assert nbr == 2

    def test_all_infinity_unreachable(self):
        cache = NeighborVectorCache()
        cache.learn(1, 9, RIP_INFINITY)
        metric, nbr = best_vector_choice(cache, 9, {1: 1})
        assert (metric, nbr) == (RIP_INFINITY, None)

    def test_link_cost_added(self):
        cache = NeighborVectorCache()
        cache.learn(1, 9, 2)
        metric, nbr = best_vector_choice(cache, 9, {1: 5})
        assert metric == 7

    @given(
        metrics=st.dictionaries(
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=0, max_value=20),
            min_size=1,
            max_size=8,
        )
    )
    def test_property_result_is_true_minimum(self, metrics):
        cache = NeighborVectorCache()
        for nbr, m in metrics.items():
            cache.learn(nbr, 99, m)
        costs = {nbr: 1 for nbr in metrics}
        metric, nbr = best_vector_choice(cache, 99, costs)
        candidates = [min(m, RIP_INFINITY) + 1 for m in metrics.values()]
        true_min = min(candidates)
        if true_min >= RIP_INFINITY:
            assert nbr is None
        else:
            assert metric == true_min
            assert nbr == min(
                n for n, m in metrics.items() if min(m, RIP_INFINITY) + 1 == true_min
            )


class TestPathAttr:
    def test_basic_properties(self):
        p = PathAttr.of((3, 5, 9))
        assert p.dest == 9
        assert p.first_hop == 3
        assert len(p) == 3
        assert p.contains(5)
        assert not p.contains(4)

    def test_prepend(self):
        p = PathAttr.of((3, 9)).prepend(1)
        assert p.nodes == (1, 3, 9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PathAttr.of(())

    def test_repeated_node_rejected(self):
        with pytest.raises(ValueError):
            PathAttr.of((1, 2, 1))

    def test_preference_shorter_wins(self):
        short = PathAttr.of((9, 5))
        long = PathAttr.of((2, 3, 5))
        assert min([long, short], key=PathAttr.preference_key) is short

    def test_preference_tie_breaks_on_first_hop(self):
        a = PathAttr.of((2, 5))
        b = PathAttr.of((3, 5))
        assert min([b, a], key=PathAttr.preference_key) is a

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=10, unique=True))
    def test_property_prepend_extends_length(self, nodes):
        p = PathAttr.of(tuple(nodes))
        new_node = max(nodes) + 1
        q = p.prepend(new_node)
        assert len(q) == len(p) + 1
        assert q.first_hop == new_node
        assert q.dest == p.dest
