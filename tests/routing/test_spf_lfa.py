"""Tests for SPF throttling and Loop-Free Alternate fast reroute."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.routing.spf import SpfConfig, SpfProtocol
from repro.sim.rng import RngStreams
from repro.topology import generators
from repro.topology.graph import Topology

from ..conftest import build_network


def diamond() -> Topology:
    topo = Topology("diamond")
    for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
        topo.connect(a, b)
    return topo


def build_spf(topo, config):
    from repro.net.network import Network
    from repro.sim.engine import Simulator
    from repro.sim.tracing import TraceBus

    sim = Simulator()
    bus = TraceBus(keep_routes=True)
    net = Network(sim, topo, bus)
    rng = RngStreams(1)
    net.attach_protocols(lambda node: SpfProtocol(node, rng, config))
    for node in net.iter_nodes():
        node.protocol.warm_start(topo)
    return sim, net


class TestSpfConfig:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SpfConfig(spf_delay=-1.0)

    def test_label_controls_name(self):
        sim, net = build_spf(diamond(), SpfConfig(label="spf-x"))
        assert net.node(0).protocol.name == "spf-x"


class TestSpfThrottling:
    def test_delayed_recompute(self):
        config = SpfConfig(spf_delay=2.0)
        topo = diamond()
        sim, net = build_spf(topo, config)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 3, at=10.0)
        sim.run(until=11.0)
        # Detection at 10.05, recompute throttled until 12.05: stale route.
        assert net.node(0).next_hop(3) == 1
        sim.run(until=13.0)
        assert net.node(0).next_hop(3) == 2

    def test_throttle_coalesces_recomputations(self):
        config = SpfConfig(spf_delay=2.0)
        topo = diamond()
        sim, net = build_spf(topo, config)
        proto = net.node(0).protocol
        before = proto.recomputations
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 3, at=10.0)
        sim.run(until=20.0)
        # Both endpoints' LSAs arrive within the throttle window -> 1 run.
        assert proto.recomputations == before + 1


class TestLfa:
    def test_backups_precomputed_on_diamond(self):
        config = SpfConfig(lfa=True)
        topo = diamond()
        sim, net = build_spf(topo, config)
        proto = net.node(0).protocol
        # 0's primary to 3 is via 1; neighbor 2 satisfies the LFA condition
        # (dist(2,3)=1 < dist(2,0)+dist(0,3)=1+2).
        assert net.node(0).next_hop(3) == 1
        assert proto.backups.get(3) == 2

    def test_instant_backup_activation_on_failure(self):
        config = SpfConfig(spf_delay=5.0, lfa=True)
        topo = diamond()
        sim, net = build_spf(topo, config)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=10.0)
        sim.run(until=10.1)
        # Recompute is throttled until ~15 s, but the LFA switched already.
        assert net.node(0).next_hop(3) == 2
        assert net.node(0).protocol.lfa_activations >= 1

    def test_no_backup_when_condition_fails(self):
        # Line 0-1-2: node 1's neighbor 0 routes to 2 through 1 itself,
        # violating the loop-free condition -> no backup.
        config = SpfConfig(lfa=True)
        sim, net = build_spf(generators.line(3), config)
        proto = net.node(1).protocol
        assert 2 not in proto.backups

    def test_backup_never_equals_primary(self):
        config = SpfConfig(lfa=True)
        from repro.topology.mesh import regular_mesh

        sim, net = build_spf(regular_mesh(4, 4, 6), config)
        for node in net.iter_nodes():
            proto = node.protocol
            for dest, backup in proto.backups.items():
                assert backup != node.next_hop(dest)
                assert backup in node.neighbors()

    def test_lfa_reduces_stale_route_drops_at_degree6(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario

        cfg = ExperimentConfig.quick().with_(post_fail_window=40.0)
        slow = run_scenario("spf-slow", 6, 1, cfg)
        lfa = run_scenario("spf-lfa", 6, 1, cfg)
        slow_stale = slow.drops_link_down + slow.drops_no_route
        lfa_stale = lfa.drops_link_down + lfa.drops_no_route
        assert lfa_stale < slow_stale
        assert lfa_stale <= 2  # only the in-flight packet dies
