"""Unit tests for OLSR: MPR selection, HELLO/TC exchange, expiry, retraction."""

from __future__ import annotations

from repro.net.dynamics import LinkScheduler
from repro.routing.olsr import OlsrConfig, OlsrProtocol, OlsrTc, select_mprs
from repro.topology import generators

from ..conftest import build_network, metrics_match_shortest_paths


class TestSelectMprs:
    def test_no_two_hop_neighbors_means_no_mprs(self):
        assert select_mprs(0, [1, 2], {1: set(), 2: set()}) == set()

    def test_sole_provider_is_forced(self):
        # Only neighbor 1 reaches 2-hop node 5.
        mprs = select_mprs(0, [1, 2], {1: {5}, 2: set()})
        assert mprs == {1}

    def test_greedy_prefers_max_coverage(self):
        # Neighbor 1 covers {4, 5, 6}; 2 and 3 cover one node each, already
        # covered by 1 — one relay suffices.
        two_hop = {1: {4, 5, 6}, 2: {4}, 3: {5}}
        assert select_mprs(0, [1, 2, 3], two_hop) == {1}

    def test_tie_breaks_to_smallest_id(self):
        two_hop = {1: {5}, 2: {5}}
        assert select_mprs(0, [1, 2], two_hop) == {1}

    def test_coverage_invariant_on_a_ring(self):
        topo = generators.ring(6)
        adj = {n: set(topo.neighbors(n)) for n in topo.nodes}
        for me in topo.nodes:
            two_hop = {n: adj[n] for n in adj[me]}
            mprs = select_mprs(me, adj[me], two_hop)
            strict_two_hop = set().union(*(adj[n] for n in adj[me])) - adj[me] - {me}
            covered = set().union(*(adj[m] for m in mprs)) if mprs else set()
            assert strict_two_hop <= covered


class TestConvergence:
    def test_cold_start_converges_to_shortest_paths(self):
        sim, net, _ = build_network(generators.ring(6), "olsr")
        net.start_protocols()
        sim.run(until=30.0)
        assert metrics_match_shortest_paths(net)

    def test_warm_start_matches_cold_converged_state(self):
        topo = generators.ring(6)
        sim, net, _ = build_network(topo, "olsr")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        assert metrics_match_shortest_paths(net)

    def test_tc_flooding_rides_the_mpr_backbone(self):
        sim, net, _ = build_network(generators.ring(8), "olsr")
        net.start_protocols()
        sim.run(until=30.0)
        # On a ring every node has exactly two 2-hop neighbors, each covered
        # by one distinct neighbor: everyone is an MPR, but forwards happen
        # only on behalf of selectors (no naive re-broadcast storm).
        total_forwards = sum(n.protocol.tc_forwards for n in net.iter_nodes())
        assert total_forwards > 0

    def test_reconverges_after_link_failure(self):
        topo = generators.ring(6)
        sim, net, _ = build_network(topo, "olsr")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.1)
        injector.fail_link(0, 1, at=5.0)
        sim.run(until=40.0)
        # The ring minus one edge is a line; routes must follow it.
        assert net.node(0).next_hop(1) == 5
        assert net.node(0).protocol.route_metric(1) == 5

    def test_two_hop_routes_come_from_hellos_alone(self):
        # A 3-node line: node 2's 2-hop set is empty, so it selects no MPRs
        # and appears in no TC — node 0 must still route to it via the
        # HELLO-derived 2-hop neighborhood (RFC 3626 section 10).
        sim, net, _ = build_network(generators.line(3), "olsr")
        net.start_protocols()
        sim.run(until=15.0)
        assert net.node(0).protocol.route_metric(2) == 2
        assert net.node(0).next_hop(2) == 1


class TestTopologyAging:
    def test_stale_tc_entries_expire(self):
        topo = generators.line(4)
        sim, net, _ = build_network(topo, "olsr")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        proto = net.node(0).protocol
        # Forge a TC from a ghost origin claiming an edge to node 9.
        proto._handle_tc(OlsrTc(origin=9, seq=1, selectors=(3,)), from_node=1)
        assert proto.route_metric(9) is not None
        hold = proto._hold_time()
        sim.run(until=hold + proto.config.hello_interval * 2 + 1.0)
        # No refresh ever came; the ghost edge aged out at the next recompute.
        assert proto.route_metric(9) is None

    def test_retraction_tc_clears_stale_edges_promptly(self):
        topo = generators.line(4)
        sim, net, _ = build_network(topo, "olsr")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        proto = net.node(1).protocol
        assert proto.mpr_selectors  # 1 relays for the line's endpoints
        proto.mpr_selectors.clear()
        before = proto._tc_seq
        sim.run(until=proto.config.tc_interval * 2)
        # Despite having no selectors, node 1 kept advertising (empty TCs)
        # so remote nodes drop its old edges without waiting for expiry.
        assert proto._tc_seq > before

    def test_duplicate_tc_seq_stops_the_flood(self):
        topo = generators.line(3)
        sim, net, _ = build_network(topo, "olsr")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        proto = net.node(0).protocol
        tc = OlsrTc(origin=9, seq=5, selectors=(2,))
        proto._handle_tc(tc, from_node=1)
        entry = proto._topo[9]
        proto._handle_tc(OlsrTc(origin=9, seq=4, selectors=()), from_node=1)
        assert proto._topo[9] == entry  # stale seq ignored


class TestConfig:
    def test_custom_label_propagates(self):
        sim, net, rng = build_network(generators.line(3), "none")
        net.attach_protocols(
            lambda node: OlsrProtocol(node, rng, OlsrConfig(label="olsr-fast"))
        )
        assert net.node(0).protocol.name == "olsr-fast"
