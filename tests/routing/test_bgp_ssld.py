"""Tests for BGP sender-side loop detection (SSLD ablation)."""

from __future__ import annotations

import pytest

from repro.routing.bgp import BgpConfig, BgpProtocol
from repro.routing.messages import PathVectorUpdate
from repro.routing.rib import PathAttr
from repro.sim.rng import RngStreams
from repro.topology import generators

from ..conftest import build_network, metrics_match_shortest_paths

SSLD = BgpConfig(
    mrai_base=0.2, mrai_jitter=0.0, sender_side_loop_detection=True, label="bgp-ssld"
)


class TestSsld:
    def test_does_not_announce_looping_path_to_on_path_neighbor(self):
        sim, net, _ = build_network(generators.line(3), "bgp", bgp_config=SSLD)
        net.start_protocols()
        sim.run(until=10.0)
        bus = net.bus
        # Node 1 routes to 2 via 2 directly; its best path to 2 is [2].  Node
        # 0's best path to 2 is [1, 2]; with SSLD node 0 never announces that
        # path to node 1 (it contains 1).
        proto1 = net.node(1).protocol
        assert 2 not in proto1.rib_in.get(0, {})

    def test_converges_identically_to_receiver_side(self):
        topo = generators.ring(5)
        sim, net, _ = build_network(topo, "bgp", bgp_config=SSLD)
        net.start_protocols()
        sim.run(until=30.0)
        assert metrics_match_shortest_paths(net)

    def test_ssld_sends_fewer_messages(self):
        def run(config):
            topo = generators.ring(5)
            sim, net, _ = build_network(topo, "bgp", bgp_config=config)
            net.start_protocols()
            sim.run(until=30.0)
            return sum(n.protocol.messages_sent for n in net.iter_nodes())

        plain = run(BgpConfig(mrai_base=0.2, mrai_jitter=0.0))
        ssld = run(SSLD)
        assert ssld < plain

    def test_warm_start_rib_out_consistent(self):
        topo = generators.ring(5)
        sim, net, _ = build_network(topo, "bgp", bgp_config=SSLD)
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        net.bus.route_changes.clear()
        net.bus.messages.clear()
        sim.run(until=60.0)
        # Quiet: warm rib_out matched what SSLD would actually have sent.
        assert net.bus.route_changes == []
        assert net.bus.messages == []

    def test_export_suppression_recorded_as_withdrawal_when_needed(self):
        """If a previously announced path changes to one containing the
        neighbor, SSLD withdraws it from that neighbor."""
        sim, net, _ = build_network(generators.star(2), "none")
        proto = BgpProtocol(net.node(0), RngStreams(1), net, SSLD)
        recorded = []

        class Peer:
            def __init__(self, node):
                self.node = node

            def handle_message(self, payload, from_node):
                recorded.append(payload)

            def apply_message(self, payload, from_node):
                self.handle_message(payload, from_node)

            def start(self):
                pass

        net.node(1).attach_protocol(Peer(net.node(1)))
        net.node(2).attach_protocol(Peer(net.node(2)))
        proto.start()
        sim.run(until=1.0)
        # Learn dest 9 via neighbor 2 -> announced to 1 (path [0,2,9]).
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((2, 9)), dests=(9,)), from_node=2
        )
        sim.run(until=2.0)
        assert 9 in proto.rib_out[1]
        # Best switches to a path through neighbor 1 -> SSLD must withdraw
        # dest 9 from neighbor 1 rather than announce the looping path.
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((2, 8, 9)), dests=(9,)), from_node=2
        )
        proto.handle_message(
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,)), from_node=1
        )
        sim.run(until=10.0)
        assert 9 not in proto.rib_out[1]
