"""Property tests for the MANET trio's core invariants.

Hypothesis drives randomized event interleavings through real protocol
instances (attached to a live network) and checks the invariants each
protocol's correctness argument rests on:

* **AODV** — sequence numbers are monotonic: a node's own seq never
  decreases, and no accepted route update ever lowers the recorded
  destination seq.  This is the RFC 3561 loop-freedom argument.
* **DSR** — the route cache agrees with a brute-force oracle: after any
  interleaving of path insertions and link poisonings, ``_best_path`` is
  exactly the (len, path)-minimal surviving cached path, and no surviving
  path crosses a poisoned link.
* **OLSR** — the greedy MPR heuristic covers every coverable strict 2-hop
  neighbor (RFC 3626 coverage criterion), on arbitrary neighborhoods.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.aodv import Rerr, Rrep, Rreq
from repro.routing.olsr import select_mprs
from repro.topology import generators

from ..conftest import build_network

# ----------------------------------------------------------------- AODV


def _aodv_node():
    _, net, _ = build_network(generators.ring(5), "aodv")
    net.start_protocols()
    return net.node(0).protocol


_aodv_events = st.lists(
    st.one_of(
        st.tuples(
            st.just("rreq"),
            st.integers(min_value=1, max_value=4),  # from neighbor 1 or 4 coerced below
            st.integers(min_value=0, max_value=4),  # dst
            st.integers(min_value=0, max_value=50),  # origin_seq
            st.integers(min_value=0, max_value=3),  # hop_count
        ),
        st.tuples(
            st.just("rrep"),
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=0, max_value=4),  # dst the reply describes
            st.integers(min_value=0, max_value=50),  # dest_seq
            st.integers(min_value=0, max_value=3),
        ),
        st.tuples(
            st.just("rerr"),
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=50),
            st.just(0),
        ),
    ),
    max_size=40,
)


@given(events=_aodv_events)
@settings(max_examples=60, deadline=None)
def test_aodv_sequence_numbers_are_monotonic(events):
    proto = _aodv_node()
    neighbors = (1, 4)  # ring(5): node 0's adjacencies
    own_seq = proto.seq
    route_seqs: dict[int, int] = {}
    rreq_id = 1000
    for kind, frm, dest, seq, hops in events:
        frm = neighbors[frm % 2]
        if kind == "rreq":
            rreq_id += 1
            proto.handle_message(
                Rreq(
                    origin=dest if dest != 0 else 1,
                    rreq_id=rreq_id,
                    dst=0,
                    origin_seq=seq,
                    dest_seq=0,
                    hop_count=hops,
                ),
                from_node=frm,
            )
        elif kind == "rrep":
            proto.handle_message(
                Rrep(origin=0, dst=dest, dest_seq=seq, hop_count=hops),
                from_node=frm,
            )
        else:
            proto.handle_message(
                Rerr(unreachable=((dest, seq),)), from_node=frm
            )
        assert proto.seq >= own_seq, "own sequence number went backwards"
        own_seq = proto.seq
        for d, route in proto.routes.items():
            prior = route_seqs.get(d)
            assert prior is None or route.seq >= prior, (
                f"route seq for dest {d} went backwards"
            )
            route_seqs[d] = route.seq


# ------------------------------------------------------------------ DSR


def _dsr_node():
    _, net, _ = build_network(generators.ring(5), "dsr")
    net.start_protocols()
    return net.node(0).protocol


def _prefixes(path):
    return [path[:end] for end in range(2, len(path) + 1)]


_dsr_paths = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=6), min_size=1, max_size=5, unique=True
    ).map(lambda tail: (0, *tail)),
    max_size=15,
)

_dsr_purges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6)
    ),
    max_size=8,
)


@given(paths=_dsr_paths, purges=_dsr_purges, interleave=st.randoms())
@settings(max_examples=60, deadline=None)
def test_dsr_cache_matches_brute_force_oracle(paths, purges, interleave):
    proto = _dsr_node()
    neighbors = {1, 4}  # ring(5): node 0's live first hops
    ops = [("add", p) for p in paths] + [("purge", uv) for uv in purges]
    interleave.shuffle(ops)

    oracle: set[tuple[int, ...]] = set()
    for op, arg in ops:
        if op == "add":
            proto._cache_path(arg)
            if len(arg) >= 2 and arg[0] == 0:
                oracle.update(_prefixes(arg))
        else:
            u, v = arg
            proto._purge_link(u, v)
            broken = {(u, v), (v, u)}
            oracle = {
                p
                for p in oracle
                if not any((p[i], p[i + 1]) in broken for i in range(len(p) - 1))
            }

    dests = {p[-1] for p in oracle} | set(range(7))
    for dest in dests:
        # The cache self-purges paths whose first hop is not a live link, so
        # the oracle view must apply the same reachability filter.
        candidates = [p for p in oracle if p[-1] == dest and p[1] in neighbors]
        expected = min(candidates, key=lambda p: (len(p), p), default=None)
        assert proto._best_path(dest) == expected


# ----------------------------------------------------------------- OLSR

_olsr_neighborhood = st.tuples(
    st.sets(st.integers(min_value=1, max_value=8), max_size=6),
    st.dictionaries(
        st.integers(min_value=1, max_value=8),
        st.sets(st.integers(min_value=0, max_value=15), max_size=6),
        max_size=8,
    ),
)


@given(data=_olsr_neighborhood)
@settings(max_examples=200, deadline=None)
def test_olsr_mpr_set_covers_every_coverable_two_hop_node(data):
    neighbors, two_hop = data
    mprs = select_mprs(0, neighbors, two_hop)
    assert mprs <= neighbors
    reach = {
        n: set(two_hop.get(n, ())) - neighbors - {0, n} for n in neighbors
    }
    coverable = set().union(*reach.values()) if reach else set()
    covered = set().union(*(reach[m] for m in mprs)) if mprs else set()
    assert coverable <= covered
