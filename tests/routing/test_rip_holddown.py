"""Tests for RIP hold-down (count-to-infinity insurance vs recovery speed)."""

from __future__ import annotations

import pytest

from repro.net.dynamics import LinkScheduler
from repro.routing.dv_common import DistanceVectorConfig
from repro.routing.messages import DistanceVectorUpdate
from repro.routing.rip import RipProtocol
from repro.sim.rng import RngStreams
from repro.topology import generators

from ..conftest import build_network

HD = DistanceVectorConfig(holddown=40.0)


class TestHolddownMechanics:
    def _speaker(self, config=HD):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = RipProtocol(net.node(0), RngStreams(1), config)
        proto.start()
        proto._periodic.stop()
        return sim, net, proto

    def test_replacement_refused_during_holddown(self):
        sim, net, proto = self._speaker()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        # Next hop poisons the route: hold-down starts.
        proto.handle_message(
            DistanceVectorUpdate(routes=((9, HD.infinity),)), from_node=1
        )
        assert proto.route_metric(9) is None
        # Another neighbor offers a perfectly good path: refused.
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=2)
        assert proto.route_metric(9) is None

    def test_original_neighbor_may_revive_early(self):
        sim, net, proto = self._speaker()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        proto.handle_message(
            DistanceVectorUpdate(routes=((9, HD.infinity),)), from_node=1
        )
        proto.handle_message(DistanceVectorUpdate(routes=((9, 2),)), from_node=1)
        assert proto.route_metric(9) == 3

    def test_replacement_accepted_after_expiry(self):
        sim, net, proto = self._speaker()
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        proto.handle_message(
            DistanceVectorUpdate(routes=((9, HD.infinity),)), from_node=1
        )
        sim.run(until=50.0)  # past the 40 s hold-down
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=2)
        assert proto.route_metric(9) == 2

    def test_zero_holddown_is_plain_rip(self):
        sim, net, proto = self._speaker(config=DistanceVectorConfig())
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=1)
        proto.handle_message(
            DistanceVectorUpdate(routes=((9, 16),)), from_node=1
        )
        proto.handle_message(DistanceVectorUpdate(routes=((9, 1),)), from_node=2)
        assert proto.route_metric(9) == 2  # immediately accepted

    def test_negative_holddown_rejected(self):
        with pytest.raises(ValueError):
            DistanceVectorConfig(holddown=-1.0)


class TestHolddownTradeoff:
    def test_holddown_slows_recovery(self):
        """The ablation's point: hold-down delays the periodic-update rescue
        that plain RIP relies on after a failure."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario

        cfg = ExperimentConfig.quick().with_(post_fail_window=60.0)
        plain = run_scenario("rip", 4, 1, cfg)
        held = run_scenario("rip-hd", 4, 1, cfg)
        assert held.delivered <= plain.delivered
        assert held.drops_no_route >= plain.drops_no_route
