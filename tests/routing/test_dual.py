"""Behavioral tests for DUAL (loop-free diffusing computations)."""

from __future__ import annotations

import pytest

from repro.metrics.convergence import ConvergenceTracker
from repro.net.dynamics import LinkScheduler
from repro.routing.dual import DualProtocol, DualQuery, DualReply, DualUpdate, INFINITY
from repro.sim.rng import RngStreams
from repro.topology import generators
from repro.topology.graph import Topology

from ..conftest import build_network, metrics_match_shortest_paths


def diamond() -> Topology:
    topo = Topology("diamond")
    for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
        topo.connect(a, b)
    return topo


class TestColdConvergence:
    @pytest.mark.parametrize(
        "topo_factory",
        [lambda: generators.line(4), diamond, lambda: generators.ring(5)],
    )
    def test_converges_to_shortest_paths(self, topo_factory):
        sim, net, _ = build_network(topo_factory(), "dual")
        net.start_protocols()
        sim.run(until=10.0)
        assert metrics_match_shortest_paths(net)

    def test_mesh_converges(self):
        from repro.topology.mesh import regular_mesh

        sim, net, _ = build_network(regular_mesh(4, 4, 5), "dual")
        net.start_protocols()
        sim.run(until=20.0)
        assert metrics_match_shortest_paths(net)

    def test_no_refresh_needed(self):
        sim, net, _ = build_network(generators.line(3), "dual")
        net.start_protocols()
        sim.run(until=500.0)
        assert metrics_match_shortest_paths(net)


class TestFeasibility:
    def test_local_computation_on_feasible_alternate(self):
        """With a feasible successor available, the switch is instant — no
        diffusion."""
        topo = diamond()
        sim, net, _ = build_network(topo, "dual")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        bus = net.bus
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=10.0)
        sim.run(until=10.06)
        # Neighbor 2 advertises distance 1 < FD 2: feasible, so the switch
        # for dest 3 happens at the detection instant (no diffusion wait).
        assert net.node(0).next_hop(3) == 2
        switch = [
            r for r in bus.route_changes if r.node == 0 and r.dest == 3 and r.time >= 10.0
        ]
        assert switch and switch[-1].time == pytest.approx(10.05)

    def test_diffusion_when_no_feasible_successor(self):
        """On a line, the midpoint has no feasible alternate: it must diffuse
        and the destination is unreachable meanwhile."""
        topo = generators.line(3)
        sim, net, _ = build_network(topo, "dual")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        proto1 = net.node(1).protocol
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(1, 2, at=10.0)
        sim.run(until=60.0)
        assert proto1.diffusions_started >= 1
        assert net.node(1).protocol.route_metric(2) is None
        assert net.node(0).protocol.route_metric(2) is None

    def test_counting_to_next_best_via_diffusion(self):
        """Ring: losing the direct link forces the long way round, which is
        infeasible (longer than FD) — a diffusion resolves it correctly."""
        topo = generators.ring(5)
        sim, net, _ = build_network(topo, "dual")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        injector = LinkScheduler(sim, net, detection_delay=0.05)
        injector.fail_link(0, 1, at=10.0)
        sim.run(until=60.0)
        assert net.node(0).protocol.route_metric(1) == 4
        assert net.node(0).next_hop(1) == 4


class TestLoopFreedom:
    @pytest.mark.parametrize("degree", [3, 4, 5, 6])
    def test_never_a_transient_forwarding_loop(self, degree):
        """DUAL's defining guarantee: the sender->receiver walk never loops,
        at any instant during convergence."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import run_scenario
        from repro.metrics.convergence import ConvergenceTracker

        trackers = []
        original = ConvergenceTracker.seed_from_network

        def capture(self, network):
            trackers.append(self)
            return original(self, network)

        ConvergenceTracker.seed_from_network = capture
        try:
            cfg = ExperimentConfig.quick().with_(post_fail_window=40.0)
            for seed in (1, 2, 3, 4):
                trackers.clear()
                r = run_scenario("dual", degree, seed, cfg)
                assert r.drops_ttl == 0
                states = [s.state for s in trackers[0].snapshots]
                assert "loop" not in states
        finally:
            ConvergenceTracker.seed_from_network = original


class TestQueryReplyMachinery:
    def _speaker(self):
        sim, net, _ = build_network(generators.star(2), "none")
        proto = DualProtocol(net.node(0), RngStreams(1), net)
        peers = {}
        for leaf in (1, 2):
            peers[leaf] = []

            class Peer:
                def __init__(self, sink):
                    self.sink = sink

                def handle_message(self, payload, from_node):
                    self.sink.append(payload)

                def apply_message(self, payload, from_node):
                    self.handle_message(payload, from_node)

                def start(self):
                    pass

            net.node(leaf).attach_protocol(Peer(peers[leaf]))
        proto.start()
        sim.run(until=1.0)
        return sim, net, proto, peers

    def test_query_to_destination_itself_gets_zero_reply(self):
        sim, net, proto, peers = self._speaker()
        proto.handle_message(DualQuery(routes=((0, 5.0),)), from_node=1)
        sim.run(until=2.0)
        replies = [p for p in peers[1] if isinstance(p, DualReply)]
        assert replies and replies[-1].routes == ((0, 0.0),)

    def test_update_learns_route(self):
        sim, net, proto, peers = self._speaker()
        proto.handle_message(DualUpdate(routes=((9, 2.0),)), from_node=1)
        assert proto.route_metric(9) == 3
        assert net.node(0).next_hop(9) == 1

    def test_worsening_successor_without_alternate_triggers_diffusion(self):
        sim, net, proto, peers = self._speaker()
        proto.handle_message(DualUpdate(routes=((9, 2.0),)), from_node=1)
        before = proto.diffusions_started
        proto.handle_message(DualUpdate(routes=((9, 10.0),)), from_node=1)
        assert proto.diffusions_started == before + 1
        sim.run(until=5.0)  # let the queries propagate over the channels
        assert any(isinstance(p, DualQuery) for p in peers[1])
        assert any(isinstance(p, DualQuery) for p in peers[2])
        # Replies complete the diffusion with the (worse) route accepted.
        proto.handle_message(DualReply(routes=((9, 10.0),)), from_node=1)
        proto.handle_message(DualReply(routes=((9, INFINITY),)), from_node=2)
        assert proto.route_metric(9) == 11

    def test_feasible_switch_avoids_diffusion(self):
        sim, net, proto, peers = self._speaker()
        proto.handle_message(DualUpdate(routes=((9, 5.0),)), from_node=1)
        proto.handle_message(DualUpdate(routes=((9, 3.0),)), from_node=2)
        assert net.node(0).next_hop(9) == 2
        before = proto.diffusions_started
        # Successor worsens but neighbor 1 (adv 5) is NOT feasible (5 >= FD 4)
        # ... wait: FD is 4, adv 5 >= 4 -> infeasible -> diffusion expected.
        proto.handle_message(DualUpdate(routes=((9, 9.0),)), from_node=2)
        assert proto.diffusions_started == before + 1


class TestWarmStart:
    def test_warm_quiet(self):
        topo = generators.ring(5)
        sim, net, _ = build_network(topo, "dual")
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        net.bus.route_changes.clear()
        sim.run(until=120.0)
        assert net.bus.route_changes == []

    def test_warm_equals_cold(self):
        topo = generators.ring(5)
        sim_c, net_c, _ = build_network(topo, "dual")
        net_c.start_protocols()
        sim_c.run(until=30.0)
        sim_w, net_w, _ = build_network(topo, "dual")
        for node in net_w.iter_nodes():
            node.protocol.warm_start(topo)
        fibs = lambda net: {n.id: dict(n.fib) for n in net.iter_nodes()}
        assert fibs(net_c) == fibs(net_w)
