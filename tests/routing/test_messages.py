"""Unit + property tests for message formats and packing rules."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import CONTROL_HEADER_BYTES
from repro.routing.messages import (
    DV_MAX_ROUTES_PER_MESSAGE,
    DV_ROUTE_ENTRY_BYTES,
    DistanceVectorUpdate,
    PathVectorUpdate,
    PathVectorWithdrawal,
    pack_distance_vector,
    pack_path_vector,
)
from repro.routing.rib import PathAttr


class TestDistanceVectorPacking:
    def test_small_set_fits_one_message(self):
        msgs = pack_distance_vector([(1, 2), (3, 4)])
        assert len(msgs) == 1
        assert msgs[0].routes == ((1, 2), (3, 4))

    def test_25_entry_limit(self):
        routes = [(d, 1) for d in range(60)]
        msgs = pack_distance_vector(routes)
        assert [len(m) for m in msgs] == [25, 25, 10]

    def test_routes_sorted_for_determinism(self):
        msgs = pack_distance_vector([(5, 1), (2, 1), (9, 1)])
        assert msgs[0].routes == ((2, 1), (5, 1), (9, 1))

    def test_empty_input_no_messages(self):
        assert pack_distance_vector([]) == []

    def test_size_accounting(self):
        msg = DistanceVectorUpdate(routes=((1, 2), (3, 4)))
        assert msg.size_bytes == CONTROL_HEADER_BYTES + 2 * DV_ROUTE_ENTRY_BYTES

    @given(st.sets(st.integers(min_value=0, max_value=500), max_size=200))
    def test_property_packing_preserves_routes(self, dests):
        routes = [(d, d % 16) for d in dests]
        msgs = pack_distance_vector(routes)
        unpacked = [r for m in msgs for r in m.routes]
        assert sorted(unpacked) == sorted(routes)
        assert all(len(m) <= DV_MAX_ROUTES_PER_MESSAGE for m in msgs)


class TestPathVectorMessages:
    def test_update_size_grows_with_path(self):
        short = PathVectorUpdate(path=PathAttr.of((1, 9)), dests=(9,))
        long = PathVectorUpdate(path=PathAttr.of((1, 2, 3, 9)), dests=(9,))
        assert long.size_bytes > short.size_bytes

    def test_update_requires_dests(self):
        with pytest.raises(ValueError):
            PathVectorUpdate(path=PathAttr.of((1, 9)), dests=())

    def test_withdrawal_requires_dests(self):
        with pytest.raises(ValueError):
            PathVectorWithdrawal(dests=())

    def test_withdrawal_len(self):
        assert len(PathVectorWithdrawal(dests=(1, 2, 3))) == 3

    def test_pack_groups_by_identical_path(self):
        p = PathAttr.of((1, 9))
        msgs = pack_path_vector([(9, p), (9, p)])
        assert len(msgs) == 1

    def test_pack_distinct_paths_get_distinct_messages(self):
        # Each destination has its own path in shortest-path routing, so one
        # failure fans out into several updates (the Figure 4 effect).
        msgs = pack_path_vector(
            [(9, PathAttr.of((1, 9))), (8, PathAttr.of((1, 8)))]
        )
        assert len(msgs) == 2
