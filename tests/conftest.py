"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.network import Network
from repro.net.packet import reset_packet_ids
from repro.routing.aodv import AodvProtocol
from repro.routing.bgp import BgpConfig, BgpProtocol
from repro.routing.dsr import DsrProtocol
from repro.routing.olsr import OlsrProtocol
from repro.routing.dbf import DbfProtocol
from repro.routing.dual import DualProtocol
from repro.routing.dv_common import DistanceVectorConfig
from repro.routing.rip import RipProtocol
from repro.routing.spf import SpfProtocol
from repro.routing.static import StaticProtocol
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceBus
from repro.topology import generators
from repro.topology.graph import Topology


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    reset_packet_ids()
    yield


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> RngStreams:
    return RngStreams(12345)


@pytest.fixture
def bus() -> TraceBus:
    return TraceBus(keep_packets=True, keep_routes=True, keep_messages=True)


def build_network(
    topo: Topology,
    protocol: str = "none",
    seed: int = 1,
    queue_capacity: int = 20,
    record_paths: bool = False,
    dv_config: DistanceVectorConfig | None = None,
    bgp_config: BgpConfig | None = None,
) -> tuple[Simulator, Network, RngStreams]:
    """Build a live network with one protocol family attached everywhere.

    ``protocol``: "rip" | "dbf" | "bgp" | "spf" | "static" | "none".
    Protocols are created but NOT started; call ``network.start_protocols()``
    or ``warm_start`` them per test.
    """
    sim = Simulator()
    bus = TraceBus(keep_packets=True, keep_routes=True, keep_messages=True)
    rng_streams = RngStreams(seed)
    network = Network(
        sim, topo, bus, queue_capacity=queue_capacity, record_paths=record_paths
    )
    if protocol != "none":

        def factory(node):
            if protocol == "rip":
                return RipProtocol(node, rng_streams, dv_config)
            if protocol == "dbf":
                return DbfProtocol(node, rng_streams, dv_config)
            if protocol == "bgp":
                return BgpProtocol(node, rng_streams, network, bgp_config)
            if protocol == "dual":
                return DualProtocol(node, rng_streams, network)
            if protocol == "spf":
                return SpfProtocol(node, rng_streams)
            if protocol == "static":
                return StaticProtocol(node, rng_streams, topo)
            if protocol == "aodv":
                return AodvProtocol(node, rng_streams)
            if protocol == "dsr":
                return DsrProtocol(node, rng_streams)
            if protocol == "olsr":
                return OlsrProtocol(node, rng_streams)
            raise ValueError(protocol)

        network.attach_protocols(factory)
    return sim, network, rng_streams


def line_topology(n: int) -> Topology:
    return generators.line(n)


def ring_topology(n: int) -> Topology:
    return generators.ring(n)


def routes_converged(network: Network, infinity: int = 10_000) -> bool:
    """True if every node's FIB matches deterministic shortest paths."""
    from repro.topology.graph import shortest_path_tree

    graph = network.topology.to_networkx()
    for node in network.iter_nodes():
        tree = shortest_path_tree(graph, node.id)
        for dest, path in tree.items():
            if dest == node.id:
                continue
            if len(path) - 1 >= infinity:
                continue
            if node.next_hop(dest) is None:
                return False
    return True


def metrics_match_shortest_paths(network: Network) -> bool:
    """True if every protocol metric equals the true shortest-path cost."""
    import networkx as nx

    graph = network.topology.to_networkx()
    lengths = dict(nx.all_pairs_dijkstra_path_length(graph, weight="weight"))
    for node in network.iter_nodes():
        assert node.protocol is not None
        for dest in network.topology.nodes:
            if dest == node.id:
                continue
            expected = lengths[node.id].get(dest)
            actual = node.protocol.route_metric(dest)
            if expected != actual:
                return False
    return True
