"""Routing-message overhead during convergence (related work [28]'s metric).

RIP/DBF pay a steady periodic-update tax plus triggered bursts; BGP variants
send only on change, so their counts isolate the convergence traffic itself.
"""

from __future__ import annotations

from repro.experiments.figures import overhead_sweep
from repro.experiments.report import format_sweep_table

from conftest import run_once


def test_overhead_sweep(benchmark, config):
    table = run_once(benchmark, overhead_sweep, config)
    print("\n" + format_sweep_table(table, precision=0))
    for degree in config.degrees:
        # Periodic protocols dominate the message count at every degree.
        assert table.value("rip", degree) > table.value("bgp3", degree)
        # Richer meshes mean more adjacencies, hence more periodic traffic.
    assert table.value("rip", max(config.degrees)) > table.value(
        "rip", min(config.degrees)
    ) * 0.5  # sanity: same order of magnitude