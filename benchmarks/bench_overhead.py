"""Overhead benchmarks: routing-message overhead and observability overhead.

Two unrelated "overheads" live here:

* the paper's routing-message overhead during convergence (related work
  [28]'s metric) as a pytest benchmark — RIP/DBF pay a steady
  periodic-update tax plus triggered bursts; BGP variants send only on
  change, so their counts isolate the convergence traffic itself;
* the cost of the :mod:`repro.obs` observability layer itself, as a script
  harness: one DBF scenario timed with observation off (the default path)
  and with a full :class:`~repro.obs.RunObservation` attached.  The delta is
  the price of profiling a run; the budget is a few percent::

      PYTHONPATH=src python benchmarks/bench_overhead.py --json BENCH_obs.json
      PYTHONPATH=src python benchmarks/bench_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import overhead_sweep
from repro.experiments.report import format_sweep_table
from repro.experiments.scenario import run_scenario


def test_overhead_sweep(benchmark, config):
    from conftest import run_once

    table = run_once(benchmark, overhead_sweep, config)
    print("\n" + format_sweep_table(table, precision=0))
    for degree in config.degrees:
        # Periodic protocols dominate the message count at every degree.
        assert table.value("rip", degree) > table.value("bgp3", degree)
        # Richer meshes mean more adjacencies, hence more periodic traffic.
    assert table.value("rip", max(config.degrees)) > table.value(
        "rip", min(config.degrees)
    ) * 0.5  # sanity: same order of magnitude


# ------------------------------------------------------------ script harness


def _best_scenario_seconds(
    post_fail_window: float, repeat: int, observed: bool
) -> float:
    """Best-of-N wall seconds for one DBF scenario, with/without observation."""
    from repro.obs import RunObservation

    cfg = ExperimentConfig.quick().with_(runs=1, post_fail_window=post_fail_window)
    best = None
    for _ in range(max(1, repeat)):
        obs = RunObservation() if observed else None
        started = time.perf_counter()
        result = run_scenario("dbf", 4, 1, cfg, obs=obs)
        elapsed = time.perf_counter() - started
        assert result.delivered > 0
        best = elapsed if best is None else min(best, elapsed)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="observability-layer overhead on one DBF scenario"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload: a CI sanity check, not a measurement",
    )
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--repeat", type=int, default=5, help="repeats per variant (best kept)"
    )
    args = parser.parse_args(argv)

    window = 4.0 if args.smoke else 40.0
    baseline_s = _best_scenario_seconds(window, args.repeat, observed=False)
    observed_s = _best_scenario_seconds(window, args.repeat, observed=True)
    overhead_pct = (observed_s - baseline_s) / baseline_s * 100.0

    print(f"{'baseline (obs off)':>20}: {baseline_s:.4f} s")
    print(f"{'observed (obs on)':>20}: {observed_s:.4f} s")
    print(f"{'overhead':>20}: {overhead_pct:+.2f} %")

    if args.json:
        payload = {
            "meta": {"smoke": args.smoke, "repeat": args.repeat,
                     "post_fail_window_s": window},
            "benchmarks": {
                "scenario_obs_off": {
                    "value": baseline_s, "unit": "s", "higher_is_better": False,
                },
                "scenario_obs_on": {
                    "value": observed_s, "unit": "s", "higher_is_better": False,
                },
                "obs_overhead_pct": {
                    "value": overhead_pct, "unit": "%", "higher_is_better": False,
                },
            },
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())