"""Overhead benchmarks: routing-message overhead and observability overhead.

Two unrelated "overheads" live here:

* the paper's routing-message overhead during convergence (related work
  [28]'s metric) as a pytest benchmark — RIP/DBF pay a steady
  periodic-update tax plus triggered bursts; BGP variants send only on
  change, so their counts isolate the convergence traffic itself;
* the cost of the :mod:`repro.obs` observability layer itself, as a script
  harness: one DBF scenario timed with observation off (the default path),
  with a full :class:`~repro.obs.RunObservation` attached, with a
  :class:`~repro.obs.FlightRecorder` attached, and with a ``--live-log``
  run-event log streamed to disk.  Each delta is the price of
  instrumenting a run; the budget is a few percent (3 % is the target for
  the recorder, 2 % for the live log — see docs/tracing.md and
  docs/live.md for what they actually measure at)::

      PYTHONPATH=src python benchmarks/bench_overhead.py --json BENCH_obs.json
      PYTHONPATH=src python benchmarks/bench_overhead.py --smoke

Methodology: wall-clock best-of-N turned out to have a ~±4 % noise floor on
an otherwise idle box, which drowns a few-percent effect.  The harness
therefore measures CPU seconds (``time.process_time``) with the cyclic GC
pinned, runs the variants **interleaved** in rotating order within each
round so slow drift cancels, and reports the median of per-round
overhead ratios rather than a difference of independent minima.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import overhead_sweep
from repro.experiments.report import format_sweep_table
from repro.experiments.scenario import run_scenario


def test_overhead_sweep(benchmark, config):
    from conftest import run_once

    table = run_once(benchmark, overhead_sweep, config)
    print("\n" + format_sweep_table(table, precision=0))
    for degree in config.degrees:
        # Periodic protocols dominate the message count at every degree.
        assert table.value("rip", degree) > table.value("bgp3", degree)
        # Richer meshes mean more adjacencies, hence more periodic traffic.
    assert table.value("rip", max(config.degrees)) > table.value(
        "rip", min(config.degrees)
    ) * 0.5  # sanity: same order of magnitude


# ------------------------------------------------------------ script harness


_VARIANTS = ("off", "obs", "flight", "live")


def _scenario_cpu_seconds(post_fail_window: float, variant: str) -> float:
    """CPU seconds for one DBF scenario under one instrumentation variant.

    ``variant`` is ``"off"`` (the default zero-instrumentation path),
    ``"obs"`` (a full :class:`RunObservation`), ``"flight"`` (a
    :class:`FlightRecorder` ring-buffering every record kind), or
    ``"live"`` (a ``--live-log`` run-event log streamed to a temp file —
    opening, writing, and flushing the log all land inside the timed
    region, since that is exactly what a logged run pays).
    """
    import os
    import tempfile

    from repro.obs import FlightRecorder, RunObservation

    cfg = ExperimentConfig.quick().with_(runs=1, post_fail_window=post_fail_window)
    obs = RunObservation() if variant == "obs" else None
    recorder = FlightRecorder() if variant == "flight" else None
    live_log = None
    if variant == "live":
        fd, live_log = tempfile.mkstemp(suffix=".runlog")
        os.close(fd)
    gc.collect()
    started = time.process_time()
    result = run_scenario(
        "dbf", 4, 1, cfg, obs=obs, recorder=recorder, live_log=live_log
    )
    elapsed = time.process_time() - started
    assert result.delivered > 0
    if recorder is not None:
        assert len(recorder.records("packet")) > 0
    if live_log is not None:
        from repro.obs.live import check_log, read_log

        assert check_log(read_log(live_log)) == []
        os.unlink(live_log)
    return elapsed


def _measure(post_fail_window: float, rounds: int) -> dict[str, float]:
    """Interleaved paired measurement of all variants.

    Every round times all three variants back to back, rotating the order
    each round so monotone machine drift biases no variant; per-round
    overhead ratios against that round's own baseline cancel the drift
    entirely.  Returns median seconds per variant plus median overhead
    percentages.
    """
    rounds = max(1, rounds)
    gc.disable()
    try:
        for variant in _VARIANTS:  # warm caches, import costs, allocator
            _scenario_cpu_seconds(post_fail_window, variant)
        times: dict[str, list[float]] = {v: [] for v in _VARIANTS}
        ratios: dict[str, list[float]] = {v: [] for v in _VARIANTS[1:]}
        for i in range(rounds):
            shift = i % len(_VARIANTS)
            order = _VARIANTS[shift:] + _VARIANTS[:shift]
            sample = {}
            for variant in order:
                sample[variant] = _scenario_cpu_seconds(post_fail_window, variant)
                times[variant].append(sample[variant])
            for variant in ratios:
                ratios[variant].append(sample[variant] / sample["off"])
    finally:
        gc.enable()
    out = {f"{v}_s": statistics.median(times[v]) for v in _VARIANTS}
    for variant, rs in ratios.items():
        out[f"{variant}_pct"] = (statistics.median(rs) - 1.0) * 100.0
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="observability-layer overhead on one DBF scenario"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload: a CI sanity check, not a measurement",
    )
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--repeat", type=int, default=15,
        help="measurement rounds (each times every variant once)",
    )
    args = parser.parse_args(argv)

    window = 4.0 if args.smoke else 40.0
    rounds = 1 if args.smoke else args.repeat
    m = _measure(window, rounds)
    baseline_s, observed_s, flight_s = m["off_s"], m["obs_s"], m["flight_s"]
    overhead_pct, flight_pct = m["obs_pct"], m["flight_pct"]
    live_s, live_pct = m["live_s"], m["live_pct"]

    print(f"{'baseline (obs off)':>24}: {baseline_s:.4f} s")
    print(f"{'observed (obs on)':>24}: {observed_s:.4f} s")
    print(f"{'recorded (flight on)':>24}: {flight_s:.4f} s")
    print(f"{'logged (live log on)':>24}: {live_s:.4f} s")
    print(f"{'obs overhead':>24}: {overhead_pct:+.2f} %")
    print(f"{'flight overhead':>24}: {flight_pct:+.2f} %")
    print(f"{'live-log overhead':>24}: {live_pct:+.2f} %")

    if args.json:
        payload = {
            "meta": {"smoke": args.smoke, "rounds": rounds,
                     "clock": "process_time",
                     "statistic": "median of per-round paired ratios",
                     "post_fail_window_s": window},
            "benchmarks": {
                "scenario_obs_off": {
                    "value": baseline_s, "unit": "s", "higher_is_better": False,
                },
                "scenario_obs_on": {
                    "value": observed_s, "unit": "s", "higher_is_better": False,
                },
                "scenario_flight_on": {
                    "value": flight_s, "unit": "s", "higher_is_better": False,
                },
                "obs_overhead_pct": {
                    "value": overhead_pct, "unit": "%", "higher_is_better": False,
                },
                "flight_overhead_pct": {
                    "value": flight_pct, "unit": "%", "higher_is_better": False,
                },
                "scenario_live_on": {
                    "value": live_s, "unit": "s", "higher_is_better": False,
                },
                "live_overhead_pct": {
                    "value": live_pct, "unit": "%", "higher_is_better": False,
                },
            },
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())