"""Shared configuration for the figure-reproduction benchmarks.

Each benchmark regenerates one figure of the paper (rows/series printed to
stdout) and times the full experiment harness.  ``BENCH_CONFIG`` keeps the
paper's topology scale (7x7 mesh) and authentic protocol timers while using
fewer seeds than the paper's 10 so the whole suite runs in minutes; set
``REPRO_PAPER_SCALE=1`` to run the full 10-seed, degree-3..8 configuration.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig


def bench_config() -> ExperimentConfig:
    if os.environ.get("REPRO_PAPER_SCALE"):
        return ExperimentConfig.paper()
    # 4 seeds: enough to sample the loop-forming failure layouts at degree 5
    # (the Figure 4 signal) while keeping the suite to a few minutes.
    return ExperimentConfig.quick().with_(runs=4, post_fail_window=60.0)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full harness invocation (no warmup repeats — these are
    minutes-long experiment sweeps, not microbenchmarks)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
