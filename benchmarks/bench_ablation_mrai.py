"""Ablation: MRAI granularity (paper §5.2 speculation).

The paper notes its loop results "could have been different had the MRAI
timer been implemented on a per (neighbor, destination) basis".  This bench
measures exactly that: per-neighbor vs per-(neighbor, destination) MRAI.
"""

from __future__ import annotations

from repro.experiments.figures import ablation_mrai_granularity
from repro.experiments.report import format_sweep_table

from conftest import run_once


def test_ablation_mrai_granularity(benchmark, config):
    table = run_once(benchmark, ablation_mrai_granularity, config.with_(runs=4), 5)
    print("\n" + format_sweep_table(table))
    # Finer MRAI granularity must not make looping worse; typically it
    # shortens loop lifetime because corrections for other destinations are
    # no longer stuck behind an unrelated announcement's timer.
    assert table.value("bgp-pd", 5) <= table.value("bgp", 5)
    assert table.value("bgp3-pd", 5) <= max(table.value("bgp3", 5), 1.0)
