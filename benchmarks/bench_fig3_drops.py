"""Figure 3: packet drops due to no route vs node degree.

Expected shape (paper Observation 1): drops fall as degree rises; at degree
>= 6 DBF/BGP/BGP-3 drop virtually nothing while RIP improves only slightly.
"""

from __future__ import annotations

from repro.experiments.figures import figure3_drops_no_route
from repro.experiments.report import format_sweep_table

from conftest import run_once


def test_figure3_drops_no_route(benchmark, config):
    table = run_once(benchmark, figure3_drops_no_route, config)
    print("\n" + format_sweep_table(table))
    d_lo, d_hi = min(config.degrees), max(config.degrees)
    # RIP is the worst protocol at every degree and never gets near zero.
    for degree in config.degrees:
        assert table.value("rip", degree) >= table.value("dbf", degree)
    assert table.value("rip", d_hi) > 20
    # Alternate-path protocols reach ~zero drops at the highest degree.
    for protocol in ("dbf", "bgp", "bgp3"):
        assert table.value(protocol, d_hi) < 5
