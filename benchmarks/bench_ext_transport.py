"""Extension (paper §6): end-to-end reliable transport through convergence.

A window/timeout transfer spans the failure; the stall penalty versus a
failure-free baseline translates the paper's IP-layer delivery gap into
end-to-end terms (RIP's ~periodic-interval gap becomes a tens-of-seconds
stall; the alternate-path protocols cost ~a retransmission timeout).
"""

from __future__ import annotations

from repro.experiments.figures import extension_transport

from conftest import run_once


def test_extension_transport(benchmark, config):
    out = run_once(
        benchmark, extension_transport, config.with_(runs=2), 4, 8000
    )
    print("\nTransport extension (8000-segment transfer, failure mid-stream)")
    print(f"  {'protocol':>9} {'stall (s)':>10} {'retx':>7}")
    for protocol, row in out.items():
        print(f"  {protocol:>9} {row['stall_penalty']:>10.2f} {row['retransmissions']:>7.1f}")
    assert out["rip"]["stall_penalty"] >= out["dbf"]["stall_penalty"]
    assert out["dbf"]["stall_penalty"] < 5.0
