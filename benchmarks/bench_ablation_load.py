"""Ablation: offered load vs loss cause during convergence loops.

DESIGN.md reconstructs the paper's sender rate from the constraint that
transient loops must not congest the 1 Mbps links (the paper attributes all
convergence losses to NO_ROUTE and TTL expiry).  This bench makes the
constraint measurable: as the rate grows past ~2*capacity/TTL, loop losses
shift from TTL expiry into queue overflow.
"""

from __future__ import annotations

from repro.experiments.figures import ablation_load_sensitivity

from conftest import run_once

RATES = (10.0, 20.0, 60.0, 150.0)


def test_ablation_load_sensitivity(benchmark, config):
    # Loop formation depends on the failure layout, not the data rate; use a
    # seed window where the degree-5 MRAI loop reproduces so every rate is
    # measured against the same transient loop.
    out = run_once(
        benchmark, ablation_load_sensitivity, config.with_(runs=3, seed=4), 5, RATES
    )
    print("\nLoad sensitivity (BGP, degree 5): drops by cause")
    print(f"  {'rate(pps)':>10} {'ttl':>8} {'queue':>8} {'no_route':>9}")
    for rate in RATES:
        row = out[rate]
        print(
            f"  {rate:>10.0f} {row['ttl']:>8.1f} {row['queue']:>8.1f} {row['no_route']:>9.1f}"
        )
    # At paper-scale load, queue overflow is negligible.
    assert out[20.0]["queue"] < out[20.0]["ttl"] + out[20.0]["no_route"] + 5
    # Heavy load pushes losses into queue overflow.
    assert out[150.0]["queue"] > out[20.0]["queue"]
