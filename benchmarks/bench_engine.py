"""Microbenchmarks of the simulation substrate itself.

These time the building blocks the figure benchmarks stand on: raw event
throughput, cancellation-heavy timer churn, packet forwarding through the
mesh, protocol warm starts, and a complete scenario run.

Two ways to run it:

* under pytest (with ``pytest-benchmark``) for statistically careful numbers:
  ``PYTHONPATH=src python -m pytest benchmarks/bench_engine.py``;
* as a script for quick before/after comparisons and CI smoke checks::

      PYTHONPATH=src python benchmarks/bench_engine.py --json after.json
      PYTHONPATH=src python benchmarks/bench_engine.py --smoke

  Diff two JSON outputs with ``benchmarks/bench_compare.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.topology.graph import all_shortest_path_trees
from repro.topology.mesh import regular_mesh

# --------------------------------------------------------------- workloads
#
# Each workload returns (metric_value, unit, higher_is_better); the script
# harness reports the best of N repeats, the pytest harness times them via
# the benchmark fixture.


def _event_throughput(n_events: int) -> float:
    """Self-rescheduling tick chain: schedule+run ``n_events`` events."""
    sim = Simulator()
    remaining = [n_events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert sim.events_processed == n_events
    return n_events / elapsed


def _cancel_churn(n_timers: int) -> float:
    """Timer restart storm: every event re-arms, half get cancelled lazily.

    Exercises the lazy-cancellation path the protocols lean on (MRAI,
    holddown): events/sec counts executed + skipped husks.
    """
    sim = Simulator()
    handles = [sim.schedule(0.001 * (i + 1), lambda: None) for i in range(n_timers)]
    for i, handle in enumerate(handles):
        if i % 2 == 0:
            handle.cancel()
    done = [0]

    def tick():
        done[0] += 1

    sim.schedule_many([(0.001 * (i + 1), tick) for i in range(n_timers)])
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    stats = sim.stats()
    assert done[0] == n_timers
    return (stats.events_processed + stats.cancelled_skipped) / elapsed


def _forwarding_rate(n_packets: int) -> float:
    """Push packets across a 7x7 degree-4 mesh diagonal; events/sec."""
    topo = regular_mesh(7, 7, 4)
    sim = Simulator()
    net = Network(sim, topo)
    trees = all_shortest_path_trees(topo)
    for node in net.iter_nodes():
        path = trees[node.id].get(48)
        if path and len(path) > 1:
            node.set_next_hop(48, path[1])

    def emit():
        net.node(0).originate(Packet(src=0, dst=48, size_bytes=64))

    sim.schedule_many([(i * 0.001, emit) for i in range(n_packets)])
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert net.node(48).delivered == n_packets
    return sim.events_processed / elapsed


def _scenario_seconds(post_fail_window: float) -> float:
    """Wall seconds for one complete DBF scenario at paper topology scale."""
    cfg = ExperimentConfig.quick().with_(runs=1, post_fail_window=post_fail_window)
    started = time.perf_counter()
    result = run_scenario("dbf", 4, 1, cfg)
    elapsed = time.perf_counter() - started
    assert result.delivered > 0
    return elapsed


# ------------------------------------------------------------ script harness

def _suite(smoke: bool) -> dict[str, dict]:
    scale = 10 if smoke else 1
    return {
        "event_throughput": {
            "run": lambda: _event_throughput(200_000 // scale),
            "unit": "events/s",
            "higher_is_better": True,
        },
        "cancel_churn": {
            "run": lambda: _cancel_churn(50_000 // scale),
            "unit": "events/s",
            "higher_is_better": True,
        },
        "packet_forwarding": {
            "run": lambda: _forwarding_rate(2_000 // scale),
            "unit": "events/s",
            "higher_is_better": True,
        },
        "dbf_scenario": {
            "run": lambda: _scenario_seconds(4.0 if smoke else 40.0),
            "unit": "s",
            "higher_is_better": False,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="engine microbenchmarks")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: a CI sanity check, not a measurement",
    )
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--repeat", type=int, default=3, help="repeats per benchmark (best kept)"
    )
    args = parser.parse_args(argv)

    results: dict[str, dict] = {}
    for name, spec in _suite(args.smoke).items():
        best = None
        for _ in range(max(1, args.repeat)):
            value = spec["run"]()
            if best is None:
                best = value
            elif spec["higher_is_better"]:
                best = max(best, value)
            else:
                best = min(best, value)
        results[name] = {
            "value": best,
            "unit": spec["unit"],
            "higher_is_better": spec["higher_is_better"],
        }
        print(f"{name:>20}: {best:,.1f} {spec['unit']}")

    if args.json:
        payload = {
            "meta": {"smoke": args.smoke, "repeat": args.repeat},
            "benchmarks": results,
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {args.json}")
    return 0


# ------------------------------------------------------------ pytest harness

def test_event_throughput(benchmark):
    """Schedule+run 100k trivial events."""

    def run():
        sim = Simulator()
        remaining = [100_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 100_000


def test_packet_forwarding_rate(benchmark):
    """Push 2000 packets across a 7x7 degree-4 mesh diagonal."""
    topo = regular_mesh(7, 7, 4)

    def run():
        sim = Simulator()
        net = Network(sim, topo)
        trees = all_shortest_path_trees(topo)
        for node in net.iter_nodes():
            path = trees[node.id].get(48)
            if path and len(path) > 1:
                node.set_next_hop(48, path[1])
        for i in range(2000):
            sim.schedule_at(
                i * 0.001,
                lambda: net.node(0).originate(Packet(src=0, dst=48, size_bytes=64)),
            )
        sim.run()
        return net.node(48).delivered

    delivered = benchmark(run)
    assert delivered == 2000


def test_warm_start_cost(benchmark):
    """Warm-start a full BGP mesh (49 speakers) on the 7x7 degree-6 mesh."""
    from repro.routing.bgp import BgpConfig, BgpProtocol
    from repro.sim.rng import RngStreams

    topo = regular_mesh(7, 7, 6)

    def run():
        sim = Simulator()
        net = Network(sim, topo)
        rng = RngStreams(1)
        net.attach_protocols(
            lambda node: BgpProtocol(node, rng, net, BgpConfig.standard())
        )
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        return sum(len(n.fib) for n in net.iter_nodes())

    fib_entries = benchmark(run)
    assert fib_entries == 49 * 48


def test_scenario_run_cost(benchmark):
    """One complete DBF scenario at paper topology scale."""
    cfg = ExperimentConfig.quick().with_(runs=1, post_fail_window=40.0)
    result = benchmark.pedantic(
        run_scenario, args=("dbf", 4, 1, cfg), rounds=1, iterations=1
    )
    assert result.delivered > 0


if __name__ == "__main__":
    sys.exit(main())
