"""Microbenchmarks of the simulation substrate itself.

These time the building blocks the figure benchmarks stand on: raw event
throughput, cancellation-heavy timer churn, packet forwarding through the
mesh, protocol warm starts, and a complete scenario run.

Two ways to run it:

* under pytest (with ``pytest-benchmark``) for statistically careful numbers:
  ``PYTHONPATH=src python -m pytest benchmarks/bench_engine.py``;
* as a script for quick before/after comparisons and CI smoke checks::

      PYTHONPATH=src python benchmarks/bench_engine.py --json after.json
      PYTHONPATH=src python benchmarks/bench_engine.py --smoke

  Diff two JSON outputs with ``benchmarks/bench_compare.py``.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.eventq import EVENT_QUEUE_NAMES
from repro.topology.graph import all_shortest_path_trees
from repro.topology.mesh import regular_mesh

# --------------------------------------------------------------- workloads
#
# Each workload returns (metric_value, unit, higher_is_better); the script
# harness reports the best of N repeats, the pytest harness times them via
# the benchmark fixture.  All workloads take an event-queue backend name so
# --queue / --compare-queues can pit "heap" against "calendar" on identical
# event streams (the backends are bit-identical in results, so any delta is
# pure scheduler cost).


def _event_throughput(n_events: int, queue: str | None = None) -> float:
    """Self-rescheduling tick chain: schedule+run ``n_events`` events."""
    sim = Simulator(queue=queue)
    remaining = [n_events]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert sim.events_processed == n_events
    return n_events / elapsed


def _cancel_churn(n_timers: int, queue: str | None = None) -> float:
    """Timer restart storm: every event re-arms, half get cancelled lazily.

    Exercises the lazy-cancellation path the protocols lean on (MRAI,
    holddown): events/sec counts executed + skipped husks.
    """
    sim = Simulator(queue=queue)
    handles = [sim.schedule(0.001 * (i + 1), lambda: None) for i in range(n_timers)]
    for i, handle in enumerate(handles):
        if i % 2 == 0:
            handle.cancel()
    done = [0]

    def tick():
        done[0] += 1

    sim.schedule_many([(0.001 * (i + 1), tick) for i in range(n_timers)])
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    stats = sim.stats()
    assert done[0] == n_timers
    return (stats.events_processed + stats.cancelled_skipped) / elapsed


def _periodic_timer_throughput(
    n_timers: int, n_events: int, queue: str | None = None
) -> float:
    """RIP-shaped periodic-timer population: the calendar queue's home turf.

    ``n_timers`` independent timers with periods spread over 25-35 s (the
    RFC 2453 30 s +/- jitter band, deterministic here), each re-arming via
    the handle-recycling ``reschedule`` fast path — the steady-state access
    pattern of a d4 RIP mesh's update timers scaled to sweep-farm size.
    The pending population stays ~``n_timers`` throughout, which is where
    a heap pays ``O(log n)`` per event and a calendar queue does not.
    """
    sim = Simulator(queue=queue)
    periods = [25.0 + (i * 7919 % 1001) / 100.0 for i in range(n_timers)]
    handles: list = [None] * n_timers

    def make(i):
        period = periods[i]

        def tick():
            handles[i] = sim.reschedule(handles[i], period)

        return tick

    # Deterministic phase spread so first fires are uniform over one period.
    for i in range(n_timers):
        handles[i] = sim.schedule(periods[i] * ((i * 31 % 997) / 997.0), make(i))
    started = time.process_time()
    sim.run(max_events=n_events)
    elapsed = time.process_time() - started
    assert sim.events_processed == n_events
    return n_events / elapsed


def _forwarding_rate(n_packets: int, queue: str | None = None) -> float:
    """Push packets across a 7x7 degree-4 mesh diagonal; events/sec."""
    topo = regular_mesh(7, 7, 4)
    sim = Simulator(queue=queue)
    net = Network(sim, topo)
    trees = all_shortest_path_trees(topo)
    for node in net.iter_nodes():
        path = trees[node.id].get(48)
        if path and len(path) > 1:
            node.set_next_hop(48, path[1])

    def emit():
        net.node(0).originate(Packet(src=0, dst=48, size_bytes=64))

    sim.schedule_many([(i * 0.001, emit) for i in range(n_packets)])
    started = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - started
    assert net.node(48).delivered == n_packets
    return sim.events_processed / elapsed


def _scenario_seconds(post_fail_window: float, queue: str | None = None) -> float:
    """Wall seconds for one complete DBF scenario at paper topology scale."""
    cfg = ExperimentConfig.quick().with_(
        runs=1, post_fail_window=post_fail_window, event_queue=queue
    )
    started = time.perf_counter()
    result = run_scenario("dbf", 4, 1, cfg)
    elapsed = time.perf_counter() - started
    assert result.delivered > 0
    return elapsed


# ------------------------------------------------------------ script harness

def _suite(smoke: bool, queue: str | None = None) -> dict[str, dict]:
    scale = 10 if smoke else 1
    return {
        "event_throughput": {
            "run": lambda: _event_throughput(200_000 // scale, queue),
            "unit": "events/s",
            "higher_is_better": True,
        },
        "cancel_churn": {
            "run": lambda: _cancel_churn(50_000 // scale, queue),
            "unit": "events/s",
            "higher_is_better": True,
        },
        "rip_periodic_timers": {
            "run": lambda: _periodic_timer_throughput(
                200_000 // scale, 150_000 // scale, queue
            ),
            "unit": "events/s",
            "higher_is_better": True,
        },
        "packet_forwarding": {
            "run": lambda: _forwarding_rate(2_000 // scale, queue),
            "unit": "events/s",
            "higher_is_better": True,
        },
        "dbf_scenario": {
            "run": lambda: _scenario_seconds(4.0 if smoke else 40.0, queue),
            "unit": "s",
            "higher_is_better": False,
        },
    }


def _compare_queues(smoke: bool, rounds: int) -> dict:
    """Paired-ratio comparison of the backends on the periodic workload.

    Methodology from bench_overhead: the two variants run back-to-back
    within each round in rotating order (so drift hits both alike), GC is
    pinned off around the timed region, and the reported figure is the
    median of per-round calendar/heap ratios — pairing cancels machine
    drift that would swamp an absolute comparison.
    """
    n_timers = 20_000 if smoke else 200_000
    n_events = 15_000 if smoke else 150_000
    variants = ("heap", "calendar")

    def measure(queue: str) -> float:
        gc.collect()
        gc.disable()
        try:
            return _periodic_timer_throughput(n_timers, n_events, queue)
        finally:
            gc.enable()

    for queue in variants:  # warm-up round, discarded
        measure(queue)
    per_round: list[dict] = []
    ratios: list[float] = []
    for i in range(rounds):
        order = variants[i % 2 :] + variants[: i % 2]
        rates = {queue: measure(queue) for queue in order}
        ratio = rates["calendar"] / rates["heap"]
        ratios.append(ratio)
        per_round.append({**rates, "ratio": ratio})
        print(
            f"round {i}: heap={rates['heap']:,.0f} ev/s "
            f"calendar={rates['calendar']:,.0f} ev/s ratio={ratio:.2f}"
        )
    median = statistics.median(ratios)
    print(
        f"paired calendar/heap ratio on rip_periodic_timers "
        f"({n_timers:,} timers): {median:.2f}x (median of {rounds} rounds)"
    )
    return {
        "workload": "rip_periodic_timers",
        "n_timers": n_timers,
        "n_events": n_events,
        "rounds": per_round,
        "ratio_median": median,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="engine microbenchmarks")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: a CI sanity check, not a measurement",
    )
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--repeat", type=int, default=3, help="repeats per benchmark (best kept)"
    )
    parser.add_argument(
        "--queue",
        choices=EVENT_QUEUE_NAMES,
        default=None,
        help="event-queue backend for all workloads (default: engine default)",
    )
    parser.add_argument(
        "--compare-queues",
        action="store_true",
        help="paired heap-vs-calendar ratio on the periodic-timer workload "
        "instead of the absolute suite",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        metavar="RATIO",
        help="with --compare-queues: exit non-zero if the median "
        "calendar/heap ratio is below RATIO",
    )
    args = parser.parse_args(argv)

    if args.compare_queues:
        comparison = _compare_queues(args.smoke, max(1, args.repeat))
        if args.json:
            payload = {
                "meta": {"smoke": args.smoke, "repeat": args.repeat},
                "compare_queues": comparison,
            }
            with open(args.json, "w", encoding="utf-8") as f:
                json.dump(payload, f, indent=2)
            print(f"wrote {args.json}")
        if args.fail_below is not None and comparison["ratio_median"] < args.fail_below:
            print(
                f"FAIL: ratio {comparison['ratio_median']:.2f} < {args.fail_below}"
            )
            return 1
        return 0

    results: dict[str, dict] = {}
    for name, spec in _suite(args.smoke, args.queue).items():
        best = None
        for _ in range(max(1, args.repeat)):
            value = spec["run"]()
            if best is None:
                best = value
            elif spec["higher_is_better"]:
                best = max(best, value)
            else:
                best = min(best, value)
        results[name] = {
            "value": best,
            "unit": spec["unit"],
            "higher_is_better": spec["higher_is_better"],
        }
        print(f"{name:>20}: {best:,.1f} {spec['unit']}")

    if args.json:
        payload = {
            "meta": {
                "smoke": args.smoke,
                "repeat": args.repeat,
                "queue": args.queue or "default",
            },
            "benchmarks": results,
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
        print(f"wrote {args.json}")
    return 0


# ------------------------------------------------------------ pytest harness

def test_event_throughput(benchmark):
    """Schedule+run 100k trivial events."""

    def run():
        sim = Simulator()
        remaining = [100_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 100_000


def test_packet_forwarding_rate(benchmark):
    """Push 2000 packets across a 7x7 degree-4 mesh diagonal."""
    topo = regular_mesh(7, 7, 4)

    def run():
        sim = Simulator()
        net = Network(sim, topo)
        trees = all_shortest_path_trees(topo)
        for node in net.iter_nodes():
            path = trees[node.id].get(48)
            if path and len(path) > 1:
                node.set_next_hop(48, path[1])
        for i in range(2000):
            sim.schedule_at(
                i * 0.001,
                lambda: net.node(0).originate(Packet(src=0, dst=48, size_bytes=64)),
            )
        sim.run()
        return net.node(48).delivered

    delivered = benchmark(run)
    assert delivered == 2000


def test_warm_start_cost(benchmark):
    """Warm-start a full BGP mesh (49 speakers) on the 7x7 degree-6 mesh."""
    from repro.routing.bgp import BgpConfig, BgpProtocol
    from repro.sim.rng import RngStreams

    topo = regular_mesh(7, 7, 6)

    def run():
        sim = Simulator()
        net = Network(sim, topo)
        rng = RngStreams(1)
        net.attach_protocols(
            lambda node: BgpProtocol(node, rng, net, BgpConfig.standard())
        )
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        return sum(len(n.fib) for n in net.iter_nodes())

    fib_entries = benchmark(run)
    assert fib_entries == 49 * 48


def test_scenario_run_cost(benchmark):
    """One complete DBF scenario at paper topology scale."""
    cfg = ExperimentConfig.quick().with_(runs=1, post_fail_window=40.0)
    result = benchmark.pedantic(
        run_scenario, args=("dbf", 4, 1, cfg), rounds=1, iterations=1
    )
    assert result.delivered > 0


if __name__ == "__main__":
    sys.exit(main())
