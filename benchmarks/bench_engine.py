"""Microbenchmarks of the simulation substrate itself.

These time the building blocks the figure benchmarks stand on: raw event
throughput, packet forwarding through the mesh, protocol warm starts, and a
complete scenario run.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import run_scenario
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.topology.graph import all_shortest_path_trees
from repro.topology.mesh import regular_mesh


def test_event_throughput(benchmark):
    """Schedule+run 100k trivial events."""

    def run():
        sim = Simulator()
        remaining = [100_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 100_000


def test_packet_forwarding_rate(benchmark):
    """Push 2000 packets across a 7x7 degree-4 mesh diagonal."""
    topo = regular_mesh(7, 7, 4)

    def run():
        sim = Simulator()
        net = Network(sim, topo)
        trees = all_shortest_path_trees(topo)
        for node in net.iter_nodes():
            path = trees[node.id].get(48)
            if path and len(path) > 1:
                node.set_next_hop(48, path[1])
        for i in range(2000):
            sim.schedule_at(
                i * 0.001,
                lambda: net.node(0).originate(Packet(src=0, dst=48, size_bytes=64)),
            )
        sim.run()
        return net.node(48).delivered

    delivered = benchmark(run)
    assert delivered == 2000


def test_warm_start_cost(benchmark):
    """Warm-start a full BGP mesh (49 speakers) on the 7x7 degree-6 mesh."""
    from repro.routing.bgp import BgpConfig, BgpProtocol
    from repro.sim.rng import RngStreams

    topo = regular_mesh(7, 7, 6)

    def run():
        sim = Simulator()
        net = Network(sim, topo)
        rng = RngStreams(1)
        net.attach_protocols(
            lambda node: BgpProtocol(node, rng, net, BgpConfig.standard())
        )
        for node in net.iter_nodes():
            node.protocol.warm_start(topo)
        return sum(len(n.fib) for n in net.iter_nodes())

    fib_entries = benchmark(run)
    assert fib_entries == 49 * 48


def test_scenario_run_cost(benchmark):
    """One complete DBF scenario at paper topology scale."""
    cfg = ExperimentConfig.quick().with_(runs=1, post_fail_window=40.0)
    result = benchmark.pedantic(
        run_scenario, args=("dbf", 4, 1, cfg), rounds=1, iterations=1
    )
    assert result.delivered > 0
