"""Extension (paper §6 future work): link-state SPF vs the studied protocols.

SPF floods failure information with no damping timers and computes routes
from global topology knowledge, so its convergence-period losses should sit
at or below DBF's.
"""

from __future__ import annotations

from repro.experiments.figures import extension_linkstate
from repro.experiments.report import format_sweep_table

from conftest import run_once


def test_extension_linkstate(benchmark, config):
    table = run_once(benchmark, extension_linkstate, config)
    print("\n" + format_sweep_table(table))
    for degree in config.degrees:
        assert table.value("spf", degree) <= table.value("rip", degree)
    d_hi = max(config.degrees)
    assert table.value("spf", d_hi) < 5
