"""Extension: link restoration (the unexamined half of convergence).

After the failed link comes back, routing should migrate to a
shortest-length path again.  SPF restores instantly on the LSA flood; BGP's
re-announcements ride MRAI; RIP and DUAL legitimately keep an equal-cost
detour (neither switches on ties).
"""

from __future__ import annotations

from repro.experiments.extensions import run_repair_scenario

from conftest import run_once

PROTOCOLS = ("rip", "dbf", "dual", "bgp3", "bgp", "spf")


def _run_all(config, seeds=(1, 2)):
    out = {}
    for protocol in PROTOCOLS:
        restored, delivery = [], []
        for seed in seeds:
            r = run_repair_scenario(protocol, 4, seed, config, repair_after=15.0)
            if r.restoration_convergence is not None:
                restored.append(r.restoration_convergence)
            delivery.append(r.delivery_ratio)
        out[protocol] = {
            "restoration": sum(restored) / len(restored) if restored else None,
            "back": len(restored) / len(seeds),
            "delivery": sum(delivery) / len(delivery),
        }
    return out


def test_extension_repair(benchmark, config):
    out = run_once(benchmark, _run_all, config.with_(post_fail_window=50.0))
    print("\nRepair extension (degree 4, fail at t=0, repair at t=15)")
    print(f"  {'proto':>6} {'restored':>9} {'restore(s)':>11} {'delivery':>9}")
    for protocol in PROTOCOLS:
        row = out[protocol]
        rest = f"{row['restoration']:.2f}" if row["restoration"] is not None else "-"
        print(
            f"  {protocol:>6} {row['back']:>9.0%} {rest:>11} {row['delivery']:>9.3f}"
        )
    # Everyone ends on a shortest-length path.
    for protocol in PROTOCOLS:
        assert out[protocol]["back"] == 1.0
    # SPF's restoration is never slower than BGP's (flooding vs MRAI).
    assert out["spf"]["restoration"] <= out["bgp"]["restoration"] + 1e-9
