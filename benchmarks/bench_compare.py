"""Diff two ``bench_engine.py --json`` outputs and print a speedup table.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py --json before.json
    # ...apply the change...
    PYTHONPATH=src python benchmarks/bench_engine.py --json after.json
    python benchmarks/bench_compare.py before.json after.json

Speedup is normalised so >1.0 always means "after is better", regardless
of whether the metric is a rate (higher wins) or a duration (lower wins).
Exits non-zero with ``--fail-below`` if any common benchmark regresses past
the given factor, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys


def _load(path: str) -> dict[str, dict]:
    with open(path, encoding="utf-8") as f:
        payload = json.load(f)
    # Accept both the wrapped form ({"benchmarks": {...}}) and a bare dict.
    return payload.get("benchmarks", payload)


def _speedup(before: dict, after: dict) -> float:
    if before["value"] == 0 or after["value"] == 0:
        return float("nan")
    if after.get("higher_is_better", True):
        return after["value"] / before["value"]
    return before["value"] / after["value"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="compare two bench JSON files")
    parser.add_argument("before", help="baseline JSON from bench_engine.py --json")
    parser.add_argument("after", help="candidate JSON from bench_engine.py --json")
    parser.add_argument(
        "--fail-below",
        type=float,
        metavar="FACTOR",
        help="exit 1 if any common benchmark's speedup is below FACTOR",
    )
    args = parser.parse_args(argv)

    try:
        before, after = _load(args.before), _load(args.after)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    common = [name for name in before if name in after]
    if not common:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 2

    name_w = max(len(n) for n in common)
    header = f"{'benchmark':<{name_w}}  {'before':>14}  {'after':>14}  {'speedup':>8}"
    print(header)
    print("-" * len(header))
    worst = float("inf")
    for name in common:
        b, a = before[name], after[name]
        factor = _speedup(b, a)
        worst = min(worst, factor)
        unit = a.get("unit", "")
        print(
            f"{name:<{name_w}}  {b['value']:>14,.1f}  {a['value']:>14,.1f}  "
            f"{factor:>7.2f}x  {unit}"
        )

    only_before = sorted(set(before) - set(after))
    only_after = sorted(set(after) - set(before))
    if only_before:
        print(f"only in {args.before}: {', '.join(only_before)}")
    if only_after:
        print(f"only in {args.after}: {', '.join(only_after)}")

    if args.fail_below is not None and worst < args.fail_below:
        print(
            f"FAIL: worst speedup {worst:.2f}x is below {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
