"""Extension: IGP fast reroute (paper related work [1]/[27]).

SPF with a realistic 2 s computation throttle loses packets on the stale
route until recomputation; precomputed Loop-Free Alternates swing the FIB
at failure detection instead.  LFA coverage depends on connectivity: on the
tie-heavy degree-4 grid many nodes have no loop-free neighbor, while at
degree 6 protection is total — the paper's redundancy theme, replayed at the
data plane.
"""

from __future__ import annotations

from repro.experiments.figures import extension_fast_reroute

from conftest import run_once


def test_extension_fast_reroute(benchmark, config):
    out = run_once(benchmark, extension_fast_reroute, config.with_(runs=4), (4, 6))
    print("\nFast reroute extension: stale-route drops per failure")
    print(f"  {'protocol':>9} {'degree 4':>9} {'degree 6':>9}")
    for protocol in ("spf", "spf-slow", "spf-lfa"):
        print(
            f"  {protocol:>9} {out[(protocol, 4)]:>9.1f} {out[(protocol, 6)]:>9.1f}"
        )
    # Instant SPF barely loses anything; the throttle opens a gap; LFA closes
    # it where a loop-free alternate exists (fully at degree 6).
    for degree in (4, 6):
        assert out[("spf", degree)] <= 3
        assert out[("spf-lfa", degree)] <= out[("spf-slow", degree)]
    assert out[("spf-lfa", 6)] <= 3
