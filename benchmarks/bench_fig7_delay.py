"""Figure 7: instantaneous packet delay vs time (degrees 4, 5, 6).

Expected shape (paper Observation 5): packets delivered during convergence
ride longer transient paths, so per-second mean delay rises above the steady
state; loop-escaping packets produce the largest spikes (degree 5).
"""

from __future__ import annotations

from repro.experiments.figures import figure7_delay
from repro.experiments.report import format_series_grid

from conftest import run_once


def test_figure7_delay(benchmark, config):
    degrees = tuple(d for d in (4, 5, 6) if d in config.degrees) or config.degrees[:1]
    series = run_once(benchmark, figure7_delay, config, degrees)
    print(
        "\n"
        + format_series_grid(
            series,
            "Figure 7: instantaneous packet delay (s), failure at t=0",
            t_min=-5,
            t_max=50,
            step=5,
            precision=4,
        )
    )
    # Delay during convergence exceeds the steady state for at least one
    # protocol/degree (sub-optimal transient paths).
    inflated = 0
    for key, s in series.items():
        steady = s.window(-5.0, 0.0).mean_value()
        post_values = [v for v in s.window(0.0, 30.0).values if v > 0]
        if post_values and max(post_values) > steady * 1.2:
            inflated += 1
    assert inflated >= 1
