"""Extension: route flap damping during convergence (paper's [4]/[15]).

RFC 2439 damping reads convergence-period path exploration as flapping.  At
this experiment's timescale (scaled half-life, single failure) the visible
effect is loop suppression — the flapping stale alternates that form the
degree-5 MRAI loops get damped, cutting TTL deaths.  The *harmful* side Mao
et al. report (good routes suppressed for many minutes) requires production
15-minute half-lives that dwarf the 70 s observation window; EXPERIMENTS.md
discusses the regime split.
"""

from __future__ import annotations

from repro.experiments.figures import extension_flap_damping

from conftest import run_once


def test_extension_flap_damping(benchmark, config):
    out = run_once(benchmark, extension_flap_damping, config.with_(runs=4), 5)
    print("\nFlap damping extension (BGP-3, degree 5 — loop regime)")
    print(f"  {'protocol':>10} {'delivery':>9} {'drops':>7} {'conv(s)':>8}")
    for protocol, row in out.items():
        print(
            f"  {protocol:>10} {row['delivery_ratio']:>9.3f} "
            f"{row['drops_no_route']:>7.1f} {row['routing_convergence']:>8.2f}"
        )
    # Damping a single-failure convergence event is at worst neutral and at
    # best loop-suppressing in this regime.
    assert out["bgp3-rfd"]["delivery_ratio"] >= out["bgp3"]["delivery_ratio"] - 1e-9
