"""Figure 4: TTL expirations during convergence vs node degree.

Expected shape (paper Observation 2): RIP has none anywhere; nobody loops at
degree >= 6; below 6 BGP's per-neighbor MRAI makes its loops live longest.
"""

from __future__ import annotations

from repro.experiments.figures import figure4_ttl_expirations
from repro.experiments.report import format_sweep_table

from conftest import run_once


def test_figure4_ttl_expirations(benchmark, config):
    table = run_once(benchmark, figure4_ttl_expirations, config)
    print("\n" + format_sweep_table(table))
    d_hi = max(config.degrees)
    for degree in config.degrees:
        assert table.value("rip", degree) == 0  # RIP drops instead of looping
    for protocol in config.protocols:
        assert table.value(protocol, d_hi) == 0  # rich meshes do not loop
    # MRAI lengthens loops: across the sparse degrees, BGP's worst case is at
    # least BGP-3's, and with enough seeds the degree-5 loops are visible.
    sparse = [d for d in config.degrees if d < 6]
    if sparse:
        worst_bgp = max(table.value("bgp", d) for d in sparse)
        worst_bgp3 = max(table.value("bgp3", d) for d in sparse)
        assert worst_bgp >= worst_bgp3
    if 5 in config.degrees and config.runs >= 4:
        assert table.value("bgp", 5) > 0
        assert table.value("bgp", 5) > table.value("bgp3", 5)
