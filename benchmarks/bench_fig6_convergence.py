"""Figure 6: forwarding-path (a) and network routing (b) convergence times.

Expected shape (paper Observation 4): BGP-3 converges much faster than BGP;
convergence stays above zero at high degree even though drops are ~zero —
convergence time and packet delivery decouple.
"""

from __future__ import annotations

from repro.experiments.figures import figure6_convergence
from repro.experiments.report import format_sweep_table

from conftest import run_once


def test_figure6_convergence(benchmark, config):
    fwd, rt = run_once(benchmark, figure6_convergence, config)
    print("\n" + format_sweep_table(fwd, precision=2))
    print("\n" + format_sweep_table(rt, precision=2))
    for degree in config.degrees:
        assert rt.value("bgp3", degree) < rt.value("bgp", degree)
        # Forwarding-path convergence never exceeds network-wide convergence.
        for protocol in config.protocols:
            assert fwd.value(protocol, degree) <= rt.value(protocol, degree) + 1e-9
    d_hi = max(config.degrees)
    assert rt.value("bgp", d_hi) > 1.0  # still converging while delivery is fine
