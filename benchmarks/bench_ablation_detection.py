"""Ablation: failure-detection delay sensitivity (paper §5 parameter).

The paper asserts its exact detection-delay value "should have little
impact on the results" because it sits far below every protocol timer.
This bench quantifies that: with an alternate-path protocol on the rich
mesh, post-failure losses track rate x detection_delay (the packets sent
into the dead link before anyone knows), nothing more — so any detection
delay well under the routing timers gives the same picture.
"""

from __future__ import annotations

from repro.experiments.figures import ablation_detection_delay

from conftest import run_once

DELAYS = (0.005, 0.05, 0.5, 2.0)


def test_ablation_detection_delay(benchmark, config):
    out = run_once(
        benchmark, ablation_detection_delay, config.with_(runs=3), 6, DELAYS, "dbf"
    )
    print("\nDetection delay sensitivity (DBF, degree 6)")
    print(f"  {'delay(s)':>9} {'drops':>7} {'rate*delay':>11} {'fwd conv(s)':>12}")
    for delay in DELAYS:
        row = out[delay]
        print(
            f"  {delay:>9.3f} {row['total_drops']:>7.1f} "
            f"{row['expected_floor']:>11.1f} {row['forwarding_convergence']:>12.3f}"
        )
    # Losses stay within a couple of packets of the physical floor.
    for delay in DELAYS:
        assert out[delay]["total_drops"] <= out[delay]["expected_floor"] + 3
    # And they do grow once the delay grows (it is the dominant term).
    assert out[2.0]["total_drops"] > out[0.005]["total_drops"]
