"""Ablation: the alternate-path cache (paper §4.1's decisive design factor).

RIP and DBF differ by exactly one design choice — whether a router keeps the
latest vector from every neighbor.  The drop gap between them isolates the
value of alternate-path information.
"""

from __future__ import annotations

from repro.experiments.figures import ablation_alternate_cache
from repro.experiments.report import format_sweep_table

from conftest import run_once


def test_ablation_alternate_cache(benchmark, config):
    table = run_once(benchmark, ablation_alternate_cache, config)
    print("\n" + format_sweep_table(table))
    for degree in config.degrees:
        assert table.value("dbf", degree) <= table.value("rip", degree)
    # The cache's value grows with connectivity: by the highest degree DBF is
    # lossless while RIP still waits on periodic updates.
    d_hi = max(config.degrees)
    assert table.value("dbf", d_hi) < 5
    assert table.value("rip", d_hi) > 20
