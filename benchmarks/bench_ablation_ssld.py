"""Ablation: sender-side vs receiver-side loop detection in BGP.

The paper's implementation discards looping paths at the receiver; SSLD
filters them at the sender.  Routes chosen are identical, but SSLD saves the
messages the receiver would discard.
"""

from __future__ import annotations

from repro.experiments.figures import ablation_ssld

from conftest import run_once


def test_ablation_ssld(benchmark, config):
    out = run_once(benchmark, ablation_ssld, config.with_(runs=4), 4)
    print("\nSSLD ablation (BGP-3, degree 4)")
    print(f"  {'protocol':>10} {'messages':>9} {'drops':>7} {'conv(s)':>8}")
    for protocol, row in out.items():
        print(
            f"  {protocol:>10} {row['messages']:>9.1f} "
            f"{row['drops_no_route'] + row['drops_ttl']:>7.1f} "
            f"{row['routing_convergence']:>8.2f}"
        )
    assert out["bgp3-ssld"]["messages"] <= out["bgp3"]["messages"]
