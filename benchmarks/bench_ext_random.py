"""Extension: the experiment on connected random regular graphs.

Cross-checks that the mesh results are not lattice artifacts: on random
topologies of the same size, the alternate-path protocols still reach ~zero
drops once the degree is rich, while RIP remains periodic-timer-bound.
"""

from __future__ import annotations

from repro.experiments.figures import extension_random_topology
from repro.experiments.report import format_sweep_table

from conftest import run_once


def test_extension_random_topology(benchmark, config):
    table = run_once(
        benchmark, extension_random_topology, config.with_(runs=3), (4, 6)
    )
    print("\n" + format_sweep_table(table))
    for degree in (4, 6):
        assert table.value("dbf", degree) <= table.value("rip", degree)
    assert table.value("dbf", 6) < 10
