"""§1 headline: with the same topology and packet rate, BGP drops several
times more packets during convergence than the 3-second-MRAI variant."""

from __future__ import annotations

from repro.experiments.figures import headline_bgp_vs_bgp3

from conftest import run_once


def test_headline_bgp_vs_bgp3(benchmark, config):
    out = run_once(benchmark, headline_bgp_vs_bgp3, config.with_(runs=4), 5)
    print(
        f"\nHeadline (degree 5): BGP dropped {out['bgp']:.0f} packets, "
        f"BGP-3 dropped {out['bgp3']:.0f} (ratio {out['ratio']:.1f}x)"
    )
    assert out["bgp"] > out["bgp3"]
    assert out["ratio"] > 2.0
