"""Extension: larger network sizes (paper §6's first future-work step).

Sweeps the mesh side length at fixed degree 4.  RIP's convergence loss is
clocked by its periodic interval, not by network size; the alternate-path
protocol's delivery stays high at every size because recovery is local.
"""

from __future__ import annotations

from repro.experiments.figures import extension_scale

from conftest import run_once

SIZES = ((5, 5), (7, 7), (10, 10))


def test_extension_scale(benchmark, config):
    out = run_once(
        benchmark, extension_scale, config.with_(runs=2), SIZES, 4,
        ("rip", "dbf", "bgp3"),
    )
    print("\nScale extension (degree 4): mesh size sweep")
    print(f"  {'proto':>6} {'nodes':>6} {'drops':>7} {'delivery':>9} {'conv(s)':>8}")
    for (protocol, n), row in sorted(out.items()):
        print(
            f"  {protocol:>6} {n:>6} {row['drops_no_route']:>7.1f} "
            f"{row['delivery_ratio']:>9.3f} {row['routing_convergence']:>8.2f}"
        )
    for rows, cols in SIZES:
        n = rows * cols
        # RIP always the worst; alternate-path protocols deliver >95% at any size.
        assert out[("rip", n)]["drops_no_route"] >= out[("dbf", n)]["drops_no_route"]
        assert out[("dbf", n)]["delivery_ratio"] > 0.9
