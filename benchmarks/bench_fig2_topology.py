"""Figure 2: the Baran regular-mesh topology family (degrees 4/5/6)."""

from __future__ import annotations

from repro.experiments.figures import figure2_topologies

from conftest import run_once


def test_figure2_topologies(benchmark):
    out = run_once(benchmark, figure2_topologies, 7, 7, (4, 5, 6))
    print("\nFigure 2: regular 7x7 meshes")
    for degree, info in sorted(out.items()):
        print(
            f"  degree {degree}: {info['n_nodes']} nodes, {info['n_links']} links, "
            f"degree histogram {sorted(info['degree_histogram'].items())}"
        )
    assert set(out) == {4, 5, 6}
    assert all(info["connected"] for info in out.values())
    # Richer meshes have strictly more links (the paper's redundancy knob).
    assert out[4]["n_links"] < out[5]["n_links"] < out[6]["n_links"]
