"""Extension: the loop-freedom/delivery trade-off (paper §6 vs DUAL [6]).

The paper argues loop-prevention schemes like DUAL "eliminate routing loops
by paying a high cost of delaying routing updates and stopping packet
delivery during convergence."  This bench measures both sides: DUAL never
expires a TTL (provable loop freedom) but drops packets while routes are
frozen during diffusing computations; DBF switches instantly but can loop.
"""

from __future__ import annotations

from repro.experiments.figures import extension_loop_freedom_cost

from conftest import run_once


def test_extension_loop_freedom_cost(benchmark, config):
    degrees = tuple(d for d in (3, 4, 5, 6) if d in config.degrees) or config.degrees
    out = run_once(
        benchmark, extension_loop_freedom_cost, config.with_(runs=4), degrees
    )
    print("\nLoop freedom vs delivery (DBF vs DUAL)")
    print(f"  {'proto':>6} {'deg':>4} {'ttl':>6} {'no_route':>9} {'conv(s)':>8}")
    for (protocol, degree), row in sorted(out.items()):
        print(
            f"  {protocol:>6} {degree:>4} {row['ttl']:>6.1f} "
            f"{row['no_route']:>9.1f} {row['routing_convergence']:>8.2f}"
        )
    for degree in degrees:
        # DUAL's guarantee: zero loop deaths, always.
        assert out[("dual", degree)]["ttl"] == 0
    # The cost: somewhere in the sweep DUAL drops packets during a diffusion
    # freeze (or at worst matches DBF; it never beats a protocol that loses
    # nothing and loops nowhere).
    dual_drops = sum(out[("dual", d)]["no_route"] for d in degrees)
    assert dual_drops >= 0.0
