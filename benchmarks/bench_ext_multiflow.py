"""Extension (paper §6): multiple flows with overlapping failures.

Three concurrent sender/receiver pairs, two staggered on-path failures whose
convergence periods overlap.  Aggregate and worst-flow delivery ratios per
protocol.
"""

from __future__ import annotations

from repro.experiments.figures import extension_multiflow

from conftest import run_once


def test_extension_multiflow(benchmark, config):
    out = run_once(
        benchmark, extension_multiflow, config.with_(runs=3), 4, 3, 2
    )
    print("\nMulti-flow extension (3 flows, 2 overlapping failures, degree 4)")
    print(f"  {'protocol':>9} {'delivery':>9} {'worst flow':>11} {'drops':>7}")
    for protocol, row in out.items():
        print(
            f"  {protocol:>9} {row['delivery_ratio']:>9.3f} "
            f"{row['worst_flow_ratio']:>11.3f} {row['convergence_drops']:>7.1f}"
        )
    assert out["dbf"]["delivery_ratio"] >= out["rip"]["delivery_ratio"]
    for row in out.values():
        assert 0.0 <= row["worst_flow_ratio"] <= row["delivery_ratio"] + 1e-9
