"""Figure 5: instantaneous throughput vs time (degrees 3, 4, 6).

Expected shape (paper Observation 3): a dip at the failure; RIP recovers on
its ~30 s periodic cycle, DBF within seconds, BGP around its MRAI; at degree
6 the dip disappears for everything but RIP.
"""

from __future__ import annotations

from repro.experiments.figures import figure5_throughput
from repro.experiments.report import format_series_grid

from conftest import run_once


def test_figure5_throughput(benchmark, config):
    degrees = tuple(d for d in (3, 4, 6) if d in config.degrees) or config.degrees[:1]
    series = run_once(benchmark, figure5_throughput, config, degrees)
    print(
        "\n"
        + format_series_grid(
            series,
            "Figure 5: instantaneous throughput (pkt/s), failure at t=0",
            t_min=-5,
            t_max=50,
            step=5,
        )
    )
    rate = config.rate_pps
    lo = min(degrees)
    # Sparse RIP: deep dip, then recovery by the end of the window.
    rip = series[("rip", lo)]
    assert rip.window(0.0, 5.0).min_value() < 0.5 * rate
    assert rip.window(45.0, 55.0).mean_value() > 0.7 * rate
    if 6 in degrees:
        for protocol in ("dbf", "bgp3"):
            post = series[(protocol, 6)].window(0.0, 20.0)
            assert post.mean_value() > 0.85 * rate
