#!/usr/bin/env python3
"""Transient forwarding loops under the microscope (paper §5.2 and §5.5).

Runs BGP on the degree-5 mesh with per-packet hop recording until a seed
produces a loop on the data path, then dissects it: the loop cycle, how many
packets died of TTL expiry inside it, how many escaped, and how inflated the
escapees' delays were — the mechanism behind Figure 7's delay oscillation.

Run:  python examples/loop_analysis.py
"""

from repro import ExperimentConfig, run_scenario


def main() -> None:
    config = ExperimentConfig.quick().with_(
        record_paths=True, post_fail_window=60.0
    )

    print("Hunting for a seed whose failure creates a forwarding loop ...")
    for seed in range(1, 30):
        result = run_scenario("bgp", degree=5, seed=seed, config=config)
        report = result.loop_report
        looped = result.drops_ttl > 0 or (report and report.escaped_loop > 0)
        if not looped:
            continue

        print(f"\nseed {seed}: loop found")
        print(f"  failed link            {result.failed_link}")
        print(f"  pre-failure path       {' -> '.join(map(str, result.pre_failure_path))}")
        print(f"  packets sent           {result.sent}")
        print(f"  delivered              {result.delivered}")
        print(f"  died of TTL expiry     {result.drops_ttl}")
        if report:
            print(f"  escaped the loop       {report.escaped_loop}")
            if report.loop_cycles:
                cycle = report.loop_cycles[0]
                print(f"  loop cycle             {' -> '.join(map(str, cycle))}")
            print(f"  max extra hops         {report.max_extra_hops}")
        print(f"  network convergence    {result.routing_convergence:.1f} s")
        print(
            "\nWhy it persists: both loop members re-selected stale alternate\n"
            "paths from their Adj-RIB-in, and the announcements that would\n"
            "correct them are pinned behind per-neighbor MRAI timers (~30 s\n"
            "for standard BGP).  Compare with bgp3 (MRAI ~3 s):"
        )
        fast = run_scenario("bgp3", degree=5, seed=seed, config=config)
        print(
            f"  bgp3 same seed: TTL drops {fast.drops_ttl}, "
            f"convergence {fast.routing_convergence:.1f} s"
        )
        return
    print("No loop observed in seeds 1-29 (try a longer window).")


if __name__ == "__main__":
    main()
