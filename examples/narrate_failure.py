#!/usr/bin/env python3
"""Narrate one convergence event, the way the paper reads its trace files.

Builds a small mesh, warm-starts a protocol of your choice, fails a link on
the live path, and prints the annotated timeline: failure, detection,
per-node route switches, forwarding-path evolution (including loops), and
drop bursts.

Run:  python examples/narrate_failure.py [protocol] [degree] [seed]
      e.g. python examples/narrate_failure.py bgp 5 4     # an MRAI loop
"""

import sys

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import make_protocol_factory, _pick_endpoints, _pick_failed_link
from repro.metrics.convergence import ConvergenceTracker
from repro.metrics.narrate import build_timeline, format_timeline
from repro.net.dynamics import LinkScheduler
from repro.net.network import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceBus
from repro.topology.generators import attach_host
from repro.topology.mesh import regular_mesh
from repro.topology.render import render_mesh


def main() -> None:
    protocol = sys.argv[1] if len(sys.argv) > 1 else "dbf"
    degree = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    config = ExperimentConfig.quick().with_(post_fail_window=60.0)
    rng_streams = RngStreams(seed)
    scenario_rng = rng_streams.stream("scenario")
    topo = regular_mesh(config.rows, config.cols, degree)
    sr, rr = _pick_endpoints(scenario_rng, config.rows, config.cols)
    sender = attach_host(topo, sr)
    receiver = attach_host(topo, rr)
    pre = topo.shortest_path(sender, receiver)
    failed = _pick_failed_link(scenario_rng, pre, sender, receiver)

    print(f"protocol={protocol} degree={degree} seed={seed}")
    print(f"flow: host {sender} (router {sr}) -> host {receiver} (router {rr})")
    print(f"failing link {failed} at t=10.0 (detected +50 ms)\n")
    print(render_mesh(topo, config.rows, config.cols, failed_link=failed))

    sim = Simulator()
    bus = TraceBus(keep_routes=True)
    net = Network(sim, topo, bus)
    net.attach_protocols(
        make_protocol_factory(protocol, net, rng_streams, topo, config)
    )
    for node in net.iter_nodes():
        node.protocol.warm_start(topo)
    tracker = ConvergenceTracker(bus, dest=receiver, src=sender)
    tracker.seed_from_network(net)
    LinkScheduler(sim, net, detection_delay=0.05).fail_link(*failed, at=10.0)
    sim.run(until=70.0)

    events = build_timeline(
        route_changes=bus.route_changes,
        link_events=bus.link_events,
        snapshots=tracker.snapshots,
        dest=receiver,
        since=9.9,
    )
    print(f"\nConvergence timeline (t=0 is the failure; route events are for "
          f"destination {receiver} only):\n")
    print(format_timeline(events, origin=10.0))


if __name__ == "__main__":
    main()
