#!/usr/bin/env python3
"""Figure 2 as ASCII art: the Baran regular-mesh family, degrees 3-8.

Shows each construction (brick lattice, grid, alternating / full diagonals,
alternating / full anti-diagonals) with a failed link marked the way the
paper's Figure 2 marks it, plus the structural stats the harness verifies.

Run:  python examples/topology_gallery.py
"""

from repro.topology import (
    check_interior_degree,
    degree_histogram,
    interior_nodes,
    regular_mesh,
    render_mesh,
)


def main() -> None:
    rows = cols = 7
    for degree in range(3, 9):
        topo = regular_mesh(rows, cols, degree)
        interior = interior_nodes(topo, rows, cols)
        check_interior_degree(topo, interior, degree)
        # Mark a vertical link in the middle of the mesh, like Figure 2.
        failed = (23, 30)
        print(f"=== interior degree {degree}: {topo.n_links} links "
              f"(histogram {sorted(degree_histogram(topo).items())}) ===")
        print(render_mesh(topo, rows, cols, failed_link=failed))
        print()
    print("Legend: -- horizontal, | vertical, \\ main diagonal, / anti-diagonal,")
    print("        X both diagonals, xx / x = the failed link.")


if __name__ == "__main__":
    main()
