#!/usr/bin/env python3
"""End-to-end transport through routing convergence (paper §6 future work).

A window/timeout reliable transfer (the paper's [25]-style flow model) runs
across the degree-4 mesh while a link on its path fails.  The IP-layer
delivery gap each routing protocol leaves becomes an end-to-end stall:
RIP's ~periodic-interval blackhole costs tens of seconds and a burst of
retransmissions; DBF and BGP-3 cost roughly one retransmission timeout.

Run:  python examples/tcp_over_convergence.py
"""

from repro import ExperimentConfig
from repro.experiments import transport_with_baseline


def main() -> None:
    config = ExperimentConfig.quick()
    segments = 8000  # long enough that the transfer straddles the failure

    print(f"Transferring {segments} segments across a failing degree-4 mesh\n")
    print(f"{'protocol':>9} {'done(s)':>9} {'baseline':>9} {'stall':>7} {'retx':>6} {'timeouts':>9}")
    for protocol in ("rip", "dbf", "bgp3", "bgp"):
        r = transport_with_baseline(protocol, degree=4, seed=1, config=config,
                                    total_segments=segments)
        done = r.stats.completed_at or float("nan")
        base = r.baseline_completion or float("nan")
        stall = r.stall_penalty if r.stall_penalty is not None else float("nan")
        print(
            f"{protocol:>9} {done:>9.1f} {base:>9.1f} {stall:>7.1f} "
            f"{r.stats.retransmissions:>6} {r.stats.timeouts:>9}"
        )
    print(
        "\nThe stall column is the end-to-end cost of the convergence gap:\n"
        "alternate-path protocols (DBF/BGP/BGP-3) hide the failure almost\n"
        "entirely; RIP exposes its wait for the next periodic update."
    )


if __name__ == "__main__":
    main()
