#!/usr/bin/env python3
"""Multiple flows, overlapping failures (paper §6 future work).

Three sender/receiver pairs stream simultaneously; two links fail five
seconds apart so the second failure lands while the network is still
converging from the first.  Per-flow and aggregate delivery show how each
protocol's convergence machinery copes with compounded churn.

Run:  python examples/multiflow_failures.py
"""

from repro import ExperimentConfig
from repro.experiments import run_multiflow_scenario


def main() -> None:
    config = ExperimentConfig.quick().with_(post_fail_window=60.0)
    seeds = (1, 2, 3)
    print("3 flows, 2 overlapping failures (5 s apart), degree-4 mesh\n")
    print(f"{'proto':>6} {'delivery':>9} {'worst flow':>11} {'no_route':>9} {'ttl':>6}")
    for protocol in ("rip", "dbf", "dual", "bgp", "bgp3"):
        ratios, worst, nr, ttl = [], [], 0, 0
        for seed in seeds:
            r = run_multiflow_scenario(
                protocol, 4, seed, config, n_flows=3, n_failures=2
            )
            ratios.append(r.delivery_ratio)
            worst.append(r.worst_flow_ratio)
            nr += r.drops_no_route
            ttl += r.drops_ttl
        n = len(seeds)
        print(
            f"{protocol:>6} {sum(ratios)/n:>9.3f} {sum(worst)/n:>11.3f} "
            f"{nr/n:>9.1f} {ttl/n:>6.1f}"
        )
    print(
        "\nThe worst-flow column matters most: aggregate ratios hide a flow\n"
        "that blackholed for its whole convergence period."
    )


if __name__ == "__main__":
    main()
