#!/usr/bin/env python3
"""The paper's core result at example scale: Figures 3 and 4.

Sweeps node degree 3-6 for RIP, DBF, BGP and BGP-3 (a few seeds each) and
prints the two headline tables: packet drops due to no route, and TTL
expirations caused by transient forwarding loops.

Expected shape (paper Observations 1-2):
  * drops fall as the mesh gets denser; at degree 6 the alternate-path
    protocols (DBF/BGP/BGP-3) lose ~nothing while RIP barely improves;
  * RIP never loops (it drops instead); at degree 5 BGP's 30 s MRAI makes
    its loops live an order of magnitude longer than BGP-3's.

Run:  python examples/convergence_study.py   (takes a minute or two)
"""

from repro import ExperimentConfig
from repro.experiments import (
    figure3_drops_no_route,
    figure4_ttl_expirations,
    format_sweep_table,
)


def main() -> None:
    # 5 seeds: the degree-5 loop layouts (the Figure 4 signal) need a few
    # failure placements to show up.
    config = ExperimentConfig.quick().with_(runs=5, post_fail_window=60.0)

    print("Running degree sweep (4 protocols x 4 degrees x 5 seeds) ...\n")
    drops = figure3_drops_no_route(config)
    print(format_sweep_table(drops))

    print()
    ttl = figure4_ttl_expirations(config)
    print(format_sweep_table(ttl))

    print("\nReading the tables:")
    d_hi = max(config.degrees)
    rip_hi = drops.value("rip", d_hi)
    dbf_hi = drops.value("dbf", d_hi)
    print(
        f"  at degree {d_hi}: RIP still drops ~{rip_hi:.0f} packets per failure, "
        f"DBF ~{dbf_hi:.0f} — the alternate-path cache is the decisive design choice."
    )
    bgp5, bgp35 = ttl.value("bgp", 5), ttl.value("bgp3", 5)
    if bgp5 or bgp35:
        print(
            f"  at degree 5: BGP kills ~{bgp5:.0f} packets in MRAI-lengthened loops "
            f"vs ~{bgp35:.0f} for BGP-3."
        )


if __name__ == "__main__":
    main()
