#!/usr/bin/env python3
"""The paper's future-work extension: add a link-state protocol (SPF).

The paper compares three distance/path-vector protocols and asks (§6) how a
link-state protocol would fare.  SPF floods failure LSAs with no damping
timers and recomputes shortest paths from global knowledge — so it both
switches instantly (like DBF) and propagates failure news fastest.

This example sweeps degree 3-6 and prints drops and convergence times for
SPF next to the paper's protocols.

Run:  python examples/linkstate_extension.py
"""

from repro import ExperimentConfig
from repro.experiments import format_sweep_table, run_point
from repro.experiments.figures import SweepTable


def main() -> None:
    config = ExperimentConfig.quick().with_(
        runs=3, protocols=("rip", "dbf", "bgp3", "spf"), post_fail_window=60.0
    )

    drops = SweepTable(
        title="Extension: drops (no route) with SPF in the mix",
        protocols=config.protocols,
        degrees=config.degrees,
    )
    conv = SweepTable(
        title="Extension: network routing convergence time (s)",
        protocols=config.protocols,
        degrees=config.degrees,
    )
    for protocol in config.protocols:
        for degree in config.degrees:
            point = run_point(protocol, degree, config)
            drops.values[(protocol, degree)] = point.mean_drops_no_route
            conv.values[(protocol, degree)] = point.mean_routing_convergence

    print(format_sweep_table(drops))
    print()
    print(format_sweep_table(conv, precision=2))
    print(
        "\nSPF combines DBF-like instant switch-over with the fastest failure\n"
        "propagation (no damping timers), at the cost of flooding every\n"
        "topology change to every router."
    )


if __name__ == "__main__":
    main()
