#!/usr/bin/env python3
"""A full fail-and-repair cycle: the unexamined half of convergence.

The paper studies what happens after a failure; this example also watches
the restoration: 15 seconds after the failure the link comes back, and each
protocol migrates (or legitimately declines to migrate) back to a
shortest-length path.

Run:  python examples/repair_cycle.py
"""

from repro import ExperimentConfig
from repro.experiments import run_repair_scenario


def main() -> None:
    config = ExperimentConfig.quick().with_(post_fail_window=60.0)
    print("Degree-4 mesh: fail a live-path link at t=0, repair it at t=15\n")
    print(f"{'proto':>6} {'delivery':>9} {'back on shortest':>17} {'restore(s)':>11}")
    for protocol in ("rip", "dbf", "dual", "bgp3", "bgp", "spf"):
        r = run_repair_scenario(protocol, degree=4, seed=1, config=config,
                                repair_after=15.0)
        restore = (
            f"{r.restoration_convergence:.2f}"
            if r.restoration_convergence is not None
            else "never"
        )
        print(
            f"{protocol:>6} {r.delivery_ratio:>9.3f} "
            f"{str(r.back_on_shortest_path):>17} {restore:>11}"
        )
    print(
        "\nSPF restores the moment the LSA flood lands; BGP's re-announcement\n"
        "rides its ~30 s MRAI; RIP and DUAL may keep an equal-cost detour\n"
        "(neither switches on ties) — which counts as restored, since the\n"
        "path length is back to the pre-failure optimum."
    )


if __name__ == "__main__":
    main()
