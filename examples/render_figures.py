#!/usr/bin/env python3
"""Regenerate the paper's figures as SVG files.

Runs the figure harnesses at example scale and writes one SVG per figure
into ``./figures/`` (created if missing).  Pass ``--paper-scale`` for the
full 10-seed sweep (slow).

Run:  python examples/render_figures.py [--paper-scale] [--out DIR]
"""

import argparse
import os

from repro import ExperimentConfig
from repro.experiments import (
    figure3_drops_no_route,
    figure4_ttl_expirations,
    figure5_throughput,
    figure6_convergence,
    figure7_delay,
    save_svg,
    series_chart,
    sweep_chart,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--out", default="figures")
    args = parser.parse_args()

    config = (
        ExperimentConfig.paper()
        if args.paper_scale
        else ExperimentConfig.quick().with_(runs=4, post_fail_window=60.0)
    )
    os.makedirs(args.out, exist_ok=True)

    def emit(name: str, svg: str) -> None:
        path = os.path.join(args.out, name)
        save_svg(svg, path)
        print(f"wrote {path}")

    print("Figure 3 (drops vs degree) ...")
    emit(
        "figure3_drops.svg",
        sweep_chart(figure3_drops_no_route(config), ylabel="packet drops (no route)"),
    )

    print("Figure 4 (TTL expirations vs degree) ...")
    emit(
        "figure4_ttl.svg",
        sweep_chart(figure4_ttl_expirations(config), ylabel="TTL expirations"),
    )

    print("Figure 5 (throughput vs time) ...")
    degrees = tuple(d for d in (3, 4, 6) if d in config.degrees)
    emit(
        "figure5_throughput.svg",
        series_chart(
            figure5_throughput(config, degrees),
            title="Figure 5: instantaneous throughput (failure at t=0)",
            ylabel="packets/second",
            t_min=-5,
            t_max=50,
        ),
    )

    print("Figure 6 (convergence vs degree) ...")
    fwd, rt = figure6_convergence(config)
    emit("figure6a_forwarding.svg", sweep_chart(fwd, ylabel="seconds"))
    emit("figure6b_routing.svg", sweep_chart(rt, ylabel="seconds"))

    print("Figure 7 (delay vs time) ...")
    degrees = tuple(d for d in (4, 5, 6) if d in config.degrees)
    emit(
        "figure7_delay.svg",
        series_chart(
            figure7_delay(config, degrees),
            title="Figure 7: instantaneous packet delay (failure at t=0)",
            ylabel="seconds",
            t_min=-5,
            t_max=50,
        ),
    )
    print("done.")


if __name__ == "__main__":
    main()
