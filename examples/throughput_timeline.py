#!/usr/bin/env python3
"""Figure 5 at example scale: instantaneous throughput through a failure.

Runs RIP, DBF, BGP and BGP-3 on the degree-3 mesh (sparse: the dip is
deepest) and the degree-6 mesh (dense: the dip disappears for everyone but
RIP), then renders ASCII throughput curves with the failure at t=0.

Run:  python examples/throughput_timeline.py
"""

from repro import ExperimentConfig
from repro.experiments import format_ascii_curve, run_point


def main() -> None:
    config = ExperimentConfig.quick().with_(runs=3, post_fail_window=60.0)

    for degree in (3, 6):
        print(f"=== node degree {degree} " + "=" * 40)
        for protocol in ("rip", "dbf", "bgp3", "bgp"):
            point = run_point(protocol, degree, config)
            series = point.mean_throughput()
            title = (
                f"{protocol.upper():5s} degree {degree} — throughput (pkt/s), "
                f"failure at t=0"
            )
            print(format_ascii_curve(series, title, width=66, height=8))
            dip = series.window(0.0, 10.0).min_value()
            recover = series.window(40.0, 55.0).mean_value()
            print(
                f"      dip min {dip:5.1f} pkt/s in first 10 s; "
                f"mean {recover:5.1f} pkt/s at 40-55 s\n"
            )


if __name__ == "__main__":
    main()
