#!/usr/bin/env python3
"""Quickstart: one convergence experiment, end to end.

Builds the paper's 7x7 degree-4 mesh, attaches a sender (first row) and a
receiver (last row), warm-starts DBF everywhere, streams 20 pkt/s, fails one
link on the active shortest path, and reports what happened to the packets.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, run_scenario


def main() -> None:
    config = ExperimentConfig.quick()
    result = run_scenario("dbf", degree=4, seed=1, config=config)

    print("Scenario")
    print(f"  topology            7x7 regular mesh, interior degree 4")
    print(f"  sender -> receiver  host {result.sender} -> host {result.receiver}")
    print(f"  pre-failure path    {' -> '.join(map(str, result.pre_failure_path))}")
    print(f"  failed link         {result.failed_link} (at t=0, detected +50 ms)")
    if result.expected_final_path:
        print(f"  expected new path   {' -> '.join(map(str, result.expected_final_path))}")

    print("\nPacket delivery")
    print(f"  sent                {result.sent}")
    print(f"  delivered           {result.delivered}  ({result.delivery_ratio:.1%})")
    print(f"  drops: no route     {result.drops_no_route}")
    print(f"  drops: TTL expired  {result.drops_ttl}")
    print(f"  drops: on dead link {result.drops_link_down}")
    print(f"  drops: queue        {result.drops_queue}")

    print("\nConvergence (seconds after failure detection)")
    print(f"  forwarding path     {result.forwarding_convergence:.3f}")
    print(f"  network routing     {result.routing_convergence:.3f}")
    print(f"  settled on expected {result.converged_to_expected}")
    print(f"  transient paths     {result.transient_path_count}")


if __name__ == "__main__":
    main()
