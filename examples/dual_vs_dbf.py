#!/usr/bin/env python3
"""Loop freedom vs instant switch-over: DUAL against DBF (paper §6 / [6]).

DBF keeps alternate paths and switches the moment a failure is detected —
but its alternates are unverified, so transient loops are possible.  DUAL
(Garcia-Luna-Aceves' diffusing update algorithm) only ever switches to a
*feasible* successor and freezes the route through a diffusing computation
otherwise — provably loop-free, at the price of unreachability during the
diffusion.  This example measures both sides of the bargain.

Run:  python examples/dual_vs_dbf.py
"""

from repro import ExperimentConfig
from repro.experiments import run_point


def main() -> None:
    config = ExperimentConfig.quick().with_(runs=4, post_fail_window=60.0)
    print("Single link failure on the active path, 7x7 mesh, 4 seeds/point\n")
    print(f"{'proto':>6} {'deg':>4} {'ttl(loops)':>11} {'no_route':>9} "
          f"{'conv(s)':>8} {'delivery':>9}")
    for protocol in ("dbf", "dual"):
        for degree in (3, 4, 5, 6):
            p = run_point(protocol, degree, config)
            print(
                f"{protocol:>6} {degree:>4} {p.mean_drops_ttl:>11.1f} "
                f"{p.mean_drops_no_route:>9.1f} {p.mean_routing_convergence:>8.2f} "
                f"{p.mean_delivery_ratio:>9.3f}"
            )
    print(
        "\nDUAL's column of zero TTL deaths is its provable guarantee; its\n"
        "no-route drops are packets caught in a frozen route during a\n"
        "diffusing computation.  On this fast mesh the diffusions finish in\n"
        "milliseconds, so the paper's 'high cost' criticism of [6] applies\n"
        "to slower, wider networks — the harness lets you test exactly that\n"
        "by scaling link delay in the topology."
    )


if __name__ == "__main__":
    main()
