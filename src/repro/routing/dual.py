"""DUAL — loop-free distance vector via diffusing computations.

The paper's §2/§6 discuss Garcia-Luna-Aceves' DUAL ([6]) as the archetype of
the opposite design philosophy: it *guarantees* loop freedom by running a
diffusing computation before ever switching to a longer path — "the routing
table is frozen and the affected destinations are unreachable until the
diffusion process completes."  The paper argues this buys loop freedom at
the cost of packet delivery during convergence; this implementation makes
that trade-off measurable inside the same harness.

Implemented semantics (EIGRP-style, simplified where noted):

* per-destination state: neighbor distance table, successor, current
  distance, and **feasible distance** (FD) — the lowest distance ever
  attained since the last diffusion for that destination;
* **feasibility condition** (source node condition): neighbor ``n`` may
  become successor only if its advertised distance is strictly below FD —
  this is what provably prevents loops;
* a change that leaves some feasible successor is handled by a **local
  computation** (instant switch, like DBF);
* a change that leaves none triggers a **diffusing computation**: QUERY to
  every up neighbor, route frozen (unreachable if the old successor's link
  died — the failure case the paper discusses), REPLYs awaited, then a
  fresh selection with FD reset;
* a node queried by its own successor that lacks a feasible successor joins
  the diffusion and defers its REPLY until its own diffusion completes;
* messages ride reliable channels (EIGRP's RTP role), so no periodic
  refresh is needed.

Simplifications: one outstanding diffusion per destination (inputs arriving
while active update the distance table and are folded in at completion);
no stuck-in-active timer.  Both are invisible to single-failure experiments
and noted here for honesty.

Like EIGRP (and RIP), DUAL needs a **maximum distance** to resolve
partitions: two nodes cut off from a destination otherwise ratchet each
other's distance upward through alternating diffusions.  Distances at or
above ``max_distance`` are treated as unreachable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

from ..net.channels import ReliableChannel
from ..net.network import Network
from ..net.node import Node
from ..net.packet import CONTROL_HEADER_BYTES
from ..sim.rng import RngStreams
from ..topology.graph import Topology, all_shortest_path_trees
from .base import RoutingProtocol

__all__ = ["DualUpdate", "DualQuery", "DualReply", "DualProtocol"]

INFINITY = math.inf

#: Bytes per (destination, distance) entry in a DUAL message.
DUAL_ENTRY_BYTES = 12


@dataclass(frozen=True)
class DualUpdate:
    """Distance advertisement: (dest, distance) pairs."""

    routes: tuple[tuple[int, float], ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + DUAL_ENTRY_BYTES * len(self.routes)


@dataclass(frozen=True)
class DualQuery:
    """Diffusing-computation query: the sender's (frozen) distances."""

    routes: tuple[tuple[int, float], ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + DUAL_ENTRY_BYTES * len(self.routes)


@dataclass(frozen=True)
class DualReply:
    """Reply to a query: the sender's distances after its own processing."""

    routes: tuple[tuple[int, float], ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + DUAL_ENTRY_BYTES * len(self.routes)


class _DestState:
    """Per-destination DUAL state at one router."""

    __slots__ = (
        "successor",
        "distance",
        "feasible_distance",
        "active",
        "pending_replies",
        "deferred_reply_to",
    )

    def __init__(self) -> None:
        self.successor: Optional[int] = None
        self.distance: float = INFINITY
        self.feasible_distance: float = INFINITY
        self.active = False
        self.pending_replies: set[int] = set()
        self.deferred_reply_to: Optional[int] = None


class DualProtocol(RoutingProtocol):
    """Loop-free distance vector with diffusing computations."""

    name = "dual"

    def __init__(
        self,
        node: Node,
        rng_streams: RngStreams,
        network: Network,
        max_distance: float = 64.0,
    ) -> None:
        super().__init__(node, rng_streams)
        self._network = network
        if max_distance <= 0:
            raise ValueError("max_distance must be positive")
        self.max_distance = max_distance
        #: neighbor -> dest -> advertised distance.
        self.neighbor_dist: dict[int, dict[int, float]] = {}
        self.states: dict[int, _DestState] = {}
        self._channels: dict[int, ReliableChannel] = {}
        # Per-event outgoing batches: nbr -> {dest: dist} per message kind.
        self._batch: dict[str, dict[int, dict[int, float]]] = {
            "update": {},
            "query": {},
            "reply": {},
        }
        self.diffusions_started = 0

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        for nbr in self.node.up_neighbors():
            self._open_session(nbr)
        state = self._state(self.node.id)
        state.distance = 0.0
        state.feasible_distance = 0.0
        for nbr in self.node.up_neighbors():
            self._queue("update", nbr, self.node.id, 0.0)
        self._flush()

    def warm_start(self, topology: Topology) -> None:
        trees = all_shortest_path_trees(topology)
        graph = topology.to_networkx()

        def cost_of(path: list[int]) -> float:
            return float(
                sum(
                    graph.edges[path[i], path[i + 1]].get("weight", 1)
                    for i in range(len(path) - 1)
                )
            )

        for nbr in self.node.up_neighbors():
            self._open_session(nbr)
            self.neighbor_dist[nbr] = {
                dest: cost_of(path) for dest, path in trees[nbr].items()
            }
        my_tree = trees[self.node.id]
        for dest, path in my_tree.items():
            state = self._state(dest)
            if dest == self.node.id:
                state.distance = 0.0
                state.feasible_distance = 0.0
                continue
            state.distance = cost_of(path)
            state.feasible_distance = state.distance
            state.successor = path[1]
            self.node.set_next_hop(dest, path[1])

    def _open_session(self, neighbor: int) -> None:
        if neighbor in self._channels:
            return
        link = self.node.link_to(neighbor)
        self._channels[neighbor] = ReliableChannel(
            self.sim,
            link,
            self.node.id,
            deliver=lambda payload, nbr=neighbor: self._deliver_to(nbr, payload),
        )
        self.neighbor_dist.setdefault(neighbor, {})

    def _deliver_to(self, neighbor: int, payload: Any) -> None:
        peer = self._network.node(neighbor).protocol
        if peer is not None:
            peer.apply_message(payload, self.node.id)

    def _state(self, dest: int) -> _DestState:
        state = self.states.get(dest)
        if state is None:
            state = _DestState()
            self.states[dest] = state
        return state

    # ------------------------------------------------------------------ events

    def handle_message(self, payload: Any, from_node: int) -> None:
        if from_node not in self._channels:
            return
        if isinstance(payload, DualUpdate):
            for dest, dist in payload.routes:
                self._on_update(dest, dist, from_node)
        elif isinstance(payload, DualQuery):
            for dest, dist in payload.routes:
                self._on_query(dest, dist, from_node)
        elif isinstance(payload, DualReply):
            for dest, dist in payload.routes:
                self._on_reply(dest, dist, from_node)
        else:
            raise TypeError(f"dual got unexpected payload {type(payload).__name__}")
        self._flush()

    def handle_link_down(self, neighbor: int) -> None:
        self._channels.pop(neighbor, None)
        self.neighbor_dist.pop(neighbor, None)
        for kind in self._batch.values():
            kind.pop(neighbor, None)
        for dest in sorted(self.states):
            state = self.states[dest]
            if state.active:
                # The dead neighbor can never reply now.
                state.pending_replies.discard(neighbor)
                if state.deferred_reply_to == neighbor:
                    state.deferred_reply_to = None
                self._maybe_complete(dest)
            elif state.successor == neighbor:
                self._reconsider(dest)
        self._flush()

    def handle_link_up(self, neighbor: int) -> None:
        self._open_session(neighbor)
        for dest, state in sorted(self.states.items()):
            if state.distance < INFINITY and not state.active:
                self._queue("update", neighbor, dest, state.distance)
        self._flush()

    # --------------------------------------------------------------- dual core

    def _on_update(self, dest: int, dist: float, from_node: int) -> None:
        if dest == self.node.id:
            return
        self.neighbor_dist[from_node][dest] = dist
        state = self._state(dest)
        if state.active:
            return  # folded in at diffusion completion
        if from_node == state.successor or self._would_improve(dest, state):
            self._reconsider(dest)

    def _on_query(self, dest: int, dist: float, from_node: int) -> None:
        if dest == self.node.id:
            # We are the destination: distance 0, always feasible.
            self._queue("reply", from_node, dest, 0.0)
            return
        self.neighbor_dist[from_node][dest] = dist
        state = self._state(dest)
        if state.active:
            # Simplification: answer with the frozen distance; our own
            # diffusion will advertise the final answer via UPDATE.
            self._queue("reply", from_node, dest, state.distance)
            return
        if from_node != state.successor:
            self._reconsider(dest)
            self._queue("reply", from_node, dest, state.distance)
            return
        # Query from our successor: we are affected.
        if self._local_computation(dest, state):
            self._queue("reply", from_node, dest, state.distance)
        else:
            self._start_diffusion(dest, state, deferred_reply_to=from_node)

    def _on_reply(self, dest: int, dist: float, from_node: int) -> None:
        if dest == self.node.id:
            return
        self.neighbor_dist[from_node][dest] = dist
        state = self._state(dest)
        if state.active:
            state.pending_replies.discard(from_node)
            self._maybe_complete(dest)

    # ----------------------------------------------------------- computations

    def _candidates(self, dest: int) -> list[tuple[float, int]]:
        """(distance via n, n) for every up neighbor, sorted.  Distances at
        or beyond ``max_distance`` count as unreachable (partition bound)."""
        out = []
        for nbr in sorted(self._channels):
            advertised = self.neighbor_dist.get(nbr, {}).get(dest, INFINITY)
            link = self.node.links.get(nbr)
            if link is None or not link.up:
                continue
            via = advertised + link.spec.cost
            if via >= self.max_distance:
                continue
            out.append((via, nbr))
        out.sort()
        return out

    def _would_improve(self, dest: int, state: _DestState) -> bool:
        candidates = self._candidates(dest)
        return bool(candidates) and candidates[0][0] < state.distance

    def _feasible_best(self, dest: int, state: _DestState) -> Optional[tuple[float, int]]:
        """Best candidate whose advertised distance passes the feasibility
        condition (strictly below FD)."""
        for dist_via, nbr in self._candidates(dest):
            advertised = self.neighbor_dist.get(nbr, {}).get(dest, INFINITY)
            if advertised < state.feasible_distance:
                return dist_via, nbr
        return None

    def _reconsider(self, dest: int) -> None:
        """Entry point for any passive-state input affecting ``dest``."""
        state = self._state(dest)
        if state.active:
            return
        if not self._local_computation(dest, state):
            self._start_diffusion(dest, state, deferred_reply_to=None)

    def _local_computation(self, dest: int, state: _DestState) -> bool:
        """Try to (re)select under the feasibility condition.  Returns False
        when a diffusing computation is required."""
        best = self._feasible_best(dest, state)
        if best is None:
            # No feasible successor.  If we had no route anyway, nothing to
            # diffuse over — stay unreachable until someone advertises.
            if state.distance == INFINITY and state.successor is None:
                return True
            return False
        new_dist, new_succ = best
        old_dist = state.distance
        state.distance = new_dist
        state.feasible_distance = min(state.feasible_distance, new_dist)
        if new_succ != state.successor:
            state.successor = new_succ
            self.node.set_next_hop(dest, new_succ)
        if new_dist != old_dist:
            for nbr in self.node.up_neighbors():
                self._queue("update", nbr, dest, new_dist)
        return True

    def _start_diffusion(
        self, dest: int, state: _DestState, deferred_reply_to: Optional[int]
    ) -> None:
        self.diffusions_started += 1
        candidates = self._candidates(dest)
        state.distance = candidates[0][0] if candidates else INFINITY
        state.active = True
        state.deferred_reply_to = deferred_reply_to
        # The route is frozen; if the old successor's link is gone the
        # destination is unreachable during the diffusion (the paper's §6
        # criticism, observable as NO_ROUTE drops).
        if state.successor is not None:
            link = self.node.links.get(state.successor)
            if link is None or not link.up:
                state.successor = None
                self.node.set_next_hop(dest, None)
        state.pending_replies = set(self._channels)
        for nbr in sorted(self._channels):
            self._queue("query", nbr, dest, state.distance)
        if not state.pending_replies:
            self._complete_diffusion(dest, state)

    def _maybe_complete(self, dest: int) -> None:
        state = self._state(dest)
        if state.active and not state.pending_replies:
            self._complete_diffusion(dest, state)

    def _complete_diffusion(self, dest: int, state: _DestState) -> None:
        state.active = False
        candidates = self._candidates(dest)
        if candidates and candidates[0][0] < INFINITY:
            state.distance, state.successor = candidates[0]
            state.feasible_distance = state.distance
            self.node.set_next_hop(dest, state.successor)
        else:
            state.distance = INFINITY
            state.feasible_distance = INFINITY
            state.successor = None
            self.node.set_next_hop(dest, None)
        for nbr in self.node.up_neighbors():
            self._queue("update", nbr, dest, state.distance)
        if state.deferred_reply_to is not None:
            self._queue("reply", state.deferred_reply_to, dest, state.distance)
            state.deferred_reply_to = None

    # ------------------------------------------------------------------ output

    def _queue(self, kind: str, neighbor: int, dest: int, dist: float) -> None:
        if neighbor not in self._channels:
            return
        self._batch[kind].setdefault(neighbor, {})[dest] = dist

    def _flush(self) -> None:
        classes = {"update": DualUpdate, "query": DualQuery, "reply": DualReply}
        for kind, per_nbr in self._batch.items():
            for nbr in sorted(per_nbr):
                routes = tuple(sorted(per_nbr[nbr].items()))
                if not routes:
                    continue
                message = classes[kind](routes=routes)
                channel = self._channels.get(nbr)
                if channel is not None and channel.send(message, message.size_bytes):
                    self._record_message(
                        nbr, len(routes), is_withdrawal=(kind == "query"),
                        size_bytes=message.size_bytes,
                    )
            per_nbr.clear()

    # -------------------------------------------------------------- inspection

    def route_metric(self, dest: int) -> Optional[int]:
        if dest == self.node.id:
            return 0
        state = self.states.get(dest)
        if state is None or state.successor is None or state.distance == INFINITY:
            return None
        return int(state.distance)
