"""BGP-style path-vector protocol (paper §3, shortest-path policy).

Modeling choices follow the paper exactly:

* one node = one AS; the best path to each destination is announced to every
  neighbor over a reliable in-order session (TCP abstraction) — routes are
  advertised once, with no periodic refresh;
* a received path containing the receiver is a routing loop and is treated
  as a withdrawal (receiver-side poison, "similar to split horizon with
  poison reverse");
* explicit withdrawal messages are sent when reachability is lost and are
  **exempt** from the MRAI timer;
* announcements to a neighbor are rate-limited by a per-neighbor MRAI timer
  (the vendor-common implementation the paper simulates); a
  per-(neighbor, destination) variant is available for the ablation the
  paper speculates about in §5.2;
* MRAI semantics per the paper's §4.3: "after a router has processed all the
  changed paths and sent out corresponding updates, it turns on the MRAI
  timer" — so every export triggered by one received event goes out in the
  same burst, and only *subsequent* changes are delayed.  Updates for
  different destinations cannot share a message (each destination has its
  own path), which is why one failure fans out into several updates — the
  effect behind the paper's Figure 4 analysis;
* preference: shortest path, ties broken by lowest next-hop id.

Two parameterizations reproduce the paper's curves: ``BgpConfig.standard()``
(MRAI ~U(25,35), mean 30 s) and ``BgpConfig.fast()`` (MRAI ~U(2.5,3.5), mean
3 s — the paper's specially parameterized variant, named BGP-3 here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Optional

from ..net.channels import ReliableChannel
from ..net.network import Network
from ..net.node import Node
from ..sim.rng import RngStreams
from ..sim.timers import OneShotTimer
from ..topology.graph import Topology, all_shortest_path_trees, destination_path_trees
from .base import RoutingProtocol
from .damping import DampingConfig, RouteDampener
from .messages import PathVectorUpdate, PathVectorWithdrawal
from .rib import PathAttr

__all__ = ["BgpConfig", "BgpProtocol"]


@dataclass(frozen=True)
class BgpConfig:
    """MRAI parameterization and implementation options."""

    mrai_base: float = 30.0
    mrai_jitter: float = 5.0
    per_destination_mrai: bool = False
    withdrawals_exempt: bool = True
    #: Sender-side loop detection: do not announce a path to a neighbor that
    #: appears in it (advertise a withdrawal instead).  Off by default — the
    #: paper models receiver-side detection only; SSLD is this package's
    #: ablation of that choice.
    sender_side_loop_detection: bool = False
    #: Optional RFC 2439 route flap damping (see repro.routing.damping).
    damping: Optional[DampingConfig] = None
    label: str = "bgp"

    def __post_init__(self) -> None:
        if self.mrai_base < 0:
            raise ValueError("mrai_base must be >= 0")
        if not 0 <= self.mrai_jitter <= self.mrai_base:
            raise ValueError("mrai_jitter out of range")

    @classmethod
    def standard(cls) -> "BgpConfig":
        """RFC-recommended ~30 s average MRAI."""
        return cls()

    @classmethod
    def fast(cls) -> "BgpConfig":
        """The paper's ~3 s average MRAI variant (named BGP-3 here)."""
        return cls(mrai_base=3.0, mrai_jitter=0.5, label="bgp3")


class BgpProtocol(RoutingProtocol):
    """Path-vector speaker bound to one node."""

    name = "bgp"

    def __init__(
        self,
        node: Node,
        rng_streams: RngStreams,
        network: Network,
        config: Optional[BgpConfig] = None,
    ) -> None:
        self.config = config or BgpConfig.standard()
        self.name = self.config.label
        super().__init__(node, rng_streams)
        self._network = network
        self.rib_in: dict[int, dict[int, PathAttr]] = {}
        self.rib_out: dict[int, dict[int, PathAttr]] = {}
        self.best: dict[int, PathAttr] = {}
        self._channels: dict[int, ReliableChannel] = {}
        self._mrai_timers: dict[Hashable, OneShotTimer] = {}
        self._mrai_pending: dict[Hashable, set[int]] = {}
        # Per-event export batches ("process all changed paths, send the
        # updates, then turn on MRAI").
        self._batch_announce: dict[int, set[int]] = {}
        self._batch_withdraw: dict[int, set[int]] = {}
        self._dampener: Optional[RouteDampener] = None
        if self.config.damping is not None:
            self._dampener = RouteDampener(
                self.sim, self.config.damping, on_reuse=self._damping_reuse
            )

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        for nbr in self.node.up_neighbors():
            self._open_session(nbr)
        for nbr in self.node.up_neighbors():
            self._export(nbr, self.node.id)
        self._flush_batch()

    def warm_start(
        self, topology: Topology, dests: Optional[Iterable[int]] = None
    ) -> None:
        # With ``dests`` (10k-node sharded runs) only routes toward those
        # destinations are installed, from destination-rooted trees: one
        # Dijkstra per destination instead of one per router.  The result is
        # prefix-closed and loop-free but not byte-identical to the
        # unrestricted warm start, whose tie-breaks are source-rooted.
        if dests is None:
            trees = all_shortest_path_trees(topology)

            def paths_from(node: int) -> dict[int, list[int]]:
                return trees[node]

        else:
            rooted = destination_path_trees(topology, dests)

            def paths_from(node: int) -> dict[int, list[int]]:
                restricted: dict[int, list[int]] = {}
                for dest, tree in rooted.items():
                    path = tree.get(node)
                    if path is not None:
                        restricted[dest] = path
                return restricted

        my_tree = paths_from(self.node.id)
        for dest, path in my_tree.items():
            if dest == self.node.id:
                continue
            self.best[dest] = PathAttr.of(path[1:])
            self.node.set_next_hop(dest, path[1])
        for nbr in self.node.up_neighbors():
            self._open_session(nbr)
            rib_in_n: dict[int, PathAttr] = {}
            for dest, path in paths_from(nbr).items():
                attr = PathAttr.of(path)
                if not attr.contains(self.node.id):
                    rib_in_n[dest] = attr
            self.rib_in[nbr] = rib_in_n
            # What we have already advertised to this neighbor.
            out: dict[int, PathAttr] = {self.node.id: PathAttr.of((self.node.id,))}
            for dest, best in self.best.items():
                if self.config.sender_side_loop_detection and best.contains(nbr):
                    continue  # SSLD: this was never advertised to nbr
                out[dest] = best.prepend(self.node.id)
            self.rib_out[nbr] = out

    def _open_session(self, neighbor: int) -> None:
        if neighbor in self._channels:
            return
        link = self.node.link_to(neighbor)
        channel = ReliableChannel(
            self.sim,
            link,
            self.node.id,
            deliver=lambda payload, nbr=neighbor: self._deliver_to(nbr, payload),
        )
        self._channels[neighbor] = channel
        self.rib_in.setdefault(neighbor, {})
        self.rib_out.setdefault(neighbor, {})

    def _deliver_to(self, neighbor: int, payload: Any) -> None:
        # BGP bypasses Node.receive (messages ride the reliable channel), so
        # causal attribution has to happen here, on the receiving protocol.
        peer = self._network.node(neighbor).protocol
        if peer is not None:
            peer.apply_message(payload, self.node.id)

    # ------------------------------------------------------------------ events

    def handle_message(self, payload: Any, from_node: int) -> None:
        if from_node not in self._channels:
            return  # session no longer exists
        if isinstance(payload, PathVectorUpdate):
            self._handle_announcement(payload, from_node)
        elif isinstance(payload, PathVectorWithdrawal):
            self._handle_withdrawal(payload, from_node)
        else:
            raise TypeError(f"bgp got unexpected payload {type(payload).__name__}")
        self._flush_batch()

    def _handle_announcement(self, update: PathVectorUpdate, from_node: int) -> None:
        for dest in update.dests:
            if dest == self.node.id:
                continue
            if update.path.contains(self.node.id):
                # Loop detected: treat as a withdrawal (paper's §3 choice).
                removed = self.rib_in[from_node].pop(dest, None)
                if removed is not None:
                    self._record_flap(from_node, dest, withdrawal=True)
                    if self._reselect(dest):
                        self._export_all(dest)
                continue
            previous = self.rib_in[from_node].get(dest)
            self.rib_in[from_node][dest] = update.path
            if previous is not None and previous != update.path:
                self._record_flap(from_node, dest, withdrawal=False)
            if self._reselect(dest):
                self._export_all(dest)

    def _handle_withdrawal(self, withdrawal: PathVectorWithdrawal, from_node: int) -> None:
        for dest in withdrawal.dests:
            removed = self.rib_in[from_node].pop(dest, None)
            if removed is not None:
                self._record_flap(from_node, dest, withdrawal=True)
                if self._reselect(dest):
                    self._export_all(dest)

    # ----------------------------------------------------------- flap damping

    def _record_flap(self, neighbor: int, dest: int, withdrawal: bool) -> None:
        if self._dampener is None:
            return
        key = (neighbor, dest)
        if withdrawal:
            self._dampener.record_withdrawal(key)
        else:
            self._dampener.record_readvertisement(key)

    def _damping_reuse(self, key) -> None:
        _, dest = key
        with self.route_cause("damping_reuse", dest):
            if self._reselect(dest):
                self._export_all(dest)
        self._flush_batch()

    def handle_link_down(self, neighbor: int) -> None:
        self._channels.pop(neighbor, None)
        if self._dampener is not None:
            self._dampener.forget(neighbor)
        lost = self.rib_in.pop(neighbor, {})
        self.rib_out.pop(neighbor, None)
        self._batch_announce.pop(neighbor, None)
        self._batch_withdraw.pop(neighbor, None)
        for key in list(self._mrai_timers):
            if key == neighbor or (isinstance(key, tuple) and key[0] == neighbor):
                self._mrai_timers.pop(key).cancel()
                self._mrai_pending.pop(key, None)
        for dest in sorted(lost):
            if self._reselect(dest):
                self._export_all(dest)
        self._flush_batch()

    def handle_link_up(self, neighbor: int) -> None:
        self._open_session(neighbor)
        self._export(neighbor, self.node.id)
        for dest in sorted(self.best):
            self._export(neighbor, dest)
        self._flush_batch()

    # --------------------------------------------------------------- selection

    def _reselect(self, dest: int) -> bool:
        """Re-run best-path selection for ``dest``; True if the best changed."""
        candidates = []
        for nbr in sorted(self._channels):
            path = self.rib_in.get(nbr, {}).get(dest)
            if path is None:
                continue
            if self._dampener is not None and self._dampener.is_suppressed((nbr, dest)):
                continue  # damped: present in rib_in but unusable
            candidates.append(path)
        new_best = min(candidates, key=PathAttr.preference_key, default=None)
        old_best = self.best.get(dest)
        if new_best == old_best:
            return False
        if new_best is None:
            del self.best[dest]
            self.node.set_next_hop(dest, None)
        else:
            self.best[dest] = new_best
            self.node.set_next_hop(dest, new_best.first_hop)
        return True

    def route_metric(self, dest: int) -> Optional[int]:
        if dest == self.node.id:
            return 0
        best = self.best.get(dest)
        return None if best is None else len(best)

    # ------------------------------------------------------------------ export

    def _export_all(self, dest: int) -> None:
        for nbr in sorted(self._channels):
            self._export(nbr, dest)

    def _export(self, neighbor: int, dest: int) -> None:
        """Queue neighbor's view of ``dest`` for synchronization at the end of
        the current event; withdrawals bypass MRAI, announcements respect it."""
        if neighbor not in self._channels:
            return
        export_path = self._export_path(dest, neighbor)
        if export_path == self.rib_out.setdefault(neighbor, {}).get(dest):
            return
        if export_path is None and self.config.withdrawals_exempt:
            self._batch_withdraw.setdefault(neighbor, set()).add(dest)
            self._batch_announce.get(neighbor, set()).discard(dest)
            return
        # Announcement (or non-exempt withdrawal): held while MRAI is running.
        key = self._mrai_key(neighbor, dest)
        timer = self._mrai_timers.get(key)
        if timer is not None and timer.running:
            self._mrai_pending.setdefault(key, set()).add(dest)
            return
        self._batch_announce.setdefault(neighbor, set()).add(dest)
        self._batch_withdraw.get(neighbor, set()).discard(dest)

    def _export_path(self, dest: int, neighbor: Optional[int] = None) -> Optional[PathAttr]:
        if dest == self.node.id:
            return PathAttr.of((self.node.id,))
        best = self.best.get(dest)
        if best is None:
            return None
        if (
            neighbor is not None
            and self.config.sender_side_loop_detection
            and best.contains(neighbor)
        ):
            return None  # SSLD: the neighbor would discard it anyway
        return best.prepend(self.node.id)

    def _mrai_key(self, neighbor: int, dest: int) -> Hashable:
        if self.config.per_destination_mrai:
            return (neighbor, dest)
        return neighbor

    def _flush_batch(self) -> None:
        """Send every export queued during this event, then arm MRAI."""
        withdraws, self._batch_withdraw = self._batch_withdraw, {}
        announces, self._batch_announce = self._batch_announce, {}
        for nbr in sorted(withdraws):
            dests = [
                d
                for d in sorted(withdraws[nbr])
                if self._export_path(d, nbr) is None
                and d in self.rib_out.setdefault(nbr, {})
            ]
            if dests:
                self._send_withdrawal(nbr, dests)
        for nbr in sorted(announces):
            sent_dests = []
            for dest in sorted(announces[nbr]):
                if self._send_current(nbr, dest):
                    sent_dests.append(dest)
            if not sent_dests:
                continue
            if self.config.per_destination_mrai:
                for dest in sent_dests:
                    self._start_mrai((nbr, dest), nbr)
            else:
                self._start_mrai(nbr, nbr)

    def _send_current(self, neighbor: int, dest: int) -> bool:
        """Synchronize the neighbor's view of ``dest`` right now (announce or
        withdraw); returns True if something was sent."""
        channel = self._channels.get(neighbor)
        if channel is None:
            return False
        advertised = self.rib_out.setdefault(neighbor, {})
        export_path = self._export_path(dest, neighbor)
        if export_path == advertised.get(dest):
            return False
        if export_path is None:
            self._send_withdrawal(neighbor, [dest])
            return True
        update = PathVectorUpdate(path=export_path, dests=(dest,))
        if channel.send(update, update.size_bytes):
            advertised[dest] = export_path
            self._record_message(neighbor, 1, size_bytes=update.size_bytes)
            return True
        return False

    def _send_withdrawal(self, neighbor: int, dests: list[int]) -> None:
        channel = self._channels.get(neighbor)
        if channel is None:
            return
        advertised = self.rib_out.setdefault(neighbor, {})
        for dest in dests:
            advertised.pop(dest, None)
        message = PathVectorWithdrawal(dests=tuple(sorted(dests)))
        if channel.send(message, message.size_bytes):
            self._record_message(
                neighbor, len(dests), is_withdrawal=True,
                size_bytes=message.size_bytes,
            )

    def _start_mrai(self, key: Hashable, neighbor: int) -> None:
        if self.config.mrai_base <= 0:
            return
        timer = self._mrai_timers.get(key)
        if timer is None:
            timer = OneShotTimer(self.sim, lambda: self._mrai_expired(key, neighbor))
            self._mrai_timers[key] = timer
        delay = (
            self.rng.uniform(
                self.config.mrai_base - self.config.mrai_jitter,
                self.config.mrai_base + self.config.mrai_jitter,
            )
            if self.config.mrai_jitter > 0
            else self.config.mrai_base
        )
        timer.start(delay)

    def _mrai_expired(self, key: Hashable, neighbor: int) -> None:
        pending = self._mrai_pending.pop(key, None)
        if not pending or neighbor not in self._channels:
            return
        sent_any = False
        for dest in sorted(pending):
            if self._send_current(neighbor, dest):
                sent_any = True
        if sent_any:
            self._start_mrai(key, neighbor)
