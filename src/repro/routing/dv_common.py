"""Shared machinery for the distance-vector protocols (RIP and DBF).

Both protocols, per the paper's §3:

* advertise their full table every ~30 s (jittered periodic updates);
* apply split horizon with poison reverse (advertise infinity for routes
  whose next hop is the receiving neighbor);
* send triggered updates on route changes, spaced by a damping timer drawn
  uniformly from [1, 5] seconds;
* pack at most 25 destination entries per message;
* time out routes not refreshed for 180 s and garbage-collect them.

They differ only in route selection: RIP keeps just the current best route
(subclass hook :meth:`_consider_route`), DBF keeps a per-neighbor cache and
re-runs Bellman-Ford over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..net.node import Node
from ..sim.rng import RngStreams
from ..sim.timers import JitteredInterval, OneShotTimer, PeriodicTimer
from ..topology.graph import Topology, all_shortest_path_trees
from .base import RoutingProtocol
from .messages import DistanceVectorUpdate, pack_distance_vector
from .rib import RIP_INFINITY, DistanceVectorRoute

__all__ = ["DistanceVectorConfig", "DistanceVectorProtocol"]


@dataclass(frozen=True)
class DistanceVectorConfig:
    """Timer and metric parameters (defaults = paper/RFC 2453 values)."""

    update_interval: float = 30.0
    update_jitter: float = 5.0
    route_timeout: float = 180.0
    garbage_collect: float = 120.0
    trigger_damping_min: float = 1.0
    trigger_damping_max: float = 5.0
    infinity: int = RIP_INFINITY
    #: Hold-down period (seconds): after a route is lost, refuse replacement
    #: routes from other neighbors for this long.  0 disables (the paper's
    #: RIP).  Classic IGRP/RIP deployments used ~3x the update interval; the
    #: ablation shows it trades recovery speed for count-to-infinity
    #: insurance.
    holddown: float = 0.0

    def __post_init__(self) -> None:
        if self.update_interval <= 0:
            raise ValueError("update_interval must be positive")
        if not 0 <= self.update_jitter <= self.update_interval:
            raise ValueError("update_jitter out of range")
        if self.route_timeout <= self.update_interval:
            raise ValueError("route_timeout must exceed update_interval")
        if self.trigger_damping_min < 0 or self.trigger_damping_max < self.trigger_damping_min:
            raise ValueError("bad trigger damping range")
        if self.infinity < 2:
            raise ValueError("infinity metric must be >= 2")
        if self.holddown < 0:
            raise ValueError("holddown must be >= 0")


class DistanceVectorProtocol(RoutingProtocol):
    """Common RIP/DBF behavior; see module docstring."""

    def __init__(
        self,
        node: Node,
        rng_streams: RngStreams,
        config: Optional[DistanceVectorConfig] = None,
    ) -> None:
        super().__init__(node, rng_streams)
        self.config = config or DistanceVectorConfig()
        self.table: dict[int, DistanceVectorRoute] = {}
        self._periodic = PeriodicTimer(
            self.sim,
            JitteredInterval(self.config.update_interval, self.config.update_jitter, self.rng),
            self._send_periodic,
        )
        self._damping = OneShotTimer(self.sim, self._flush_triggered)
        self._pending_triggered: set[int] = set()
        self._timeout_checks: dict[int, object] = {}

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._install_self_route()
        # Desynchronized first fire, as routers boot at different instants.
        self._periodic.start(initial_delay=self.rng.uniform(0.1, 1.0))

    def warm_start(self, topology: Topology) -> None:
        self._install_self_route()
        graph = topology.to_networkx()
        tree = all_shortest_path_trees(topology)[self.node.id]
        for dest, path in tree.items():
            if dest == self.node.id:
                continue
            cost = sum(
                graph.edges[path[i], path[i + 1]].get("weight", 1)
                for i in range(len(path) - 1)
            )
            if cost >= self.config.infinity:
                continue
            route = DistanceVectorRoute(
                dest=dest, metric=cost, next_hop=path[1], updated_at=self.sim.now
            )
            self.table[dest] = route
            self.node.set_next_hop(dest, path[1])
            self._arm_timeout_check(dest)
        self._warm_start_extra(topology, tree)
        # Random phase: routers' periodic cycles are not synchronized.
        self._periodic.start(initial_delay=self.rng.uniform(0, self.config.update_interval))

    def _warm_start_extra(self, topology: Topology, tree: dict[int, list[int]]) -> None:
        """Subclass hook to prefill extra converged state (DBF's caches)."""

    def _install_self_route(self) -> None:
        self.table[self.node.id] = DistanceVectorRoute(
            dest=self.node.id, metric=0, next_hop=None, updated_at=float("inf")
        )

    # ----------------------------------------------------------------- events

    def handle_message(self, payload: Any, from_node: int) -> None:
        if not isinstance(payload, DistanceVectorUpdate):
            raise TypeError(f"{self.name} got unexpected payload {type(payload).__name__}")
        link = self.node.links.get(from_node)
        if link is None or not link.up:
            return  # stale message from a dead adjacency
        cost = link.spec.cost
        changed: set[int] = set()
        for dest, advertised in payload.routes:
            if dest == self.node.id:
                continue
            if self._consider_route(dest, min(advertised, self.config.infinity), cost, from_node):
                changed.add(dest)
        if changed:
            self._routes_changed(changed)

    def handle_link_down(self, neighbor: int) -> None:
        changed = self._neighbor_lost(neighbor)
        if changed:
            self._routes_changed(changed)

    def handle_link_up(self, neighbor: int) -> None:
        # Introduce ourselves promptly; the neighbor's periodic update will
        # teach us its table.
        self._advertise(neighbor, self._full_table_view(neighbor))

    # ------------------------------------------------------- selection hooks

    def _consider_route(self, dest: int, advertised: int, cost: int, from_node: int) -> bool:
        """Integrate one advertised route (raw neighbor metric ``advertised``,
        link cost ``cost``); return True if the table changed."""
        raise NotImplementedError

    def _neighbor_lost(self, neighbor: int) -> set[int]:
        """React to a dead adjacency; return the set of changed destinations."""
        raise NotImplementedError

    # ---------------------------------------------------------- table updates

    def _set_route(self, dest: int, metric: int, next_hop: Optional[int]) -> bool:
        """Install (dest, metric, next_hop); returns True if anything changed.

        A metric at/above infinity marks the route unreachable: the table
        entry is kept (poisoned) for advertisement until garbage collection,
        but the FIB entry is removed.
        """
        metric = min(metric, self.config.infinity)
        route = self.table.get(dest)
        now = self.sim.now
        if metric >= self.config.infinity:
            if route is None or route.metric >= self.config.infinity:
                if route is not None:
                    route.updated_at = now
                return False
            route.metric = self.config.infinity
            route.next_hop = None
            route.updated_at = now
            self.node.set_next_hop(dest, None)
            self._schedule_garbage_collect(dest)
            return True
        if route is None:
            route = DistanceVectorRoute(dest, metric, next_hop, updated_at=now)
            self.table[dest] = route
            self.node.set_next_hop(dest, next_hop)
            self._arm_timeout_check(dest)
            return True
        if route.metric >= self.config.infinity:
            # Poisoned routes lose their aging check when it fires; re-arm on
            # returning to life.
            self._arm_timeout_check(dest)
        changed = (route.metric != metric) or (route.next_hop != next_hop)
        route.metric = metric
        route.next_hop = next_hop
        route.updated_at = now
        if changed:
            self.node.set_next_hop(dest, next_hop)
        return changed

    def _refresh_route(self, dest: int) -> None:
        route = self.table.get(dest)
        if route is not None:
            route.updated_at = self.sim.now

    def route_metric(self, dest: int) -> Optional[int]:
        route = self.table.get(dest)
        if route is None or route.metric >= self.config.infinity:
            return None
        return route.metric

    # ----------------------------------------------------------- route aging

    def _arm_timeout_check(self, dest: int) -> None:
        handle = self.sim.schedule(self.config.route_timeout, lambda: self._check_timeout(dest))
        self._timeout_checks[dest] = handle

    def _check_timeout(self, dest: int) -> None:
        route = self.table.get(dest)
        if route is None or route.metric >= self.config.infinity:
            return
        idle = self.sim.now - route.updated_at
        if idle >= self.config.route_timeout:
            with self.route_cause("timeout", dest):
                changed = self._route_timed_out(dest)
                if changed:
                    self._routes_changed(changed)
        else:
            handle = self.sim.schedule(
                self.config.route_timeout - idle, lambda: self._check_timeout(dest)
            )
            self._timeout_checks[dest] = handle

    def _route_timed_out(self, dest: int) -> set[int]:
        """Default: poison the route.  DBF re-selects from its cache instead."""
        if self._set_route(dest, self.config.infinity, None):
            return {dest}
        return set()

    def _schedule_garbage_collect(self, dest: int) -> None:
        def collect() -> None:
            route = self.table.get(dest)
            if route is not None and route.metric >= self.config.infinity:
                del self.table[dest]

        self.sim.schedule(self.config.garbage_collect, collect)

    # ------------------------------------------------------------ advertising

    def _routes_changed(self, dests: set[int]) -> None:
        """Queue a triggered update for ``dests`` (damped per the paper)."""
        self._pending_triggered.update(dests)
        if not self._damping.running:
            self._flush_triggered()

    def _flush_triggered(self) -> None:
        if not self._pending_triggered:
            return
        dests = sorted(self._pending_triggered)
        self._pending_triggered.clear()
        for nbr in self.node.up_neighbors():
            view = [(d, self._advertised_metric(d, nbr)) for d in dests if d in self.table]
            self._advertise(nbr, view)
        self._damping.start(
            self.rng.uniform(self.config.trigger_damping_min, self.config.trigger_damping_max)
        )

    def _send_periodic(self) -> None:
        for nbr in self.node.up_neighbors():
            self._advertise(nbr, self._full_table_view(nbr))

    def _full_table_view(self, neighbor: int) -> list[tuple[int, int]]:
        return [(dest, self._advertised_metric(dest, neighbor)) for dest in sorted(self.table)]

    def _advertised_metric(self, dest: int, neighbor: int) -> int:
        """Split horizon with poison reverse."""
        route = self.table[dest]
        if route.next_hop == neighbor:
            return self.config.infinity
        return min(route.metric, self.config.infinity)

    def _advertise(self, neighbor: int, routes: Iterable[tuple[int, int]]) -> None:
        for message in pack_distance_vector(routes):
            self.node.send_control(
                neighbor, message, message.size_bytes, protocol=self.name
            )
            self._record_message(
                neighbor, len(message), size_bytes=message.size_bytes
            )
