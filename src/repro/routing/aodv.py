"""AODV — Ad hoc On-demand Distance Vector routing (RFC 3561).

The first *reactive* protocol in the study: routes are built only when data
needs them.  A data packet that misses the FIB is handed to the protocol via
``Node.route_miss``; the origin buffers it, floods a Route Request (RREQ)
carrying its own fresh sequence number, and releases the buffer when a Route
Reply (RREP) walks back along the reverse path installing forward routes.
Link loss invalidates every route using the dead next hop and pushes a Route
Error (RERR) to the route's *precursors* — the upstream neighbors known to be
using it — so stale-route blackholes die quickly.

Simplifications, all noted in docs/manet.md:

* **Destination-only replies** (RFC 3561 'D' flag always set): intermediate
  nodes never answer from their own tables, which keeps discovery outcomes
  deterministic and makes the sequence-number invariant easy to state.
* **Link-layer feedback** (RFC §6.4 alternative to HELLO): the simulator's
  failure detection calls ``handle_link_down`` directly, so no HELLO traffic
  is generated and ``active_route_timeout`` defaults to infinity.  A finite
  timeout is supported (routes quietly expire) and unit-tested.
* **No expanding-ring search**: every discovery attempt is a network-wide
  flood; retries use binary exponential backoff.

Loop freedom comes from the RFC's sequence-number rule: a route is replaced
only by a strictly fresher one (higher destination sequence number) or an
equally fresh, strictly shorter one — the invariant the Hypothesis property
test in tests/routing/test_manet_properties.py hammers on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Optional

from ..net.node import Node
from ..net.packet import CONTROL_HEADER_BYTES, Packet
from ..sim.rng import RngStreams
from ..sim.timers import OneShotTimer
from ..sim.tracing import DropCause
from ..topology.graph import Topology
from .base import RoutingProtocol

__all__ = ["AodvConfig", "AodvProtocol", "Rreq", "Rrep", "Rerr"]

#: Wire sizes per RFC 3561 message formats.
RREQ_BYTES = 24
RREP_BYTES = 20
RERR_DEST_BYTES = 8


@dataclass(frozen=True)
class Rreq:
    """Route Request, flooded origin -> everyone."""

    origin: int
    rreq_id: int
    dst: int
    origin_seq: int
    dest_seq: int
    hop_count: int

    @property
    def size_bytes(self) -> int:
        return RREQ_BYTES


@dataclass(frozen=True)
class Rrep:
    """Route Reply, unicast destination -> origin along reverse routes."""

    origin: int  #: the RREQ originator this reply is headed for
    dst: int  #: the destination the reply describes a route to
    dest_seq: int
    hop_count: int

    @property
    def size_bytes(self) -> int:
        return RREP_BYTES


@dataclass(frozen=True)
class Rerr:
    """Route Error: (dest, fresh seq) pairs now unreachable via the sender."""

    unreachable: tuple[tuple[int, int], ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + RERR_DEST_BYTES * len(self.unreachable)


@dataclass(frozen=True)
class AodvConfig:
    """Discovery timing and buffering knobs."""

    #: One discovery attempt's timeout (RFC NET_TRAVERSAL_TIME).
    path_discovery_time: float = 2.8
    #: Additional attempts after the first flood (RFC RREQ_RETRIES).
    rreq_retries: int = 2
    #: Route lifetime from installation.  Infinite by default: with
    #: link-layer feedback (our failure detection) RFC §6.4 permits routes
    #: to live until the link breaks.
    active_route_timeout: float = math.inf
    #: Max data packets buffered per destination during discovery.
    buffer_limit: int = 64
    label: str = "aodv"

    def __post_init__(self) -> None:
        if self.path_discovery_time <= 0:
            raise ValueError("path_discovery_time must be positive")
        if self.rreq_retries < 0:
            raise ValueError("rreq_retries must be >= 0")
        if self.active_route_timeout <= 0:
            raise ValueError("active_route_timeout must be positive")
        if self.buffer_limit < 1:
            raise ValueError("buffer_limit must be >= 1")


class _Route:
    """One AODV routing-table entry (the FIB mirrors only valid ones)."""

    __slots__ = ("next_hop", "hop_count", "seq", "valid", "precursors", "installed_at")

    def __init__(
        self, next_hop: int, hop_count: int, seq: int, installed_at: float
    ) -> None:
        self.next_hop = next_hop
        self.hop_count = hop_count
        self.seq = seq
        self.valid = True
        #: Upstream neighbors forwarding through us for this destination.
        self.precursors: set[int] = set()
        self.installed_at = installed_at


class _Discovery:
    """In-flight route discovery for one destination."""

    __slots__ = ("attempts", "timer", "packets")

    def __init__(self, timer: OneShotTimer) -> None:
        self.attempts = 0
        self.timer = timer
        self.packets: list[Packet] = []


class AodvProtocol(RoutingProtocol):
    """On-demand distance vector routing with sequence-numbered routes."""

    name = "aodv"

    def __init__(
        self,
        node: Node,
        rng_streams: RngStreams,
        config: Optional[AodvConfig] = None,
    ) -> None:
        self.config = config or AodvConfig()
        self.name = self.config.label
        super().__init__(node, rng_streams)
        #: Own destination sequence number — never decreases (loop freedom).
        self.seq = 0
        self._rreq_id = 0
        self.routes: dict[int, _Route] = {}
        self._seen: set[tuple[int, int]] = set()
        self._pending: dict[int, _Discovery] = {}
        self.discoveries = 0
        self.discovery_failures = 0
        self._expiry_timer = OneShotTimer(self.sim, self._purge_expired)
        node.route_miss = self._on_route_miss

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._arm_expiry()

    def warm_start(self, topology: Topology) -> None:
        # Reactive: converged steady state is an *empty* table — routes exist
        # only while traffic wants them.  Nothing to install.
        self._arm_expiry()

    def _arm_expiry(self) -> None:
        timeout = self.config.active_route_timeout
        if math.isfinite(timeout):
            self._expiry_timer.start(timeout / 2)

    # ------------------------------------------------------------------ events

    def handle_message(self, payload: Any, from_node: int) -> None:
        if isinstance(payload, Rreq):
            self._handle_rreq(payload, from_node)
        elif isinstance(payload, Rrep):
            self._handle_rrep(payload, from_node)
        elif isinstance(payload, Rerr):
            self._handle_rerr(payload, from_node)
        else:
            raise TypeError(f"aodv got unexpected payload {type(payload).__name__}")

    def handle_link_down(self, neighbor: int) -> None:
        affected: list[tuple[int, int, set[int]]] = []
        for dest, route in self.routes.items():
            if route.valid and route.next_hop == neighbor:
                route.valid = False
                route.seq += 1  # RFC §6.11: bump so stale copies lose
                self.node.set_next_hop(dest, None)
                affected.append((dest, route.seq, set(route.precursors)))
                route.precursors.clear()
        if affected:
            self._propagate_rerr(affected)

    def handle_link_up(self, neighbor: int) -> None:
        pass  # routes are built on demand

    # --------------------------------------------------------------- data path

    def _on_route_miss(self, packet: Packet) -> None:
        dest = packet.dst
        if packet.src != self.node.id:
            # Mid-path FIB miss (route expired/invalidated under the packet):
            # RFC §6.11 — drop and leave repair to the origin's next discovery.
            self.node.drop(packet, DropCause.NO_ROUTE)
            return
        disc = self._pending.get(dest)
        if disc is None:
            disc = _Discovery(OneShotTimer(self.sim, lambda d=dest: self._retry(d)))
            self._pending[dest] = disc
            self._buffer(disc, packet)
            self.discoveries += 1
            disc.attempts = 1
            self._send_rreq(dest)
            disc.timer.start(self.config.path_discovery_time)
        else:
            self._buffer(disc, packet)

    def _buffer(self, disc: _Discovery, packet: Packet) -> None:
        if len(disc.packets) >= self.config.buffer_limit:
            oldest = disc.packets.pop(0)
            self.node.drop(oldest, DropCause.QUEUE_OVERFLOW)
        disc.packets.append(packet)

    def _retry(self, dest: int) -> None:
        disc = self._pending.get(dest)
        if disc is None:
            return
        if disc.attempts > self.config.rreq_retries:
            del self._pending[dest]
            self.discovery_failures += 1
            for packet in disc.packets:
                self.node.drop(packet, DropCause.NO_ROUTE)
            return
        disc.attempts += 1
        self._send_rreq(dest)
        # Binary exponential backoff (RFC §6.3).
        disc.timer.start(self.config.path_discovery_time * 2 ** (disc.attempts - 1))

    def _release(self, dest: int) -> None:
        disc = self._pending.pop(dest, None)
        if disc is None:
            return
        disc.timer.cancel()
        route = self.routes.get(dest)
        if route is None or not route.valid:
            for packet in disc.packets:
                self.node.drop(packet, DropCause.NO_ROUTE)
            return
        for packet in disc.packets:
            self.node.transmit_to(packet, route.next_hop)

    # ----------------------------------------------------------- control plane

    def _send_rreq(self, dest: int) -> None:
        self.seq += 1
        self._rreq_id += 1
        known = self.routes.get(dest)
        rreq = Rreq(
            origin=self.node.id,
            rreq_id=self._rreq_id,
            dst=dest,
            origin_seq=self.seq,
            dest_seq=known.seq if known is not None else 0,
            hop_count=0,
        )
        self._seen.add((rreq.origin, rreq.rreq_id))
        self._broadcast(rreq, exclude=None)

    def _broadcast(self, msg: Any, exclude: Optional[int]) -> None:
        for nbr in self.node.up_neighbors():
            if nbr != exclude:
                self.node.send_control(nbr, msg, msg.size_bytes, protocol=self.name)
                self._record_message(nbr, 1, size_bytes=msg.size_bytes)

    def _send_unicast(self, neighbor: int, msg: Any) -> None:
        link = self.node.links.get(neighbor)
        if link is None or not link.up:
            return
        self.node.send_control(neighbor, msg, msg.size_bytes, protocol=self.name)
        self._record_message(neighbor, 1, size_bytes=msg.size_bytes)

    def _handle_rreq(self, rreq: Rreq, from_node: int) -> None:
        key = (rreq.origin, rreq.rreq_id)
        if key in self._seen or rreq.origin == self.node.id:
            return
        self._seen.add(key)
        # Reverse route back to the originator rides in on every RREQ.
        self._maybe_update_route(rreq.origin, from_node, rreq.hop_count + 1, rreq.origin_seq)
        if rreq.dst == self.node.id:
            # Destination answers with a sequence number at least as fresh as
            # anything the network has attributed to it (monotonic by max()).
            self.seq = max(self.seq + 1, rreq.dest_seq)
            rrep = Rrep(origin=rreq.origin, dst=self.node.id, dest_seq=self.seq, hop_count=0)
            self._send_unicast(from_node, rrep)
        else:
            self._broadcast(replace(rreq, hop_count=rreq.hop_count + 1), exclude=from_node)

    def _handle_rrep(self, rrep: Rrep, from_node: int) -> None:
        self._maybe_update_route(rrep.dst, from_node, rrep.hop_count + 1, rrep.dest_seq)
        if rrep.origin == self.node.id:
            self._release(rrep.dst)
            return
        reverse = self.routes.get(rrep.origin)
        if reverse is None or not reverse.valid:
            return  # reverse route evaporated; the origin's retry recovers
        self._send_unicast(reverse.next_hop, replace(rrep, hop_count=rrep.hop_count + 1))
        forward = self.routes.get(rrep.dst)
        if forward is not None and forward.valid:
            forward.precursors.add(reverse.next_hop)
        reverse.precursors.add(from_node)

    def _handle_rerr(self, rerr: Rerr, from_node: int) -> None:
        affected: list[tuple[int, int, set[int]]] = []
        for dest, seq in rerr.unreachable:
            route = self.routes.get(dest)
            if route is None or not route.valid or route.next_hop != from_node:
                continue
            route.valid = False
            route.seq = max(route.seq, seq)
            self.node.set_next_hop(dest, None)
            affected.append((dest, route.seq, set(route.precursors)))
            route.precursors.clear()
        if affected:
            self._propagate_rerr(affected)

    def _propagate_rerr(self, affected: list[tuple[int, int, set[int]]]) -> None:
        """Send one RERR per precursor, listing the dests it was using."""
        per_precursor: dict[int, list[tuple[int, int]]] = {}
        for dest, seq, precursors in affected:
            for p in precursors:
                per_precursor.setdefault(p, []).append((dest, seq))
        for p in sorted(per_precursor):
            link = self.node.links.get(p)
            if link is None or not link.up:
                continue
            self._send_unicast(p, Rerr(unreachable=tuple(sorted(per_precursor[p]))))

    # ---------------------------------------------------------------- routing

    def _maybe_update_route(
        self, dest: int, next_hop: int, hop_count: int, seq: int
    ) -> bool:
        """RFC 3561 §6.2 route-update rule: fresher seq wins; same-seq shorter
        wins; an invalid route is replaced by anything at least as fresh."""
        if dest == self.node.id:
            return False
        route = self.routes.get(dest)
        if route is not None:
            if seq < route.seq:
                return False
            if seq == route.seq and route.valid and hop_count >= route.hop_count:
                return False
        new = _Route(next_hop, hop_count, seq, self.sim.now)
        if route is not None:
            new.precursors = route.precursors
        self.routes[dest] = new
        self.node.set_next_hop(dest, next_hop)
        if dest in self._pending:
            self._release(dest)
        return True

    def _purge_expired(self) -> None:
        timeout = self.config.active_route_timeout
        now = self.sim.now
        with self.route_cause("expiry", None):
            for dest, route in self.routes.items():
                if route.valid and now - route.installed_at > timeout:
                    route.valid = False
                    route.seq += 1
                    route.precursors.clear()
                    self.node.set_next_hop(dest, None)
        self._expiry_timer.start(timeout / 2)

    # -------------------------------------------------------------- inspection

    def route_metric(self, dest: int) -> Optional[int]:
        if dest == self.node.id:
            return 0
        route = self.routes.get(dest)
        if route is None or not route.valid:
            return None
        return route.hop_count

    def pending_data_packets(self) -> int:
        return sum(len(d.packets) for d in self._pending.values())
