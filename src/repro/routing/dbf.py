"""DBF — Distributed Bellman-Ford with per-neighbor caches.

Per the paper's §3, DBF is identical to RIP except that "a router keeps a
cache of the latest routing update learned from each of its neighbors.
Whenever a router notices that it cannot reach a destination through the
current next hop, the router can immediately select an alternate next hop" —
a zero-time path switch-over.

The cache stores the *advertised* metrics (post split horizon with poison
reverse), so a neighbor that routes through us appears as infinity and is
never chosen as an alternate: the two-hop loop prevention the paper credits
for raising the probability of valid alternate paths.
"""

from __future__ import annotations

from ..net.node import Node
from ..sim.rng import RngStreams
from ..topology.graph import Topology, all_shortest_path_trees
from .dv_common import DistanceVectorConfig, DistanceVectorProtocol
from .rib import NeighborVectorCache, best_vector_choice

__all__ = ["DbfProtocol"]


class DbfProtocol(DistanceVectorProtocol):
    """Distance vector with alternate-path cache (instant switch-over)."""

    name = "dbf"

    def __init__(self, node: Node, rng_streams: RngStreams, config=None) -> None:
        super().__init__(node, rng_streams, config)
        self.cache = NeighborVectorCache(infinity=self.config.infinity)

    # ------------------------------------------------------------- selection

    def _consider_route(self, dest: int, advertised: int, cost: int, from_node: int) -> bool:
        self.cache.learn(from_node, dest, advertised)
        return self._reselect(dest)

    def _neighbor_lost(self, neighbor: int) -> set[int]:
        self.cache.forget_neighbor(neighbor)
        changed = set()
        for dest, route in list(self.table.items()):
            if route.next_hop == neighbor:
                if self._reselect(dest):
                    changed.add(dest)
        return changed

    def _route_timed_out(self, dest: int) -> set[int]:
        # The current next hop went silent: distrust its cache entry for this
        # destination, then fall back to the best remaining alternate.
        route = self.table.get(dest)
        if route is not None and route.next_hop is not None:
            self.cache.learn(route.next_hop, dest, self.config.infinity)
        if self._reselect(dest):
            return {dest}
        return set()

    def _reselect(self, dest: int) -> bool:
        """Bellman-Ford over the cache; returns True if the route changed."""
        if dest == self.node.id:
            return False
        metric, next_hop = best_vector_choice(
            self.cache, dest, self.link_costs(), infinity=self.config.infinity
        )
        changed = self._set_route(dest, metric, next_hop)
        if not changed and metric < self.config.infinity:
            self._refresh_route(dest)
        return changed

    # ------------------------------------------------------------ warm start

    def _warm_start_extra(self, topology: Topology, tree: dict[int, list[int]]) -> None:
        trees = all_shortest_path_trees(topology)
        graph = topology.to_networkx()
        for nbr in self.node.up_neighbors():
            nbr_tree = trees[nbr]
            for dest, path in nbr_tree.items():
                if dest == nbr:
                    self.cache.learn(nbr, dest, 0)
                    continue
                next_hop = path[1]
                if next_hop == self.node.id:
                    # Poison reverse: the neighbor routes through us.
                    self.cache.learn(nbr, dest, self.config.infinity)
                    continue
                cost = sum(
                    graph.edges[path[i], path[i + 1]].get("weight", 1)
                    for i in range(len(path) - 1)
                )
                self.cache.learn(nbr, dest, cost)
