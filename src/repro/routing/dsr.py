"""DSR — Dynamic Source Routing (RFC 4728, simplified).

The second reactive protocol, and the one that stresses the harness hardest:
DSR routers keep **no FIB entries at all**.  Every data packet either carries
a full source route stamped by its origin (``Packet.route``) or sits in the
origin's send buffer while a Route Request floods outward accumulating the
path it travels.  Forwarding is therefore driven entirely by the
``Node.route_miss`` hook — at the origin it stamps routes from the cache, at
intermediate nodes it relays along the stamped route — and the fib-loop
monitor inspects stamped routes (via :meth:`source_route_loops`) instead of
walking FIBs.

Route cache: per-node set of full paths (self first).  Caching pulls from
every control message a node relays — RREQ accumulated records give reverse
paths, RREP routes give forward and reverse paths — and a Route Error
*poisons* every cached path using the broken link, at the detector, along
the error's way back, and at the origin.  ``promiscuous=True`` additionally
gleans paths from forwarded data packets (overhearing reduced to the on-path
case); it is **off by default** so the baseline matches the classic non-
promiscuous DSR the comparison papers configure.

Simplifications (docs/manet.md): replies come only from the request target
(no cache replies), broken packets are dropped rather than salvaged, and
links are assumed bidirectional (reverse of a discovered route is usable —
true for this simulator's symmetric links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..net.node import Node
from ..net.packet import CONTROL_HEADER_BYTES, Packet
from ..sim.rng import RngStreams
from ..sim.timers import OneShotTimer
from ..sim.tracing import DropCause
from ..topology.graph import Topology
from .base import RoutingProtocol

__all__ = ["DsrConfig", "DsrProtocol", "RouteRequest", "RouteReply", "RouteError"]

#: Bytes per node id carried in a DSR route record / source route.
ADDRESS_BYTES = 4


@dataclass(frozen=True)
class RouteRequest:
    """Flooded request; ``route`` is the path accumulated so far (origin first)."""

    origin: int
    req_id: int
    target: int
    route: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + ADDRESS_BYTES * len(self.route)


@dataclass(frozen=True)
class RouteReply:
    """Unicast reply carrying the complete path origin -> target."""

    route: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + ADDRESS_BYTES * len(self.route)


@dataclass(frozen=True)
class RouteError:
    """Broken-link notice walking back along ``route`` (origin ... detector)."""

    broken: tuple[int, int]
    route: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + ADDRESS_BYTES * (len(self.route) + 2)


@dataclass(frozen=True)
class DsrConfig:
    """Discovery timing, cache and buffering knobs."""

    #: One discovery attempt's timeout before retrying.
    discovery_timeout: float = 2.8
    #: Additional attempts after the first flood.
    request_retries: int = 2
    #: Max data packets buffered per destination during discovery.
    buffer_limit: int = 64
    #: Glean paths from forwarded data packets (on-path overhearing).
    promiscuous: bool = False
    label: str = "dsr"

    def __post_init__(self) -> None:
        if self.discovery_timeout <= 0:
            raise ValueError("discovery_timeout must be positive")
        if self.request_retries < 0:
            raise ValueError("request_retries must be >= 0")
        if self.buffer_limit < 1:
            raise ValueError("buffer_limit must be >= 1")


class _Discovery:
    """In-flight route discovery for one target."""

    __slots__ = ("attempts", "timer", "packets")

    def __init__(self, timer: OneShotTimer) -> None:
        self.attempts = 0
        self.timer = timer
        self.packets: list[Packet] = []


class DsrProtocol(RoutingProtocol):
    """Source routing from a per-node path cache; the FIB stays empty."""

    name = "dsr"

    def __init__(
        self,
        node: Node,
        rng_streams: RngStreams,
        config: Optional[DsrConfig] = None,
    ) -> None:
        self.config = config or DsrConfig()
        self.name = self.config.label
        super().__init__(node, rng_streams)
        #: dest -> cached full paths (each starts with this node's id).
        self.cache: dict[int, set[tuple[int, ...]]] = {}
        self._req_id = 0
        self._seen: set[tuple[int, int]] = set()
        self._pending: dict[int, _Discovery] = {}
        self.discoveries = 0
        self.discovery_failures = 0
        self.cache_poisonings = 0
        node.route_miss = self._on_route_miss

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        pass  # purely reactive: nothing until traffic asks

    def warm_start(self, topology: Topology) -> None:
        pass  # converged steady state is an empty cache

    # ------------------------------------------------------------------ events

    def handle_message(self, payload: Any, from_node: int) -> None:
        if isinstance(payload, RouteRequest):
            self._handle_request(payload, from_node)
        elif isinstance(payload, RouteReply):
            self._handle_reply(payload, from_node)
        elif isinstance(payload, RouteError):
            self._handle_error(payload, from_node)
        else:
            raise TypeError(f"dsr got unexpected payload {type(payload).__name__}")

    def handle_link_down(self, neighbor: int) -> None:
        # Poison immediately rather than waiting to fail a send: the cache
        # must not offer paths through a link we already know is dead.
        self._purge_link(self.node.id, neighbor)

    def handle_link_up(self, neighbor: int) -> None:
        pass  # paths are rediscovered on demand

    # --------------------------------------------------------------- data path

    def _on_route_miss(self, packet: Packet) -> None:
        route = packet.route
        node_id = self.node.id
        if route is not None and node_id in route:
            index = route.index(node_id)
            if index < len(route) - 1:
                self._relay(packet, route, index)
                return
        if packet.src == node_id:
            self._originate(packet)
            return
        # A routeless transit packet: nothing we can do for it.
        self.node.drop(packet, DropCause.NO_ROUTE)

    def _originate(self, packet: Packet) -> None:
        path = self._best_path(packet.dst)
        if path is not None:
            packet.route = path
            self.node.transmit_to(packet, path[1])
            return
        dest = packet.dst
        disc = self._pending.get(dest)
        if disc is None:
            disc = _Discovery(OneShotTimer(self.sim, lambda d=dest: self._retry(d)))
            self._pending[dest] = disc
            self._buffer(disc, packet)
            self.discoveries += 1
            disc.attempts = 1
            self._send_request(dest)
            disc.timer.start(self.config.discovery_timeout)
        else:
            self._buffer(disc, packet)

    def _relay(self, packet: Packet, route: tuple[int, ...], index: int) -> None:
        next_hop = route[index + 1]
        link = self.node.links.get(next_hop)
        if link is None or not link.up:
            self._report_broken(route, index, next_hop)
            self.node.drop(packet, DropCause.NO_ROUTE)
            return
        if self.config.promiscuous:
            # On-path gleaning: a forwarder learns the route it relays.
            self._cache_path(route[index:])
            self._cache_path(tuple(reversed(route[: index + 1])))
        self.node.transmit_to(packet, next_hop)

    def _report_broken(self, route: tuple[int, ...], index: int, next_hop: int) -> None:
        self._purge_link(self.node.id, next_hop)
        if index > 0:
            error = RouteError(
                broken=(self.node.id, next_hop), route=route[: index + 1]
            )
            self._send_unicast(route[index - 1], error)

    def _buffer(self, disc: _Discovery, packet: Packet) -> None:
        if len(disc.packets) >= self.config.buffer_limit:
            oldest = disc.packets.pop(0)
            self.node.drop(oldest, DropCause.QUEUE_OVERFLOW)
        disc.packets.append(packet)

    def _retry(self, dest: int) -> None:
        disc = self._pending.get(dest)
        if disc is None:
            return
        if self._best_path(dest) is not None:
            self._release(dest)
            return
        if disc.attempts > self.config.request_retries:
            del self._pending[dest]
            self.discovery_failures += 1
            for packet in disc.packets:
                self.node.drop(packet, DropCause.NO_ROUTE)
            return
        disc.attempts += 1
        self._send_request(dest)
        disc.timer.start(self.config.discovery_timeout * 2 ** (disc.attempts - 1))

    def _release(self, dest: int) -> None:
        disc = self._pending.pop(dest, None)
        if disc is None:
            return
        disc.timer.cancel()
        for packet in disc.packets:
            path = self._best_path(dest)
            if path is None:
                self.node.drop(packet, DropCause.NO_ROUTE)
                continue
            packet.route = path
            self.node.transmit_to(packet, path[1])

    # ----------------------------------------------------------- control plane

    def _send_request(self, target: int) -> None:
        self._req_id += 1
        request = RouteRequest(
            origin=self.node.id,
            req_id=self._req_id,
            target=target,
            route=(self.node.id,),
        )
        self._seen.add((request.origin, request.req_id))
        for nbr in self.node.up_neighbors():
            self.node.send_control(nbr, request, request.size_bytes, protocol=self.name)
            self._record_message(nbr, 1, size_bytes=request.size_bytes)

    def _send_unicast(self, neighbor: int, msg: Any) -> None:
        link = self.node.links.get(neighbor)
        if link is None or not link.up:
            return
        self.node.send_control(neighbor, msg, msg.size_bytes, protocol=self.name)
        self._record_message(neighbor, 1, size_bytes=msg.size_bytes)

    def _handle_request(self, request: RouteRequest, from_node: int) -> None:
        node_id = self.node.id
        key = (request.origin, request.req_id)
        if key in self._seen or node_id in request.route:
            return
        self._seen.add(key)
        route = request.route + (node_id,)
        # The accumulated record, reversed, is a path back to the originator.
        self._cache_path(tuple(reversed(route)))
        if request.target == node_id:
            self._send_unicast(from_node, RouteReply(route=route))
        else:
            relayed = RouteRequest(
                origin=request.origin,
                req_id=request.req_id,
                target=request.target,
                route=route,
            )
            for nbr in self.node.up_neighbors():
                if nbr != from_node:
                    self.node.send_control(
                        nbr, relayed, relayed.size_bytes, protocol=self.name
                    )
                    self._record_message(nbr, 1, size_bytes=relayed.size_bytes)

    def _handle_reply(self, reply: RouteReply, from_node: int) -> None:
        route = reply.route
        node_id = self.node.id
        if node_id not in route:
            return  # mis-delivered; symmetric links make this unreachable
        index = route.index(node_id)
        self._cache_path(route[index:])
        self._cache_path(tuple(reversed(route[: index + 1])))
        if index == 0:
            self._release(route[-1])
        else:
            self._send_unicast(route[index - 1], reply)

    def _handle_error(self, error: RouteError, from_node: int) -> None:
        self._purge_link(*error.broken)
        route = error.route
        node_id = self.node.id
        if node_id not in route:
            return
        index = route.index(node_id)
        if index > 0:
            self._send_unicast(route[index - 1], error)

    # ------------------------------------------------------------------- cache

    def _cache_path(self, path: tuple[int, ...]) -> None:
        if len(path) < 2 or path[0] != self.node.id:
            return
        # Every prefix is itself a usable path to its endpoint.
        for end in range(2, len(path) + 1):
            prefix = path[:end]
            self.cache.setdefault(prefix[-1], set()).add(prefix)

    def _best_path(self, dest: int) -> Optional[tuple[int, ...]]:
        """Shortest cached path whose first hop is currently attached and up."""
        paths = self.cache.get(dest)
        while paths:
            best = min(paths, key=lambda p: (len(p), p))
            link = self.node.links.get(best[1])
            if link is not None and link.up:
                return best
            self._purge_link(self.node.id, best[1])
            paths = self.cache.get(dest)
        return None

    def _purge_link(self, u: int, v: int) -> None:
        """Cache poisoning: drop every path using link {u, v} in either order."""
        broken = {(u, v), (v, u)}
        removed = 0
        for dest in list(self.cache):
            paths = self.cache[dest]
            keep = {
                p for p in paths
                if not any((p[i], p[i + 1]) in broken for i in range(len(p) - 1))
            }
            removed += len(paths) - len(keep)
            if keep:
                self.cache[dest] = keep
            else:
                del self.cache[dest]
        if removed:
            self.cache_poisonings += 1

    # -------------------------------------------------------------- inspection

    def route_metric(self, dest: int) -> Optional[int]:
        if dest == self.node.id:
            return 0
        path = self._best_path(dest)
        return None if path is None else len(path) - 1

    def pending_data_packets(self) -> int:
        return sum(len(d.packets) for d in self._pending.values())

    def route_path(self, dest: int) -> Optional[tuple[int, ...]]:
        """The path this node would stamp on a packet to ``dest`` right now.

        Consumed by the validation layer (RIB consistency's chain walk runs
        over this instead of FIB next hops, which DSR never installs).
        """
        return self._best_path(dest)

    def source_route_loops(self) -> list[tuple[int, ...]]:
        """Cached paths that revisit a node — what the fib-loop monitor checks
        for DSR in place of walking (empty) FIBs."""
        return [
            p
            for paths in self.cache.values()
            for p in paths
            if len(set(p)) != len(p)
        ]
