"""SPF — a minimal link-state protocol (the paper's future-work extension).

The paper's §6 proposes extending the comparison to link-state routing; this
module provides that extension.  Each router originates a Link State
Advertisement (LSA) describing its live adjacencies, floods LSAs with
sequence-number-based duplicate suppression, and recomputes shortest paths
(deterministic Dijkstra, same tie-break as the other protocols) whenever its
link-state database changes.

Two knobs model real deployments (and enable the fast-reroute ablation from
the paper's related work — Alaettinoglu/Zinin's "IGP fast reroute" [1] and
Wang/Crowcroft's "emergency exits" [27]):

* ``spf_delay`` — SPF computation throttling: recomputation runs this long
  after the triggering database change (0 = the idealized instant SPF);
* ``lfa`` — precomputed Loop-Free Alternates: alongside each primary next
  hop, the router precomputes a backup neighbor ``n`` satisfying the LFA
  condition ``dist(n, d) < dist(n, s) + dist(s, d)`` (so ``n`` does not route
  back through us) and installs it the instant the primary's link dies —
  data-plane protection while the control plane is still recomputing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import networkx as nx

from ..net.node import Node
from ..net.packet import CONTROL_HEADER_BYTES
from ..sim.rng import RngStreams
from ..sim.timers import OneShotTimer
from ..topology.graph import Topology, shortest_path_tree
from .base import RoutingProtocol

__all__ = ["Lsa", "SpfConfig", "SpfProtocol"]

#: Bytes per adjacency entry in an LSA.
LSA_LINK_BYTES = 8


@dataclass(frozen=True)
class Lsa:
    """One router's view of its own adjacencies."""

    origin: int
    seq: int
    #: (neighbor, cost) pairs for every live adjacency of ``origin``.
    adjacencies: tuple[tuple[int, int], ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + LSA_LINK_BYTES * len(self.adjacencies)


@dataclass(frozen=True)
class SpfConfig:
    """SPF throttling and fast-reroute options."""

    spf_delay: float = 0.0
    lfa: bool = False
    label: str = "spf"

    def __post_init__(self) -> None:
        if self.spf_delay < 0:
            raise ValueError("spf_delay must be >= 0")


class SpfProtocol(RoutingProtocol):
    """Link-state routing with flooding and (throttled) on-change Dijkstra."""

    name = "spf"

    def __init__(
        self,
        node: Node,
        rng_streams: RngStreams,
        config: Optional[SpfConfig] = None,
    ) -> None:
        self.config = config or SpfConfig()
        self.name = self.config.label
        super().__init__(node, rng_streams)
        self.database: dict[int, Lsa] = {}
        self._seq = 0
        self._metrics: dict[int, int] = {}
        #: Precomputed loop-free alternate next hop per destination.
        self.backups: dict[int, int] = {}
        self._spf_timer = OneShotTimer(self.sim, self._recompute)
        #: Cause of the event that scheduled the pending recompute (a
        #: throttled SPF run fires from a timer, after the triggering
        #: message's cause scope has closed — so it is captured here).
        self._recompute_cause: Optional[tuple[str, Optional[int]]] = None
        self.recomputations = 0
        self.lfa_activations = 0

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._originate()

    def warm_start(self, topology: Topology) -> None:
        # Converged database: one LSA per router, seq 1.
        for origin in sorted(topology.nodes):
            adj = tuple(
                (nbr, topology.link(origin, nbr).cost)
                for nbr in topology.neighbors(origin)
            )
            self.database[origin] = Lsa(origin=origin, seq=1, adjacencies=adj)
        self._seq = 1
        self._recompute()

    # ------------------------------------------------------------------ events

    def handle_message(self, payload: Any, from_node: int) -> None:
        if not isinstance(payload, Lsa):
            raise TypeError(f"spf got unexpected payload {type(payload).__name__}")
        known = self.database.get(payload.origin)
        if known is not None and known.seq >= payload.seq:
            return  # duplicate or stale: stop the flood here
        self.database[payload.origin] = payload
        self._flood(payload, exclude=from_node)
        self._schedule_recompute()

    def handle_link_down(self, neighbor: int) -> None:
        if self.config.lfa:
            self._activate_backups(neighbor)
        self._originate()

    def handle_link_up(self, neighbor: int) -> None:
        self._originate()
        # Database sync on adjacency (re)establishment.
        for lsa in list(self.database.values()):
            self._send_lsa(neighbor, lsa)

    # -------------------------------------------------------------- mechanics

    def _activate_backups(self, dead_neighbor: int) -> None:
        """Fast reroute: swing every route using the dead neighbor onto its
        precomputed loop-free alternate, before SPF re-runs."""
        for dest, primary in list(self.node.fib.items()):
            if primary != dead_neighbor:
                continue
            backup = self.backups.get(dest)
            if backup is not None and backup != dead_neighbor:
                link = self.node.links.get(backup)
                if link is not None and link.up:
                    self.node.set_next_hop(dest, backup)
                    self.lfa_activations += 1

    def _originate(self) -> None:
        self._seq += 1
        adjacencies = tuple(
            (nbr, self.node.link_to(nbr).spec.cost) for nbr in self.node.up_neighbors()
        )
        lsa = Lsa(origin=self.node.id, seq=self._seq, adjacencies=adjacencies)
        self.database[self.node.id] = lsa
        self._flood(lsa, exclude=None)
        self._schedule_recompute()

    def _flood(self, lsa: Lsa, exclude: Optional[int]) -> None:
        for nbr in self.node.up_neighbors():
            if nbr != exclude:
                self._send_lsa(nbr, lsa)

    def _send_lsa(self, neighbor: int, lsa: Lsa) -> None:
        self.node.send_control(neighbor, lsa, lsa.size_bytes, protocol=self.name)
        self._record_message(neighbor, 1, size_bytes=lsa.size_bytes)

    def _schedule_recompute(self) -> None:
        # Latest trigger wins; good enough for attribution of a batched run.
        self._recompute_cause = self.node.route_cause
        if self.config.spf_delay <= 0:
            self._recompute()
        elif not self._spf_timer.running:
            self._spf_timer.start(self.config.spf_delay)

    def _graph(self) -> nx.Graph:
        """Two-way-checked topology view from the database."""
        graph = nx.Graph()
        graph.add_node(self.node.id)
        for lsa in self.database.values():
            for nbr, cost in lsa.adjacencies:
                other = self.database.get(nbr)
                if other is None:
                    continue
                if any(back == lsa.origin for back, _ in other.adjacencies):
                    graph.add_edge(lsa.origin, nbr, weight=cost)
        if self.node.id not in graph:
            graph.add_node(self.node.id)
        return graph

    def _recompute(self) -> None:
        """Dijkstra over the database; sync the FIB (and LFA backups)."""
        cause = self._recompute_cause or ("spf_recompute", None)
        self._recompute_cause = None
        with self.route_cause(*cause):
            self._recompute_inner()

    def _recompute_inner(self) -> None:
        self.recomputations += 1
        graph = self._graph()
        paths = shortest_path_tree(graph, self.node.id)
        new_metrics: dict[int, int] = {}
        reachable: set[int] = set()
        for dest, path in paths.items():
            if dest == self.node.id:
                continue
            reachable.add(dest)
            cost = sum(
                graph.edges[path[i], path[i + 1]].get("weight", 1)
                for i in range(len(path) - 1)
            )
            new_metrics[dest] = cost
            self.node.set_next_hop(dest, path[1])
        for dest in set(self._metrics) - reachable:
            self.node.set_next_hop(dest, None)
        self._metrics = new_metrics
        if self.config.lfa:
            self._compute_backups(graph, new_metrics)

    def _compute_backups(self, graph: nx.Graph, metrics: dict[int, int]) -> None:
        """Precompute one loop-free alternate per destination, if any.

        LFA condition (RFC 5286 basic): a neighbor n protects s's route to d
        iff dist(n, d) < dist(n, s) + dist(s, d).
        """
        self.backups.clear()
        neighbor_dist: dict[int, dict[int, int]] = {}
        for nbr in self.node.up_neighbors():
            if nbr in graph:
                neighbor_dist[nbr] = nx.single_source_dijkstra_path_length(
                    graph, nbr, weight="weight"
                )
        for dest, dist_sd in metrics.items():
            primary = self.node.next_hop(dest)
            best: Optional[tuple[int, int]] = None
            for nbr, dists in neighbor_dist.items():
                if nbr == primary or dest not in dists:
                    continue
                dist_nd = dists[dest]
                dist_ns = dists.get(self.node.id)
                if dist_ns is None:
                    continue
                if dist_nd < dist_ns + dist_sd:
                    candidate = (dist_nd, nbr)
                    if best is None or candidate < best:
                        best = candidate
            if best is not None:
                self.backups[dest] = best[1]

    def route_metric(self, dest: int) -> Optional[int]:
        if dest == self.node.id:
            return 0
        return self._metrics.get(dest)
