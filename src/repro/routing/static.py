"""Static routing: tables fixed at shortest paths, never updated.

Used by unit tests and examples that need a deterministic data plane, and as
the degenerate baseline (a network that never reconverges) in ablations.
"""

from __future__ import annotations

from typing import Any, Optional

from ..net.node import Node
from ..sim.rng import RngStreams
from ..topology.graph import Topology, all_shortest_path_trees
from .base import RoutingProtocol

__all__ = ["StaticProtocol"]


class StaticProtocol(RoutingProtocol):
    """Install shortest paths once; ignore every subsequent event."""

    name = "static"

    def __init__(self, node: Node, rng_streams: RngStreams, topology: Topology) -> None:
        super().__init__(node, rng_streams)
        self._topology = topology
        self._metrics: dict[int, int] = {}

    def start(self) -> None:
        self.warm_start(self._topology)

    def warm_start(self, topology: Topology) -> None:
        graph = topology.to_networkx()
        tree = all_shortest_path_trees(topology)[self.node.id]
        for dest, path in tree.items():
            if dest == self.node.id:
                continue
            self.node.set_next_hop(dest, path[1])
            self._metrics[dest] = sum(
                graph.edges[path[i], path[i + 1]].get("weight", 1)
                for i in range(len(path) - 1)
            )

    def handle_message(self, payload: Any, from_node: int) -> None:
        raise TypeError("static routing exchanges no messages")

    def handle_link_down(self, neighbor: int) -> None:
        pass  # static: never adapts

    def route_metric(self, dest: int) -> Optional[int]:
        if dest == self.node.id:
            return 0
        return self._metrics.get(dest)
