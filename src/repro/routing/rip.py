"""RIP (RFC 2453 semantics, as modeled in the paper).

A RIP router keeps only the best route per destination — no alternate-path
information.  When the link to the current next hop fails (or the next hop
reports the destination unreachable), the router loses all reachability and
must wait for another neighbor's *periodic* update (up to 30 s) to learn an
alternate path: the paper's "long path switch-over period" (§4.1).

Everything else (periodic/triggered updates, split horizon with poison
reverse, damping, aging, 25-entry packing) lives in
:class:`~repro.routing.dv_common.DistanceVectorProtocol`.
"""

from __future__ import annotations

from .dv_common import DistanceVectorConfig, DistanceVectorProtocol

__all__ = ["RipProtocol", "DistanceVectorConfig"]


class RipProtocol(DistanceVectorProtocol):
    """Classic RIP: best-route-only distance vector.

    With ``config.holddown > 0``, a lost route enters a hold-down period
    during which replacement news from *other* neighbors is refused (only
    the neighbor that lost the route may revive it) — the classic
    count-to-infinity insurance, at the price of even slower recovery.
    """

    name = "rip"

    def __init__(self, node, rng_streams, config=None) -> None:
        super().__init__(node, rng_streams, config)
        # dest -> (holddown expiry time, neighbor that lost the route).
        self._holddown: dict[int, tuple[float, int]] = {}

    def _consider_route(self, dest: int, advertised: int, cost: int, from_node: int) -> bool:
        metric = min(advertised + cost, self.config.infinity)
        route = self.table.get(dest)
        if route is None:
            if metric >= self.config.infinity:
                return False
            if self._held_down(dest, from_node):
                return False
            return self._set_route(dest, metric, from_node)
        if route.next_hop == from_node:
            # News from the current next hop is always adopted, even if worse
            # (this is what lets RIP count up through a failure).
            if metric >= self.config.infinity:
                self._enter_holddown(dest, from_node)
                return self._set_route(dest, self.config.infinity, None)
            changed = self._set_route(dest, metric, from_node)
            if not changed:
                self._refresh_route(dest)
            return changed
        if route.metric >= self.config.infinity and self._held_down(dest, from_node):
            return False
        if metric < route.metric:
            return self._set_route(dest, metric, from_node)
        return False

    def _neighbor_lost(self, neighbor: int) -> set[int]:
        # No cache: every route through the dead neighbor is simply lost.
        changed = set()
        for dest, route in list(self.table.items()):
            if route.next_hop == neighbor:
                self._enter_holddown(dest, neighbor)
                if self._set_route(dest, self.config.infinity, None):
                    changed.add(dest)
        return changed

    # ------------------------------------------------------------- hold-down

    def _enter_holddown(self, dest: int, original_next_hop: int) -> None:
        if self.config.holddown > 0:
            self._holddown[dest] = (
                self.sim.now + self.config.holddown,
                original_next_hop,
            )

    def _held_down(self, dest: int, from_node: int) -> bool:
        """True if ``dest`` is in hold-down and ``from_node`` may not revive it."""
        entry = self._holddown.get(dest)
        if entry is None:
            return False
        until, original = entry
        if self.sim.now >= until:
            del self._holddown[dest]
            return False
        return from_node != original
