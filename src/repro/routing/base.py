"""Routing protocol interface and shared plumbing.

Every protocol instance is bound to one node.  The node calls
:meth:`handle_message` for arriving control payloads and
:meth:`handle_link_down` / :meth:`handle_link_up` when failure detection
fires; the protocol drives the node's FIB via ``node.set_next_hop``.

``warm_start`` installs the protocol's exact converged state for a topology,
letting experiments skip the multi-minute cold-start period; integration
tests verify warm state equals what cold convergence reaches.
"""

from __future__ import annotations

import abc
import random
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from ..net.node import Node
from ..sim.engine import Simulator
from ..sim.rng import RngStreams
from ..sim.tracing import MessageRecord
from ..topology.graph import Topology

__all__ = ["RoutingProtocol"]


class RoutingProtocol(abc.ABC):
    """Base class for the routing protocols under study."""

    #: Human-readable protocol name ("rip", "dbf", "bgp", ...); set by subclass.
    name: str = "abstract"

    def __init__(self, node: Node, rng_streams: RngStreams) -> None:
        self.node = node
        self.sim: Simulator = node.sim
        self.rng: random.Random = rng_streams.stream(f"{self.name}.node{node.id}")
        self.messages_sent = 0
        self.routes_sent = 0
        node.attach_protocol(self)

    # --------------------------------------------------------------- lifecycle

    @abc.abstractmethod
    def start(self) -> None:
        """Begin protocol operation from empty state (cold start)."""

    @abc.abstractmethod
    def warm_start(self, topology: Topology) -> None:
        """Install converged state for ``topology`` and arm steady-state timers."""

    # ---------------------------------------------------------------- events

    @abc.abstractmethod
    def handle_message(self, payload: Any, from_node: int) -> None:
        """Process a routing message from a directly connected neighbor."""

    @abc.abstractmethod
    def handle_link_down(self, neighbor: int) -> None:
        """The link to ``neighbor`` was detected down."""

    def handle_link_up(self, neighbor: int) -> None:
        """The link to ``neighbor`` came (back) up.  Default: ignore."""

    # ----------------------------------------------------- causal attribution

    @contextmanager
    def route_cause(self, kind: str, peer: Optional[int] = None) -> Iterator[None]:
        """Scope during which FIB changes are attributed to ``(kind, peer)``.

        ``node.set_next_hop`` stamps the current scope onto every
        :class:`~repro.sim.tracing.RouteChangeRecord` it publishes, which is
        what lets the flight recorder link a routing-protocol message to the
        FIB flips it triggered.  Scopes nest; the previous cause is restored
        on exit.  Control-plane only — the data hot path never enters one.
        """
        node = self.node
        previous = node.route_cause
        node.route_cause = (kind, peer)
        try:
            yield
        finally:
            node.route_cause = previous

    def apply_message(self, payload: Any, from_node: int) -> None:
        """Apply a neighbor's message with causal attribution.

        Delivery paths that bypass ``Node.receive`` (BGP's and DUAL's
        reliable channels hand payloads straight to the peer protocol) call
        this instead of :meth:`handle_message` so the change still lands in
        a ``("message", from_node)`` cause scope.  ``Node.receive`` sets the
        scope itself, keeping duck-typed protocol stand-ins workable.
        """
        with self.route_cause("message", from_node):
            self.handle_message(payload, from_node)

    # -------------------------------------------------------------- inspection

    @abc.abstractmethod
    def route_metric(self, dest: int) -> Optional[int]:
        """Current metric/path length to ``dest`` (None if unreachable)."""

    def pending_data_packets(self) -> int:
        """Data packets the protocol is holding (reactive discovery buffers).

        Proactive protocols never buffer data, so the default is 0.  The
        packet-conservation monitor adds this to the in-network count: a
        packet parked in an AODV/DSR discovery buffer is alive, not leaked.
        """
        return 0

    # ---------------------------------------------------------------- helpers

    def link_costs(self, only_up: bool = True) -> dict[int, int]:
        """Map of neighbor -> link cost (up links only by default)."""
        costs = {}
        for nbr in self.node.neighbors():
            link = self.node.link_to(nbr)
            if only_up and not link.up:
                continue
            costs[nbr] = link.spec.cost
        return costs

    def _record_message(
        self,
        neighbor: int,
        n_routes: int,
        is_withdrawal: bool = False,
        size_bytes: int = 0,
    ) -> None:
        """Account one sent message for overhead metrics.

        ``size_bytes`` feeds the per-protocol byte counters in the
        observability layer; callers pass the same wire size they gave
        ``node.send_control``.
        """
        self.messages_sent += 1
        self.routes_sent += n_routes
        bus = self.node.bus
        bus.counters.messages += 1
        if bus.wants_message:
            # Fields: (time, sender, receiver, protocol, n_routes,
            # is_withdrawal, size_bytes); tuple.__new__ skips the generated
            # NamedTuple __new__ on this per-message path.
            bus.publish(tuple.__new__(MessageRecord, (
                self.sim._now, self.node.id, neighbor, self.name,
                n_routes, is_withdrawal, size_bytes,
            )))
