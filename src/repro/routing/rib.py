"""Routing information base structures shared by the protocols.

* :class:`DistanceVectorRoute` — one RIP/DBF table entry (metric + next hop +
  liveness timestamps).
* :class:`NeighborVectorCache` — DBF's per-neighbor cache of advertised
  distances (the "alternate path information" the paper identifies as the
  decisive design factor).
* :class:`PathAttr` — one BGP path (tuple of node ids ending at the
  destination) with helpers for loop checks and preference comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "RIP_INFINITY",
    "DistanceVectorRoute",
    "NeighborVectorCache",
    "PathAttr",
    "best_vector_choice",
]

#: RFC 2453 infinity metric.
RIP_INFINITY = 16


@dataclass
class DistanceVectorRoute:
    """One entry of a RIP/DBF routing table."""

    dest: int
    metric: int
    next_hop: Optional[int]
    #: Simulation time of the last refreshing update (drives the 180 s timeout).
    updated_at: float = 0.0

    @property
    def reachable(self) -> bool:
        return self.metric < RIP_INFINITY and self.next_hop is not None


class NeighborVectorCache:
    """Latest distance vector heard from each neighbor.

    Values are the *advertised* metrics (after the sender applied split
    horizon with poison reverse), so entries can be the infinity metric.
    """

    def __init__(self, infinity: int = RIP_INFINITY) -> None:
        self.infinity = infinity
        self._vectors: dict[int, dict[int, int]] = {}

    def neighbors(self) -> list[int]:
        return sorted(self._vectors)

    def learn(self, neighbor: int, dest: int, metric: int) -> None:
        """Record neighbor's advertised metric for dest."""
        self._vectors.setdefault(neighbor, {})[dest] = min(metric, self.infinity)

    def advertised(self, neighbor: int, dest: int) -> int:
        """Metric neighbor last advertised for dest (infinity if never)."""
        return self._vectors.get(neighbor, {}).get(dest, self.infinity)

    def forget_neighbor(self, neighbor: int) -> None:
        """Drop the whole vector (the link to this neighbor died)."""
        self._vectors.pop(neighbor, None)

    def known_destinations(self) -> set[int]:
        dests: set[int] = set()
        for vector in self._vectors.values():
            dests.update(vector)
        return dests


def best_vector_choice(
    cache: NeighborVectorCache,
    dest: int,
    link_costs: dict[int, int],
    infinity: int = RIP_INFINITY,
) -> tuple[int, Optional[int]]:
    """Bellman-Ford selection over a neighbor cache.

    Returns ``(metric, next_hop)`` minimizing advertised metric + link cost,
    ties broken by lowest neighbor id; ``(infinity, None)`` if nothing usable.
    ``link_costs`` maps each *usable* (up) neighbor to its link cost, so
    failed links are excluded by simply not listing them.
    """
    best_metric = infinity
    best_nbr: Optional[int] = None
    for nbr in sorted(link_costs):
        metric = cache.advertised(nbr, dest) + link_costs[nbr]
        if metric < best_metric:
            best_metric = metric
            best_nbr = nbr
    if best_metric >= infinity:
        return infinity, None
    return best_metric, best_nbr


@dataclass(frozen=True)
class PathAttr:
    """A BGP path: sequence of node ids from the advertising neighbor to the
    destination (inclusive on both ends)."""

    nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("empty path")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"path {self.nodes} repeats a node")

    @classmethod
    def of(cls, nodes: Iterable[int]) -> "PathAttr":
        return cls(tuple(nodes))

    @property
    def dest(self) -> int:
        return self.nodes[-1]

    @property
    def first_hop(self) -> int:
        return self.nodes[0]

    def __len__(self) -> int:
        return len(self.nodes)

    def contains(self, node: int) -> bool:
        return node in self.nodes

    def prepend(self, node: int) -> "PathAttr":
        """The path as re-advertised by ``node``."""
        return PathAttr((node,) + self.nodes)

    def preference_key(self) -> tuple[int, int]:
        """Sort key: shorter path first, then lowest first hop (the paper's
        shortest-path routing policy with deterministic tie-break)."""
        return (len(self.nodes), self.nodes[0])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Path[" + "-".join(map(str, self.nodes)) + "]"
