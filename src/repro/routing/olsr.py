"""OLSR — Optimized Link State Routing (RFC 3626, simplified).

The proactive member of the MANET trio.  Every node periodically HELLOs its
neighbors (carrying its neighbor list and its chosen MultiPoint Relays) and
the nodes *selected* as MPRs periodically originate Topology Control (TC)
messages listing their selectors.  TCs flood network-wide, but — the "O" in
OLSR — a node retransmits a TC only when the sender selected it as MPR, so
the flood rides the MPR backbone instead of hitting every edge.  Routes are
hop-count Dijkstra over the partial topology the TCs reveal: symmetric 1-hop
links plus one edge per (TC origin, selector) pair.  On unit-cost graphs that
partial view still contains a shortest path to every destination — MPR
coverage guarantees it — which is why OLSR joins the harness's convergent
set and is held to strict SPF-cost agreement at quiescence.

Simplifications (docs/manet.md): neighbor liveness comes from the
simulator's link-layer failure detection (``handle_link_down``), not HELLO
hold timers, so there is no detection lag to model twice; link hysteresis
and multiple-interface handling are dropped; willingness is uniform.  MPR
selection is the RFC's greedy heuristic with the deterministic smallest-id
tie-break used across this repo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

import networkx as nx

from ..net.node import Node
from ..net.packet import CONTROL_HEADER_BYTES
from ..sim.rng import RngStreams
from ..sim.timers import JitteredInterval, PeriodicTimer
from ..topology.graph import Topology, shortest_path_tree
from .base import RoutingProtocol

__all__ = ["OlsrConfig", "OlsrProtocol", "OlsrHello", "OlsrTc", "select_mprs"]

#: Bytes per neighbor entry in a HELLO / per selector in a TC.
NEIGHBOR_ENTRY_BYTES = 4


@dataclass(frozen=True)
class OlsrHello:
    """Link-local beacon: who I hear, who I consider symmetric, my MPRs."""

    origin: int
    #: (neighbor id, "sym" | "heard") pairs.
    neighbors: tuple[tuple[int, str], ...]
    mprs: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + NEIGHBOR_ENTRY_BYTES * (
            len(self.neighbors) + len(self.mprs)
        )


@dataclass(frozen=True)
class OlsrTc:
    """Flooded topology declaration: the origin's MPR selectors."""

    origin: int
    seq: int
    selectors: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + NEIGHBOR_ENTRY_BYTES * len(self.selectors)


@dataclass(frozen=True)
class OlsrConfig:
    """Beacon cadence (RFC 3626 defaults) and labeling."""

    hello_interval: float = 2.0
    hello_jitter: float = 0.2
    tc_interval: float = 5.0
    tc_jitter: float = 0.5
    label: str = "olsr"

    def __post_init__(self) -> None:
        if self.hello_interval <= 0 or self.tc_interval <= 0:
            raise ValueError("intervals must be positive")
        if not (0 <= self.hello_jitter <= self.hello_interval):
            raise ValueError("hello_jitter out of range")
        if not (0 <= self.tc_jitter <= self.tc_interval):
            raise ValueError("tc_jitter out of range")


def select_mprs(
    self_id: int,
    sym_neighbors: Iterable[int],
    two_hop: Mapping[int, frozenset[int] | set[int]],
) -> set[int]:
    """RFC 3626 §8.3.1 greedy MPR heuristic, deterministic tie-break.

    Picks a subset of ``sym_neighbors`` covering every strict 2-hop neighbor:
    first the sole providers (neighbors that are the only path to some 2-hop
    node), then repeatedly the neighbor covering the most still-uncovered
    2-hop nodes (smallest id on ties).
    """
    neighbors = set(sym_neighbors)
    reach = {
        n: set(two_hop.get(n, ())) - neighbors - {self_id, n} for n in neighbors
    }
    uncovered = set().union(*reach.values()) if reach else set()
    mprs: set[int] = set()
    # Sole providers are forced picks.
    for target in sorted(uncovered):
        providers = [n for n in sorted(neighbors) if target in reach[n]]
        if len(providers) == 1:
            mprs.add(providers[0])
    for m in mprs:
        uncovered -= reach[m]
    while uncovered:
        best = min(
            (n for n in neighbors - mprs),
            key=lambda n: (-len(reach[n] & uncovered), n),
            default=None,
        )
        if best is None or not (reach[best] & uncovered):
            break  # remaining 2-hop nodes are not coverable right now
        mprs.add(best)
        uncovered -= reach[best]
    return mprs


class OlsrProtocol(RoutingProtocol):
    """Proactive link state over an MPR flooding backbone."""

    name = "olsr"

    def __init__(
        self,
        node: Node,
        rng_streams: RngStreams,
        config: Optional[OlsrConfig] = None,
    ) -> None:
        self.config = config or OlsrConfig()
        self.name = self.config.label
        super().__init__(node, rng_streams)
        #: neighbor -> "sym" | "heard" (up links only).
        self._nbr: dict[int, str] = {}
        #: neighbor -> its symmetric neighbor set (from its HELLOs).
        self._two_hop: dict[int, set[int]] = {}
        #: Our chosen relays, and the neighbors that chose us.
        self.mprs: set[int] = set()
        self.mpr_selectors: set[int] = set()
        self._tc_seq = 0
        #: TC table: origin -> (seq, selector set, expires_at).  Entries are
        #: refreshed by every TC period; an origin that stops advertising
        #: (lost all its selectors, or left the network) ages out after
        #: TOP_HOLD_TIME = 3 TC intervals instead of haunting the graph.
        self._topo: dict[int, tuple[int, frozenset[int], float]] = {}
        self._metrics: dict[int, int] = {}
        #: Keep originating (empty, retracting) TCs until this time even if
        #: we have no selectors left — remote nodes must learn our old edges
        #: are gone without waiting a full TOP_HOLD_TIME for expiry.
        self._retract_until = 0.0
        self.tc_forwards = 0
        self._hello_timer = PeriodicTimer(
            self.sim,
            JitteredInterval(self.config.hello_interval, self.config.hello_jitter, self.rng),
            self._send_hello,
        )
        self._tc_timer = PeriodicTimer(
            self.sim,
            JitteredInterval(self.config.tc_interval, self.config.tc_jitter, self.rng),
            self._originate_tc,
        )

    # --------------------------------------------------------------- lifecycle

    def start(self) -> None:
        for nbr in self.node.up_neighbors():
            self._nbr[nbr] = "heard"
        self._hello_timer.start(self.rng.uniform(0, self.config.hello_interval))
        self._tc_timer.start(self.rng.uniform(0, self.config.tc_interval))
        self._send_hello()

    def warm_start(self, topology: Topology) -> None:
        """Install the state cold HELLO/TC exchange converges to."""
        me = self.node.id
        adj = {n: set(topology.neighbors(n)) for n in topology.nodes}
        for nbr in sorted(adj.get(me, ())):
            self._nbr[nbr] = "sym"
            self._two_hop[nbr] = set(adj[nbr]) - {me}
        self.mprs = select_mprs(me, self._nbr, self._two_hop)
        # Everyone runs the same deterministic heuristic, so each node can
        # reconstruct who selected whom without exchanging a single message.
        all_mprs = {n: select_mprs(n, adj[n], {m: adj[m] for m in adj[n]}) for n in adj}
        self.mpr_selectors = {n for n in adj.get(me, ()) if me in all_mprs[n]}
        expires = self.sim.now + self._hold_time()
        for origin in sorted(adj):
            selectors = frozenset(n for n in adj[origin] if origin in all_mprs[n])
            if selectors:
                self._topo[origin] = (1, selectors, expires)
        self._tc_seq = 1
        if self.mpr_selectors:
            self._retract_until = self.sim.now + self._hold_time()
        self._recompute()
        self._hello_timer.start()
        self._tc_timer.start()

    # ------------------------------------------------------------------ events

    def handle_message(self, payload: Any, from_node: int) -> None:
        if isinstance(payload, OlsrHello):
            self._handle_hello(payload, from_node)
        elif isinstance(payload, OlsrTc):
            self._handle_tc(payload, from_node)
        else:
            raise TypeError(f"olsr got unexpected payload {type(payload).__name__}")

    def handle_link_down(self, neighbor: int) -> None:
        self._nbr.pop(neighbor, None)
        self._two_hop.pop(neighbor, None)
        self.mpr_selectors.discard(neighbor)
        self._refresh_mprs()
        self._recompute()

    def handle_link_up(self, neighbor: int) -> None:
        self._nbr[neighbor] = "heard"
        # Beacon immediately so the new adjacency turns symmetric within one
        # exchange instead of one full period.
        self._send_hello()

    # ----------------------------------------------------------- control plane

    def _send_hello(self) -> None:
        hello = OlsrHello(
            origin=self.node.id,
            neighbors=tuple(sorted(self._nbr.items())),
            mprs=tuple(sorted(self.mprs)),
        )
        for nbr in self.node.up_neighbors():
            self.node.send_control(nbr, hello, hello.size_bytes, protocol=self.name)
            self._record_message(nbr, 1, size_bytes=hello.size_bytes)

    def _handle_hello(self, hello: OlsrHello, from_node: int) -> None:
        link = self.node.links.get(from_node)
        if link is None or not link.up:
            return
        listed = dict(hello.neighbors)
        # They hear us -> the link is symmetric from our side.
        self._nbr[from_node] = "sym" if self.node.id in listed else "heard"
        self._two_hop[from_node] = {
            n for n, status in hello.neighbors if status == "sym" and n != self.node.id
        }
        if self.node.id in hello.mprs:
            self.mpr_selectors.add(from_node)
        else:
            self.mpr_selectors.discard(from_node)
        self._refresh_mprs()
        self._recompute()

    def _refresh_mprs(self) -> None:
        sym = [n for n, status in self._nbr.items() if status == "sym"]
        self.mprs = select_mprs(self.node.id, sym, self._two_hop)

    def _originate_tc(self) -> None:
        if not self.mpr_selectors and self.sim.now >= self._retract_until:
            return  # only selected relays (or recently-retired ones) advertise
        if self.mpr_selectors:
            self._retract_until = self.sim.now + self._hold_time()
        self._tc_seq += 1
        tc = OlsrTc(
            origin=self.node.id,
            seq=self._tc_seq,
            selectors=tuple(sorted(self.mpr_selectors)),
        )
        self._topo[self.node.id] = (
            self._tc_seq,
            frozenset(self.mpr_selectors),
            self.sim.now + self._hold_time(),
        )
        self._flood_tc(tc, exclude=None)

    def _flood_tc(self, tc: OlsrTc, exclude: Optional[int]) -> None:
        for nbr in self.node.up_neighbors():
            if nbr != exclude:
                self.node.send_control(nbr, tc, tc.size_bytes, protocol=self.name)
                self._record_message(nbr, 1, size_bytes=tc.size_bytes)

    def _hold_time(self) -> float:
        """TC validity (RFC 3626 TOP_HOLD_TIME): three advertisement periods."""
        return 3.0 * self.config.tc_interval

    def _handle_tc(self, tc: OlsrTc, from_node: int) -> None:
        known = self._topo.get(tc.origin)
        if known is not None and known[0] >= tc.seq:
            return  # duplicate or stale: the flood stops here
        self._topo[tc.origin] = (
            tc.seq,
            frozenset(tc.selectors),
            self.sim.now + self._hold_time(),
        )
        # MPR-only forwarding: relay solely on behalf of our selectors.
        if from_node in self.mpr_selectors:
            self.tc_forwards += 1
            self._flood_tc(tc, exclude=from_node)
        self._recompute()

    # ---------------------------------------------------------------- routing

    def _graph(self) -> nx.Graph:
        graph = nx.Graph()
        me = self.node.id
        now = self.sim.now
        graph.add_node(me)
        for nbr, status in self._nbr.items():
            if status == "sym":
                graph.add_edge(me, nbr)
                # RFC 3626 §10: the 2-hop neighborhood from HELLOs is part
                # of the routing set — TCs only cover the MPR backbone, and
                # a node that selects no MPRs appears in no TC at all.
                for two in self._two_hop.get(nbr, ()):
                    graph.add_edge(nbr, two)
        for origin in list(self._topo):
            seq, selectors, expires_at = self._topo[origin]
            if expires_at < now:
                del self._topo[origin]
                continue
            for s in selectors:
                graph.add_edge(origin, s)
        return graph

    def _recompute(self) -> None:
        paths = shortest_path_tree(self._graph(), self.node.id)
        new_metrics: dict[int, int] = {}
        for dest, path in paths.items():
            if dest == self.node.id:
                continue
            # A path through the TC topology may start with an edge we can't
            # actually use yet (asymmetric or down from our side); only
            # install routes whose first hop is a live symmetric neighbor.
            first = path[1]
            if self._nbr.get(first) != "sym":
                continue
            new_metrics[dest] = len(path) - 1
            self.node.set_next_hop(dest, first)
        for dest in set(self._metrics) - set(new_metrics):
            self.node.set_next_hop(dest, None)
        self._metrics = new_metrics

    # -------------------------------------------------------------- inspection

    def route_metric(self, dest: int) -> Optional[int]:
        if dest == self.node.id:
            return 0
        return self._metrics.get(dest)
