"""Routing message formats and on-the-wire packing rules.

The paper leans on two packing details to explain Figure 4:

* a RIP/DBF update message carries up to **25 destination entries**
  (RFC 2453 message size), so in a 49-node network a single triggered update
  usually covers every destination affected by a failure; while
* a BGP update can only group destinations that share the **same path**, so
  one failure fans out into several updates, and all but the first are held
  back by the per-neighbor MRAI timer.

These classes encode exactly those constraints, plus byte sizes so messages
occupy realistic serialization time on the 1 Mbps links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..net.packet import CONTROL_HEADER_BYTES
from .rib import PathAttr

__all__ = [
    "DV_MAX_ROUTES_PER_MESSAGE",
    "DV_ROUTE_ENTRY_BYTES",
    "BGP_DEST_BYTES",
    "BGP_PATH_NODE_BYTES",
    "DistanceVectorUpdate",
    "PathVectorUpdate",
    "PathVectorWithdrawal",
    "pack_distance_vector",
    "pack_path_vector",
]

#: RFC 2453: at most 25 route entries per RIP response message.
DV_MAX_ROUTES_PER_MESSAGE = 25

#: RFC 2453: each route entry is 20 bytes.
DV_ROUTE_ENTRY_BYTES = 20

#: Bytes per destination prefix in a BGP update.
BGP_DEST_BYTES = 4

#: Bytes per node in a BGP AS-path attribute.
BGP_PATH_NODE_BYTES = 4


@dataclass(frozen=True)
class DistanceVectorUpdate:
    """RIP/DBF update: (dest, metric) pairs, already split-horizon processed
    for the receiving neighbor."""

    routes: tuple[tuple[int, int], ...]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + DV_ROUTE_ENTRY_BYTES * len(self.routes)

    def __len__(self) -> int:
        return len(self.routes)


@dataclass(frozen=True)
class PathVectorUpdate:
    """BGP announcement: one path shared by one or more destinations.

    ``path`` is the full node path as seen from the receiver (sender
    prepended), whose last element names one destination; ``dests`` lists
    every destination sharing the same path *prefix semantics* — in this
    shortest-path setting each destination has its own path, so updates
    normally carry a single destination, which is the behavior the paper's
    Figure 4 analysis relies on.
    """

    path: PathAttr
    dests: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dests:
            raise ValueError("announcement with no destinations")

    @property
    def size_bytes(self) -> int:
        return (
            CONTROL_HEADER_BYTES
            + BGP_DEST_BYTES * len(self.dests)
            + BGP_PATH_NODE_BYTES * len(self.path)
        )

    def __len__(self) -> int:
        return len(self.dests)


@dataclass(frozen=True)
class PathVectorWithdrawal:
    """BGP explicit withdrawal of previously advertised destinations."""

    dests: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dests:
            raise ValueError("withdrawal with no destinations")

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + BGP_DEST_BYTES * len(self.dests)

    def __len__(self) -> int:
        return len(self.dests)


def pack_distance_vector(
    routes: Iterable[tuple[int, int]],
    max_routes: int = DV_MAX_ROUTES_PER_MESSAGE,
) -> list[DistanceVectorUpdate]:
    """Split (dest, metric) pairs into <=25-entry update messages,
    destinations in sorted order for determinism."""
    ordered = sorted(routes)
    messages = []
    for start in range(0, len(ordered), max_routes):
        chunk = tuple(ordered[start : start + max_routes])
        if chunk:
            messages.append(DistanceVectorUpdate(routes=chunk))
    return messages


def pack_path_vector(
    announcements: Sequence[tuple[int, PathAttr]],
) -> list[PathVectorUpdate]:
    """Group (dest, path) announcements into updates, one per distinct path."""
    by_path: dict[PathAttr, list[int]] = {}
    for dest, path in announcements:
        by_path.setdefault(path, []).append(dest)
    messages = []
    for path in sorted(by_path, key=lambda p: p.nodes):
        dests = tuple(sorted(by_path[path]))
        messages.append(PathVectorUpdate(path=path, dests=dests))
    return messages
