"""Routing protocols: RIP, DBF, BGP (+BGP-3), SPF extension, MANET trio
(AODV/DSR/OLSR), static baseline."""

from .aodv import AodvConfig, AodvProtocol, Rerr, Rrep, Rreq
from .base import RoutingProtocol
from .bgp import BgpConfig, BgpProtocol
from .dsr import DsrConfig, DsrProtocol, RouteError, RouteReply, RouteRequest
from .olsr import OlsrConfig, OlsrHello, OlsrProtocol, OlsrTc, select_mprs
from .damping import DampingConfig, RouteDampener
from .dbf import DbfProtocol
from .dual import DualProtocol, DualQuery, DualReply, DualUpdate
from .dv_common import DistanceVectorConfig, DistanceVectorProtocol
from .messages import (
    DV_MAX_ROUTES_PER_MESSAGE,
    DistanceVectorUpdate,
    PathVectorUpdate,
    PathVectorWithdrawal,
    pack_distance_vector,
    pack_path_vector,
)
from .rib import (
    RIP_INFINITY,
    DistanceVectorRoute,
    NeighborVectorCache,
    PathAttr,
    best_vector_choice,
)
from .rip import RipProtocol
from .spf import Lsa, SpfConfig, SpfProtocol
from .static import StaticProtocol

__all__ = [
    "RoutingProtocol",
    "AodvProtocol",
    "AodvConfig",
    "Rreq",
    "Rrep",
    "Rerr",
    "DsrProtocol",
    "DsrConfig",
    "RouteRequest",
    "RouteReply",
    "RouteError",
    "OlsrProtocol",
    "OlsrConfig",
    "OlsrHello",
    "OlsrTc",
    "select_mprs",
    "RipProtocol",
    "DbfProtocol",
    "DualProtocol",
    "DualUpdate",
    "DualQuery",
    "DualReply",
    "BgpProtocol",
    "BgpConfig",
    "DampingConfig",
    "RouteDampener",
    "SpfProtocol",
    "SpfConfig",
    "Lsa",
    "StaticProtocol",
    "DistanceVectorProtocol",
    "DistanceVectorConfig",
    "DistanceVectorUpdate",
    "PathVectorUpdate",
    "PathVectorWithdrawal",
    "pack_distance_vector",
    "pack_path_vector",
    "DV_MAX_ROUTES_PER_MESSAGE",
    "RIP_INFINITY",
    "DistanceVectorRoute",
    "NeighborVectorCache",
    "PathAttr",
    "best_vector_choice",
]
