"""Route flap damping (RFC 2439 style), an optional BGP feature.

The paper's introduction flags damping as a double-edged sword: richer
connectivity means more alternate paths, but path exploration during
convergence looks like flapping, and damping then *suppresses* the very
routes convergence needs (Bush/Griffin/Mao, RIPE-43; Mao et al., SIGCOMM
2002 — the paper's [4] and [15]).  This module implements the standard
penalty machinery so the effect is measurable in our harness:

* each withdrawal adds ``withdrawal_penalty``; each re-advertisement that
  changes the path adds ``readvertisement_penalty``;
* the penalty decays exponentially with ``half_life``;
* when it crosses ``suppress_threshold`` the route (per neighbor,
  destination) is suppressed — excluded from best-path selection — until the
  penalty decays to ``reuse_threshold`` (bounded by ``max_suppress_time``).

Defaults are scaled to the paper's experiment timescale (its convergence
windows are ~a minute, not the quarter-hour of production half-lives).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from ..sim.engine import EventHandle, Simulator

__all__ = ["DampingConfig", "RouteDampener"]


@dataclass(frozen=True)
class DampingConfig:
    """Penalty thresholds and decay, RFC 2439 vocabulary."""

    suppress_threshold: float = 2000.0
    reuse_threshold: float = 750.0
    half_life: float = 60.0
    withdrawal_penalty: float = 1000.0
    readvertisement_penalty: float = 500.0
    max_suppress_time: float = 180.0

    def __post_init__(self) -> None:
        if self.reuse_threshold <= 0 or self.suppress_threshold <= self.reuse_threshold:
            raise ValueError("need 0 < reuse_threshold < suppress_threshold")
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        if self.withdrawal_penalty < 0 or self.readvertisement_penalty < 0:
            raise ValueError("penalties must be non-negative")
        if self.max_suppress_time <= 0:
            raise ValueError("max_suppress_time must be positive")


class _DampState:
    __slots__ = ("penalty", "updated_at", "suppressed", "reuse_handle")

    def __init__(self) -> None:
        self.penalty = 0.0
        self.updated_at = 0.0
        self.suppressed = False
        self.reuse_handle: Optional[EventHandle] = None


class RouteDampener:
    """Per-key flap accounting with suppression/reuse callbacks.

    Keys are ``(neighbor, destination)`` pairs in the BGP integration, but
    any hashable works.  ``on_reuse(key)`` fires when a suppressed key
    becomes usable again.
    """

    def __init__(
        self,
        sim: Simulator,
        config: DampingConfig,
        on_reuse: Callable[[Hashable], None],
    ) -> None:
        self._sim = sim
        self.config = config
        self._on_reuse = on_reuse
        self._state: dict[Hashable, _DampState] = {}
        self.suppressions = 0

    # ------------------------------------------------------------- recording

    def record_withdrawal(self, key: Hashable) -> None:
        self._add_penalty(key, self.config.withdrawal_penalty)

    def record_readvertisement(self, key: Hashable) -> None:
        self._add_penalty(key, self.config.readvertisement_penalty)

    def _add_penalty(self, key: Hashable, amount: float) -> None:
        state = self._state.setdefault(key, _DampState())
        state.penalty = self._decayed(state) + amount
        state.updated_at = self._sim.now
        if not state.suppressed and state.penalty >= self.config.suppress_threshold:
            self._suppress(key, state)

    # ------------------------------------------------------------ inspection

    def is_suppressed(self, key: Hashable) -> bool:
        state = self._state.get(key)
        return state is not None and state.suppressed

    def penalty(self, key: Hashable) -> float:
        state = self._state.get(key)
        return self._decayed(state) if state is not None else 0.0

    def forget(self, key_prefix: Hashable) -> None:
        """Drop all state whose key is ``key_prefix`` or starts with it
        (used when a neighbor session dies)."""
        for key in list(self._state):
            matches = key == key_prefix or (
                isinstance(key, tuple) and key and key[0] == key_prefix
            )
            if matches:
                state = self._state.pop(key)
                if state.reuse_handle is not None:
                    state.reuse_handle.cancel()

    # -------------------------------------------------------------- internals

    def _decayed(self, state: _DampState) -> float:
        age = self._sim.now - state.updated_at
        return state.penalty * 0.5 ** (age / self.config.half_life)

    def _suppress(self, key: Hashable, state: _DampState) -> None:
        state.suppressed = True
        self.suppressions += 1
        # Time for the penalty to decay to the reuse threshold.
        ratio = state.penalty / self.config.reuse_threshold
        wait = min(
            self.config.half_life * math.log2(ratio), self.config.max_suppress_time
        )
        state.reuse_handle = self._sim.schedule(wait, lambda: self._reuse(key))

    def _reuse(self, key: Hashable) -> None:
        state = self._state.get(key)
        if state is None or not state.suppressed:
            return
        state.suppressed = False
        state.penalty = self._decayed(state)
        state.updated_at = self._sim.now
        state.reuse_handle = None
        self._on_reuse(key)
