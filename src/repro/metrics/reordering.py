"""Packet reordering analysis.

Transient forwarding paths reorder traffic: packets already queued along the
old (longer or congested) path arrive after younger packets that took the
new one.  The paper notes delay/jitter "are only meaningful when packets are
delivered"; reordering is the third member of that family and matters to
transports (spurious fast-retransmit).  Packet ids are assigned in send
order per flow, so arrival-order inversions measure reordering directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..traffic.flows import Delivery

__all__ = ["ReorderingReport", "analyze_reordering"]


@dataclass(frozen=True)
class ReorderingReport:
    """Arrival-order inversions for one flow."""

    delivered: int
    #: Packets that arrived after a younger (higher-id) packet had arrived.
    late_packets: int
    #: Largest id gap a late packet arrived behind (reordering extent).
    max_displacement: int
    #: Number of distinct reordering episodes (maximal runs of late packets).
    episodes: int

    @property
    def reordering_ratio(self) -> float:
        return self.late_packets / self.delivered if self.delivered else 0.0


def analyze_reordering(deliveries: Iterable[Delivery]) -> ReorderingReport:
    """Classify deliveries (in arrival order) by send-order inversions."""
    delivered = 0
    late = 0
    max_disp = 0
    episodes = 0
    high = -1
    in_episode = False
    for d in deliveries:
        delivered += 1
        if d.packet_id < high:
            late += 1
            max_disp = max(max_disp, high - d.packet_id)
            if not in_episode:
                episodes += 1
                in_episode = True
        else:
            high = d.packet_id
            in_episode = False
    return ReorderingReport(
        delivered=delivered,
        late_packets=late,
        max_displacement=max_disp,
        episodes=episodes,
    )
