"""Trace export/import: JSONL files for external analysis.

The paper's methodology revolves around routing/forwarding trace files; this
module writes the bus's typed records as JSON Lines (one record per line,
``type`` field first) so they can be grepped, loaded into pandas, or diffed
across runs — and reads them back into the same record types.
"""

from __future__ import annotations

import json
import warnings
from typing import IO, Callable, Iterable, Iterator, Optional, Union

from ..sim.tracing import (
    DropCause,
    LinkEventRecord,
    MessageRecord,
    PacketRecord,
    RouteChangeRecord,
    TraceBus,
)

__all__ = ["write_trace", "read_trace", "export_bus"]

Record = Union[PacketRecord, RouteChangeRecord, LinkEventRecord, MessageRecord]


def _encode(record: Record) -> dict:
    if isinstance(record, PacketRecord):
        return {
            "type": "packet",
            "time": record.time,
            "kind": record.kind,
            "packet_id": record.packet_id,
            "node": record.node,
            "flow_id": record.flow_id,
            "ttl": record.ttl,
            "cause": record.cause.value if record.cause else None,
            "dst": record.dst,
        }
    if isinstance(record, RouteChangeRecord):
        return {
            "type": "route",
            "time": record.time,
            "node": record.node,
            "dest": record.dest,
            "old_next_hop": record.old_next_hop,
            "new_next_hop": record.new_next_hop,
            "cause": list(record.cause) if record.cause is not None else None,
        }
    if isinstance(record, LinkEventRecord):
        return {
            "type": "link",
            "time": record.time,
            "node_a": record.node_a,
            "node_b": record.node_b,
            "up": record.up,
        }
    if isinstance(record, MessageRecord):
        return {
            "type": "message",
            "time": record.time,
            "sender": record.sender,
            "receiver": record.receiver,
            "protocol": record.protocol,
            "n_routes": record.n_routes,
            "is_withdrawal": record.is_withdrawal,
            "size_bytes": record.size_bytes,
        }
    raise TypeError(f"unknown record type {type(record).__name__}")


def _decode(data: dict) -> Record:
    kind = data.get("type")
    if kind == "packet":
        return PacketRecord(
            time=data["time"],
            kind=data["kind"],
            packet_id=data["packet_id"],
            node=data["node"],
            flow_id=data["flow_id"],
            ttl=data["ttl"],
            cause=DropCause(data["cause"]) if data.get("cause") else None,
            dst=data.get("dst"),
        )
    if kind == "route":
        cause = data.get("cause")
        return RouteChangeRecord(
            time=data["time"],
            node=data["node"],
            dest=data["dest"],
            old_next_hop=data["old_next_hop"],
            new_next_hop=data["new_next_hop"],
            cause=(cause[0], cause[1]) if cause is not None else None,
        )
    if kind == "link":
        return LinkEventRecord(
            time=data["time"],
            node_a=data["node_a"],
            node_b=data["node_b"],
            up=data["up"],
        )
    if kind == "message":
        return MessageRecord(
            time=data["time"],
            sender=data["sender"],
            receiver=data["receiver"],
            protocol=data["protocol"],
            n_routes=data["n_routes"],
            is_withdrawal=data["is_withdrawal"],
            size_bytes=data.get("size_bytes", 0),
        )
    raise ValueError(f"unknown trace record type {kind!r}")


def write_trace(records: Iterable[Record], fp: IO[str]) -> int:
    """Write records as JSONL; returns the count written."""
    count = 0
    for record in records:
        fp.write(json.dumps(_encode(record)) + "\n")
        count += 1
    return count


def read_trace(
    fp: IO[str],
    strict: bool = True,
    on_skip: Optional[Callable[[dict], None]] = None,
) -> Iterator[Record]:
    """Yield records from a JSONL trace file.

    With ``strict=False``, records of an unknown ``type`` (written by a newer
    reader of this format) are skipped with one :mod:`warnings` warning each
    instead of raising — mirroring the sweep store's telemetry-record skip.
    ``on_skip``, if given, is called with each skipped record's raw dict
    (so callers can count or log them) in place of the warning.
    """
    for line in fp:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        try:
            yield _decode(data)
        except ValueError:
            if strict:
                raise
            if on_skip is not None:
                on_skip(data)
            else:
                warnings.warn(
                    f"skipping trace record of unknown type {data.get('type')!r}",
                    stacklevel=2,
                )


def export_bus(bus: TraceBus, path: str) -> int:
    """Dump everything a bus retained to ``path`` in time order."""
    records: list[Record] = [
        *bus.packets,
        *bus.route_changes,
        *bus.link_events,
        *bus.messages,
    ]
    records.sort(key=lambda r: r.time)
    with open(path, "w", encoding="utf-8") as f:
        return write_trace(records, f)
