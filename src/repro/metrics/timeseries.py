"""Per-second time series: instantaneous throughput and packet delay.

Reproduces the measurements behind the paper's Figures 5 and 7: deliveries
are bucketed into one-second bins at the receiver; throughput is the count
per bin, instantaneous delay is the mean delay of the packets delivered in
that bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..traffic.flows import Delivery

__all__ = [
    "BinnedSeries",
    "throughput_series",
    "delay_series",
    "jitter_series",
    "average_series",
]


@dataclass(frozen=True)
class BinnedSeries:
    """Aligned (times, values) arrays; ``times`` are bin left edges."""

    times: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must align")

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time: float) -> Optional[float]:
        """Value of the bin containing ``time`` (None if out of range)."""
        for t, v in zip(self.times, self.values):
            if t <= time < t + self._bin_width():
                return v
        return None

    def _bin_width(self) -> float:
        if len(self.times) >= 2:
            return self.times[1] - self.times[0]
        return 1.0

    def window(self, start: float, stop: float) -> "BinnedSeries":
        """Sub-series with ``start <= time < stop``."""
        pairs = [(t, v) for t, v in zip(self.times, self.values) if start <= t < stop]
        return BinnedSeries(
            times=tuple(t for t, _ in pairs), values=tuple(v for _, v in pairs)
        )

    def min_value(self) -> float:
        return min(self.values, default=0.0)

    def mean_value(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0


def _bins(start: float, stop: float, width: float) -> list[float]:
    if stop <= start:
        raise ValueError(f"empty window [{start}, {stop})")
    if width <= 0:
        raise ValueError(f"bin width must be positive, got {width}")
    # Each edge is computed directly as start + i*width: a running t += width
    # accumulates float error across hundreds of bins, drifting the right
    # edges (and the bin a delivery lands in) away from int((t-start)/width).
    edges = []
    i = 0
    while True:
        edge = start + i * width
        if edge >= stop - 1e-12:
            return edges
        edges.append(edge)
        i += 1


def throughput_series(
    deliveries: Iterable[Delivery],
    start: float,
    stop: float,
    bin_width: float = 1.0,
    origin: float = 0.0,
) -> BinnedSeries:
    """Deliveries per second in each bin.  ``origin`` shifts reported times
    (the paper normalizes by subtracting the warm-up)."""
    edges = _bins(start, stop, bin_width)
    counts = [0] * len(edges)
    for d in deliveries:
        if start <= d.time < stop:
            idx = int((d.time - start) / bin_width)
            if 0 <= idx < len(counts):
                counts[idx] += 1
    return BinnedSeries(
        times=tuple(t - origin for t in edges),
        values=tuple(c / bin_width for c in counts),
    )


def delay_series(
    deliveries: Iterable[Delivery],
    start: float,
    stop: float,
    bin_width: float = 1.0,
    origin: float = 0.0,
) -> BinnedSeries:
    """Mean end-to-end delay of packets delivered in each bin (0 if none)."""
    edges = _bins(start, stop, bin_width)
    sums = [0.0] * len(edges)
    counts = [0] * len(edges)
    for d in deliveries:
        if start <= d.time < stop:
            idx = int((d.time - start) / bin_width)
            if 0 <= idx < len(edges):
                sums[idx] += d.delay
                counts[idx] += 1
    values = tuple(s / c if c else 0.0 for s, c in zip(sums, counts))
    return BinnedSeries(times=tuple(t - origin for t in edges), values=values)


def jitter_series(
    deliveries: Iterable[Delivery],
    start: float,
    stop: float,
    bin_width: float = 1.0,
    origin: float = 0.0,
) -> BinnedSeries:
    """Per-bin mean absolute delay variation between consecutive deliveries.

    The paper notes delay and jitter "are only meaningful when packets are
    delivered"; this is the jitter counterpart to :func:`delay_series`
    (RFC 3550-style instantaneous |D(i) - D(i-1)|, averaged per bin).
    """
    edges = _bins(start, stop, bin_width)
    sums = [0.0] * len(edges)
    counts = [0] * len(edges)
    ordered = sorted(deliveries, key=lambda d: d.time)
    for prev, cur in zip(ordered, ordered[1:]):
        # Both deliveries of a pair must lie inside [start, stop): a prev
        # before the window would leak its delay delta across the edge and
        # charge the first bin with jitter the window never saw.
        if prev.time < start or not (start <= cur.time < stop):
            continue
        idx = int((cur.time - start) / bin_width)
        if 0 <= idx < len(edges):
            sums[idx] += abs(cur.delay - prev.delay)
            counts[idx] += 1
    values = tuple(s / c if c else 0.0 for s, c in zip(sums, counts))
    return BinnedSeries(times=tuple(t - origin for t in edges), values=values)


def average_series(series_list: Sequence[BinnedSeries]) -> BinnedSeries:
    """Pointwise mean of same-shaped series (multi-run averaging, Figure 5)."""
    if not series_list:
        raise ValueError("no series to average")
    first = series_list[0]
    for s in series_list[1:]:
        if s.times != first.times:
            raise ValueError("series are not aligned")
    n = len(series_list)
    values = tuple(
        sum(s.values[i] for s in series_list) / n for i in range(len(first))
    )
    return BinnedSeries(times=first.times, values=values)
