"""Measurement layer: drop counters, time series, convergence, loop analysis."""

from .convergence import ConvergenceTracker, PathSnapshot, walk_forwarding_path
from .counters import DropCounter, MessageCounter
from .loops import LoopReport, analyze_deliveries, first_loop, path_has_loop
from .manet import DelayStats, ManetReport, analyze_manet, delay_stats
from .narrate import TimelineEvent, build_timeline, format_timeline
from .reordering import ReorderingReport, analyze_reordering
from .timeseries import (
    BinnedSeries,
    average_series,
    delay_series,
    jitter_series,
    throughput_series,
)

__all__ = [
    "DropCounter",
    "MessageCounter",
    "BinnedSeries",
    "throughput_series",
    "delay_series",
    "jitter_series",
    "average_series",
    "ConvergenceTracker",
    "PathSnapshot",
    "walk_forwarding_path",
    "LoopReport",
    "TimelineEvent",
    "build_timeline",
    "format_timeline",
    "DelayStats",
    "ManetReport",
    "analyze_manet",
    "delay_stats",
    "ReorderingReport",
    "analyze_reordering",
    "analyze_deliveries",
    "path_has_loop",
    "first_loop",
]
