"""MANET performance metrics: PDR, normalized routing load, end-to-end delay.

The MANET literature (Broch et al. MobiCom'98 and the comparison studies
that followed) reports protocol performance with a standard triple, distinct
from the wired paper's convergence-centric loss accounting:

* **Packet delivery ratio (PDR)** — data packets delivered at the sinks over
  data packets originated at the sources.
* **Normalized routing load (NRL)** — routing control packets transmitted
  (every hop of a flooded RREQ or TC counts once) per data packet
  *delivered*; the cost of the control plane in units of useful work.
* **End-to-end delay** — origination-to-delivery latency of the packets
  that did arrive; like the wired paper's delay figures it is only
  meaningful for delivered packets, so loss and delay must be read together.

This module computes the triple from the primitives the harness already
emits — sent/delivered counts, :class:`~repro.traffic.flows.Delivery`
records, and :class:`~repro.metrics.counters.MessageCounter` totals — so
wired and MANET protocols are measured by the same instruments and the
numbers are directly comparable across the family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..traffic.flows import Delivery

__all__ = ["DelayStats", "ManetReport", "analyze_manet", "delay_stats"]


@dataclass(frozen=True)
class DelayStats:
    """Order statistics of per-packet end-to-end delay (delivered only)."""

    count: int
    mean: float
    median: float
    p95: float
    max: float

    @classmethod
    def empty(cls) -> "DelayStats":
        return cls(count=0, mean=0.0, median=0.0, p95=0.0, max=0.0)


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile on pre-sorted data (numpy 'linear')."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def delay_stats(deliveries: Iterable[Delivery]) -> DelayStats:
    """Summarize the delays of delivered packets."""
    delays = sorted(d.delay for d in deliveries)
    if not delays:
        return DelayStats.empty()
    return DelayStats(
        count=len(delays),
        mean=sum(delays) / len(delays),
        median=_quantile(delays, 0.5),
        p95=_quantile(delays, 0.95),
        max=delays[-1],
    )


@dataclass(frozen=True)
class ManetReport:
    """The standard MANET metric triple for one run."""

    sent: int
    delivered: int
    #: Routing control packets transmitted over the whole run, counted per
    #: link traversal (a flood of one RREQ over n links is n packets).
    control_packets: int
    #: Control bytes transmitted over the whole run.
    control_bytes: int
    delay: DelayStats

    @property
    def pdr(self) -> float:
        """Packet delivery ratio: delivered / sent (0 when nothing sent)."""
        return self.delivered / self.sent if self.sent else 0.0

    @property
    def normalized_routing_load(self) -> float:
        """Control packets per delivered data packet.

        Infinite when the control plane spent packets but nothing got
        through — that is a signal, not an error, so it is reported rather
        than masked; zero only when no control traffic was sent at all.
        """
        if self.delivered:
            return self.control_packets / self.delivered
        return math.inf if self.control_packets else 0.0

    def summary(self) -> str:
        nrl = self.normalized_routing_load
        nrl_text = "inf" if math.isinf(nrl) else f"{nrl:.2f}"
        return (
            f"pdr={self.pdr:.3f} ({self.delivered}/{self.sent}) "
            f"nrl={nrl_text} ({self.control_packets} ctrl pkts) "
            f"delay mean={self.delay.mean * 1000:.1f}ms "
            f"p95={self.delay.p95 * 1000:.1f}ms "
            f"max={self.delay.max * 1000:.1f}ms"
        )


def analyze_manet(
    sent: int,
    deliveries: Iterable[Delivery],
    control_packets: int,
    control_bytes: int = 0,
) -> ManetReport:
    """Build the MANET triple from harness primitives.

    ``control_packets`` should come from a whole-run
    :class:`~repro.metrics.counters.MessageCounter` (``window_start=None``):
    NRL is a whole-protocol cost, unlike the paper's post-failure overhead
    window.
    """
    if sent < 0:
        raise ValueError("sent must be >= 0")
    if control_packets < 0:
        raise ValueError("control_packets must be >= 0")
    stats = delay_stats(deliveries)
    return ManetReport(
        sent=sent,
        delivered=stats.count,
        control_packets=control_packets,
        control_bytes=control_bytes,
        delay=stats,
    )
