"""Convergence measurement (paper §5.4).

Two distinct clocks, both started at failure *detection*:

* **routing convergence time** — until the last FIB change for the monitored
  destination anywhere in the network ("restoration of new path information
  at all the routers");
* **forwarding-path convergence delay** — until the hop-by-hop walk from the
  sender's router to the destination settles on its final (post-failure
  shortest) path.  This can end long before routing convergence: remote
  routers may still be churning while the sender's path is already final.

The tracker additionally records every distinct *transient forwarding path*
(the packet-level dynamics of §2) by re-walking the FIB view after each
route change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.network import Network
from ..sim.tracing import RouteChangeRecord, TraceBus

__all__ = [
    "PathSnapshot",
    "ConvergenceTracker",
    "NetworkConvergenceWatcher",
    "walk_forwarding_path",
    "attribute_waves",
]


@dataclass(frozen=True)
class PathSnapshot:
    """The forwarding path from source to destination at one instant.

    ``state`` is ``"ok"`` (complete path), ``"broken"`` (a router had no next
    hop; ``path`` ends at that router) or ``"loop"`` (the walk revisited a
    node; ``path`` ends at the first repeat).
    """

    time: float
    path: tuple[int, ...]
    state: str

    @property
    def complete(self) -> bool:
        return self.state == "ok"


def walk_forwarding_path(
    fib_view: dict[int, Optional[int]], src: int, dest: int, max_hops: int = 1000
) -> PathSnapshot:
    """Follow next hops from ``src`` toward ``dest`` through ``fib_view``."""
    path = [src]
    seen = {src}
    node = src
    for _ in range(max_hops):
        if node == dest:
            return PathSnapshot(time=0.0, path=tuple(path), state="ok")
        nxt = fib_view.get(node)
        if nxt is None:
            return PathSnapshot(time=0.0, path=tuple(path), state="broken")
        path.append(nxt)
        if nxt in seen:
            return PathSnapshot(time=0.0, path=tuple(path), state="loop")
        seen.add(nxt)
        node = nxt
    return PathSnapshot(time=0.0, path=tuple(path), state="loop")


class NetworkConvergenceWatcher:
    """Network-wide routing convergence: the last FIB change at *any* router
    for *any* destination (Figure 6(b)'s "network routing convergence time").
    """

    def __init__(self, bus: TraceBus) -> None:
        self.last_change_time: Optional[float] = None
        self.change_count = 0
        #: Every FIB-change instant, in bus order (non-decreasing).  Kept so
        #: multi-event runs can attribute each reconvergence wave to the
        #: topology event whose detection window it falls in.
        self.change_times: list[float] = []
        bus.subscribe("route", self._on_route_change)

    def _on_route_change(self, record: RouteChangeRecord) -> None:
        self.last_change_time = record.time
        self.change_count += 1
        self.change_times.append(record.time)

    def convergence_time(self, detect_time: float) -> float:
        """Seconds from detection to the final FIB change network-wide."""
        if self.last_change_time is None or self.last_change_time < detect_time:
            return 0.0
        return self.last_change_time - detect_time


def attribute_waves(
    detect_times: list[float], change_times: list[float], end_time: float
) -> list[tuple[Optional[float], Optional[float]]]:
    """Attribute FIB-change activity to the topology event windows.

    Event ``i``'s window runs from its detection instant to the next event's
    detection instant (the last window ends at ``end_time``).  Returns one
    ``(first_change, last_change)`` pair per event — ``(None, None)`` when
    nothing moved in that window.  When reconvergence waves overlap (event
    ``i+1`` detected while ``i``'s wave is still running), a change belongs
    to the window it *occurs* in: the tail of the earlier wave is attributed
    to the later event, which is the only causally sound split an online
    observer can make without protocol introspection.
    """
    out: list[tuple[Optional[float], Optional[float]]] = []
    for i, start in enumerate(detect_times):
        stop = detect_times[i + 1] if i + 1 < len(detect_times) else end_time
        window = [t for t in change_times if start <= t < stop]
        if window:
            out.append((window[0], window[-1]))
        else:
            out.append((None, None))
    return out


class ConvergenceTracker:
    """Watches FIB changes for one destination across the whole network."""

    def __init__(self, bus: TraceBus, dest: int, src: int) -> None:
        self.dest = dest
        self.src = src
        self._fib_view: dict[int, Optional[int]] = {}
        self.route_change_times: list[float] = []
        self.snapshots: list[PathSnapshot] = []
        bus.subscribe("route", self._on_route_change)

    def seed_from_network(self, network: Network) -> None:
        """Capture the current FIBs (call after warm start, before failure)."""
        for node in network.iter_nodes():
            self._fib_view[node.id] = node.next_hop(self.dest)
        snap = walk_forwarding_path(self._fib_view, self.src, self.dest)
        self.snapshots.append(
            PathSnapshot(time=network.sim.now, path=snap.path, state=snap.state)
        )

    def _on_route_change(self, record: RouteChangeRecord) -> None:
        if record.dest != self.dest:
            return
        self._fib_view[record.node] = record.new_next_hop
        self.route_change_times.append(record.time)
        snap = walk_forwarding_path(self._fib_view, self.src, self.dest)
        last = self.snapshots[-1] if self.snapshots else None
        if last is None or snap.path != last.path or snap.state != last.state:
            self.snapshots.append(
                PathSnapshot(time=record.time, path=snap.path, state=snap.state)
            )

    # ------------------------------------------------------------ measurements

    @property
    def final_path(self) -> Optional[PathSnapshot]:
        return self.snapshots[-1] if self.snapshots else None

    def routing_convergence_time(self, detect_time: float) -> float:
        """Seconds from detection to the last FIB change for the destination."""
        after = [t for t in self.route_change_times if t >= detect_time]
        if not after:
            return 0.0
        return max(after) - detect_time

    def forwarding_convergence_delay(self, detect_time: float) -> float:
        """Seconds from detection until the sender->receiver path last changed."""
        after = [s.time for s in self.snapshots if s.time >= detect_time]
        if not after:
            return 0.0
        return max(after) - detect_time

    def transient_paths(self, since: float) -> list[PathSnapshot]:
        """Distinct forwarding paths observed at/after ``since``."""
        return [s for s in self.snapshots if s.time >= since]

    def converged_to(self, expected_path: tuple[int, ...]) -> bool:
        """True if the current forwarding path equals ``expected_path``."""
        final = self.final_path
        return final is not None and final.complete and final.path == expected_path
