"""Convergence narration: turn trace records into a readable timeline.

The paper's methodology is forensic — "analysis of the routing and
forwarding trace files shows ..." (§5.2).  This module automates that
reading: given the records collected during a run, it produces a
chronological, annotated account of the convergence event (failure,
detection, per-node switch-overs, path changes, loop formation/breakup,
drop bursts), suitable for printing next to a result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim.tracing import (
    DropCause,
    LinkEventRecord,
    PacketRecord,
    RouteChangeRecord,
)
from .convergence import PathSnapshot

__all__ = ["TimelineEvent", "build_timeline", "format_timeline"]


@dataclass(frozen=True)
class TimelineEvent:
    """One annotated instant of the convergence story."""

    time: float
    kind: str  # "link", "route", "path", "drops"
    text: str


def _route_events(
    route_changes: Iterable[RouteChangeRecord], dest: Optional[int]
) -> list[TimelineEvent]:
    events = []
    for r in route_changes:
        if dest is not None and r.dest != dest:
            continue
        if r.new_next_hop is None:
            text = f"node {r.node} lost its route to {r.dest} (was via {r.old_next_hop})"
        elif r.old_next_hop is None:
            text = f"node {r.node} gained a route to {r.dest} via {r.new_next_hop}"
        else:
            text = (
                f"node {r.node} switched route to {r.dest}: "
                f"{r.old_next_hop} -> {r.new_next_hop}"
            )
        events.append(TimelineEvent(time=r.time, kind="route", text=text))
    return events


def _link_events(link_events: Iterable[LinkEventRecord]) -> list[TimelineEvent]:
    return [
        TimelineEvent(
            time=e.time,
            kind="link",
            text=(
                f"link ({e.node_a}, {e.node_b}) "
                + ("restored" if e.up else "FAILED")
            ),
        )
        for e in link_events
    ]


def _path_events(snapshots: Iterable[PathSnapshot]) -> list[TimelineEvent]:
    events = []
    for snap in snapshots:
        route = " -> ".join(map(str, snap.path))
        if snap.state == "ok":
            text = f"forwarding path now {route}"
        elif snap.state == "broken":
            text = f"forwarding path BROKEN at node {snap.path[-1]} ({route} ...)"
        else:
            text = f"forwarding path LOOPS: {route}"
        events.append(TimelineEvent(time=snap.time, kind="path", text=text))
    return events


def _drop_bursts(
    packets: Iterable[PacketRecord], bin_width: float = 1.0
) -> list[TimelineEvent]:
    """Aggregate drop records into per-second bursts by cause."""
    bins: dict[tuple[int, DropCause], int] = {}
    for p in packets:
        if p.kind != "drop" or p.cause is None:
            continue
        key = (int(p.time // bin_width), p.cause)
        bins[key] = bins.get(key, 0) + 1
    events = []
    for (bin_idx, cause), count in sorted(bins.items()):
        events.append(
            TimelineEvent(
                time=bin_idx * bin_width,
                kind="drops",
                text=f"{count} packet(s) dropped ({cause.value}) in [{bin_idx}s, {bin_idx + 1}s)",
            )
        )
    return events


def build_timeline(
    route_changes: Iterable[RouteChangeRecord] = (),
    link_events: Iterable[LinkEventRecord] = (),
    snapshots: Iterable[PathSnapshot] = (),
    packets: Iterable[PacketRecord] = (),
    dest: Optional[int] = None,
    since: float = 0.0,
) -> list[TimelineEvent]:
    """Merge trace records into one chronological annotated timeline."""
    events = (
        _route_events(route_changes, dest)
        + _link_events(link_events)
        + _path_events(snapshots)
        + _drop_bursts(packets)
    )
    events = [e for e in events if e.time >= since]
    events.sort(key=lambda e: (e.time, e.kind))
    return events


def format_timeline(
    events: list[TimelineEvent], origin: float = 0.0, max_events: int = 80
) -> str:
    """Render a timeline (times shown relative to ``origin``)."""
    lines = []
    shown = events[:max_events]
    for e in shown:
        lines.append(f"  t={e.time - origin:+9.3f}s  [{e.kind:>5}]  {e.text}")
    if len(events) > max_events:
        lines.append(f"  ... {len(events) - max_events} more events omitted")
    return "\n".join(lines) if lines else "  (no events)"
