"""Convergence narration: turn trace records into a readable timeline.

The paper's methodology is forensic — "analysis of the routing and
forwarding trace files shows ..." (§5.2).  This module automates that
reading: given the records collected during a run, it produces a
chronological, annotated account of the convergence event (failure,
detection, per-node switch-overs, path changes, loop formation/breakup,
drop bursts), suitable for printing next to a result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim.tracing import (
    DropCause,
    LinkEventRecord,
    PacketRecord,
    RouteChangeRecord,
)
from .convergence import PathSnapshot

__all__ = ["TimelineEvent", "build_timeline", "format_timeline"]


@dataclass(frozen=True)
class TimelineEvent:
    """One annotated instant of the convergence story."""

    time: float
    kind: str  # "link", "route", "path", "drops"
    text: str


def _route_events(
    route_changes: Iterable[RouteChangeRecord], dest: Optional[int]
) -> list[TimelineEvent]:
    events = []
    for r in route_changes:
        if dest is not None and r.dest != dest:
            continue
        if r.new_next_hop is None:
            text = f"node {r.node} lost its route to {r.dest} (was via {r.old_next_hop})"
        elif r.old_next_hop is None:
            text = f"node {r.node} gained a route to {r.dest} via {r.new_next_hop}"
        else:
            text = (
                f"node {r.node} switched route to {r.dest}: "
                f"{r.old_next_hop} -> {r.new_next_hop}"
            )
        events.append(TimelineEvent(time=r.time, kind="route", text=text))
    return events


def _link_events(link_events: Iterable[LinkEventRecord]) -> list[TimelineEvent]:
    return [
        TimelineEvent(
            time=e.time,
            kind="link",
            text=(
                f"link ({e.node_a}, {e.node_b}) "
                + ("restored" if e.up else "FAILED")
            ),
        )
        for e in link_events
    ]


def _path_events(snapshots: Iterable[PathSnapshot]) -> list[TimelineEvent]:
    events = []
    for snap in snapshots:
        route = " -> ".join(map(str, snap.path))
        if snap.state == "ok":
            text = f"forwarding path now {route}"
        elif snap.state == "broken":
            text = f"forwarding path BROKEN at node {snap.path[-1]} ({route} ...)"
        else:
            text = f"forwarding path LOOPS: {route}"
        events.append(TimelineEvent(time=snap.time, kind="path", text=text))
    return events


def _drop_bursts(
    autopsies: dict, bin_width: float = 1.0
) -> list[TimelineEvent]:
    """Aggregate each packet's terminal drop into per-second bursts by cause."""
    bins: dict[tuple[int, DropCause], int] = {}
    for autopsy in autopsies.values():
        if autopsy.outcome != "dropped" or autopsy.drop_cause is None:
            continue
        t = autopsy.hops[-1].time
        key = (int(t // bin_width), autopsy.drop_cause)
        bins[key] = bins.get(key, 0) + 1
    events = []
    for (bin_idx, cause), count in sorted(
        bins.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        events.append(
            TimelineEvent(
                time=bin_idx * bin_width,
                kind="drops",
                text=f"{count} packet(s) dropped ({cause.value}) in [{bin_idx}s, {bin_idx + 1}s)",
            )
        )
    return events


def _loop_events(autopsies: dict) -> list[TimelineEvent]:
    """Narrate transient forwarding loops, one event per distinct cycle."""
    cycles: dict[tuple[int, ...], list] = {}
    for autopsy in autopsies.values():
        if autopsy.loop is None:
            continue
        t = autopsy.hops[-1].time
        info = cycles.setdefault(autopsy.loop, [t, 0, 0])
        info[0] = min(info[0], t)
        if autopsy.outcome == "delivered":
            info[2] += 1
        else:
            info[1] += 1
    events = []
    for cycle, (first, caught, escaped) in sorted(
        cycles.items(), key=lambda kv: kv[1][0]
    ):
        route = " -> ".join(map(str, cycle))
        events.append(
            TimelineEvent(
                time=first,
                kind="loop",
                text=(
                    f"transient loop {route}: {caught} packet(s) caught, "
                    f"{escaped} escaped"
                ),
            )
        )
    return events


def _blackhole_events(autopsies: dict) -> list[TimelineEvent]:
    """Narrate blackholes: nodes that dropped packets for want of a route."""
    holes: dict[int, list] = {}
    for autopsy in autopsies.values():
        if autopsy.drop_cause is not DropCause.NO_ROUTE:
            continue
        last = autopsy.hops[-1]
        info = holes.setdefault(last.node, [last.time, 0])
        info[0] = min(info[0], last.time)
        info[1] += 1
    events = []
    for node, (first, count) in sorted(holes.items(), key=lambda kv: kv[1][0]):
        events.append(
            TimelineEvent(
                time=first,
                kind="blackhole",
                text=f"node {node} blackholed {count} packet(s) (no route)",
            )
        )
    return events


def build_timeline(
    route_changes: Iterable[RouteChangeRecord] = (),
    link_events: Iterable[LinkEventRecord] = (),
    snapshots: Iterable[PathSnapshot] = (),
    packets: Iterable[PacketRecord] = (),
    dest: Optional[int] = None,
    since: float = 0.0,
) -> list[TimelineEvent]:
    """Merge trace records into one chronological annotated timeline.

    Packet-derived narration (drop bursts, loop and blackhole callouts) is
    built on :func:`repro.obs.flight.packet_autopsies` — the same per-packet
    reconstruction ``repro trace`` prints — so the timeline and an autopsy
    can never disagree about what happened to a packet.
    """
    # Deferred import: repro.obs.flight pulls in repro.metrics submodules,
    # so a module-level import here would cycle through the package inits.
    from ..obs.flight import packet_autopsies

    autopsies = packet_autopsies(packets)
    events = (
        _route_events(route_changes, dest)
        + _link_events(link_events)
        + _path_events(snapshots)
        + _drop_bursts(autopsies)
        + _loop_events(autopsies)
        + _blackhole_events(autopsies)
    )
    events = [e for e in events if e.time >= since]
    events.sort(key=lambda e: (e.time, e.kind))
    return events


def format_timeline(
    events: list[TimelineEvent], origin: float = 0.0, max_events: int = 80
) -> str:
    """Render a timeline (times shown relative to ``origin``)."""
    lines = []
    shown = events[:max_events]
    for e in shown:
        lines.append(f"  t={e.time - origin:+9.3f}s  [{e.kind:>5}]  {e.text}")
    if len(events) > max_events:
        lines.append(f"  ... {len(events) - max_events} more events omitted")
    return "\n".join(lines) if lines else "  (no events)"
