"""Drop and message counters driven by the trace bus.

Both collectors subscribe on construction and hold a back-reference to the
bus so they can ``close()`` — i.e. unsubscribe — when their run is over.
Long campaign processes attach fresh collectors per scenario; without the
unsubscribe, every dead collector would stay on the bus's handler list,
keeping the ``wants_*`` guards stuck on (per-packet record allocations
forever) and growing the dispatch fan-out run after run.  Both collectors
are context managers; keep using the counts after ``close()`` — only the
subscription is released.
"""

from __future__ import annotations

from typing import Optional

from ..sim.tracing import DropCause, MessageRecord, PacketRecord, TraceBus

__all__ = ["DropCounter", "MessageCounter"]


class DropCounter:
    """Counts data-packet drops by cause, with optional time windowing.

    The paper reports drops during the convergence period; passing
    ``window_start`` (failure time) restricts counting to drops at or after
    that instant — pre-failure steady state contributes nothing anyway, which
    tests assert.
    """

    def __init__(self, bus: TraceBus, window_start: Optional[float] = None) -> None:
        self.window_start = window_start
        self.by_cause: dict[DropCause, int] = {cause: 0 for cause in DropCause}
        self.drop_times: dict[DropCause, list[float]] = {cause: [] for cause in DropCause}
        self._bus: Optional[TraceBus] = bus
        bus.subscribe("packet", self._on_packet)

    def _on_packet(self, record: PacketRecord) -> None:
        if record.kind != "drop" or record.cause is None:
            return
        if self.window_start is not None and record.time < self.window_start:
            return
        self.by_cause[record.cause] += 1
        self.drop_times[record.cause].append(record.time)

    def close(self) -> None:
        """Unsubscribe from the bus (idempotent); counts remain readable."""
        if self._bus is not None:
            self._bus.unsubscribe("packet", self._on_packet)
            self._bus = None

    def __enter__(self) -> "DropCounter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def no_route(self) -> int:
        return self.by_cause[DropCause.NO_ROUTE]

    @property
    def ttl_expired(self) -> int:
        return self.by_cause[DropCause.TTL_EXPIRED]

    @property
    def link_down(self) -> int:
        return self.by_cause[DropCause.LINK_DOWN]

    @property
    def queue_overflow(self) -> int:
        return self.by_cause[DropCause.QUEUE_OVERFLOW]

    @property
    def total(self) -> int:
        return sum(self.by_cause.values())


class MessageCounter:
    """Routing overhead: messages, route entries, and bytes sent."""

    def __init__(self, bus: TraceBus, window_start: Optional[float] = None) -> None:
        self.window_start = window_start
        self.messages = 0
        self.routes = 0
        self.withdrawals = 0
        self.bytes_sent = 0
        self._bus: Optional[TraceBus] = bus
        bus.subscribe("message", self._on_message)

    def _on_message(self, record: MessageRecord) -> None:
        if self.window_start is not None and record.time < self.window_start:
            return
        self.messages += 1
        self.routes += record.n_routes
        self.bytes_sent += record.size_bytes
        if record.is_withdrawal:
            self.withdrawals += 1

    def close(self) -> None:
        """Unsubscribe from the bus (idempotent); counts remain readable."""
        if self._bus is not None:
            self._bus.unsubscribe("message", self._on_message)
            self._bus = None

    def __enter__(self) -> "MessageCounter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
