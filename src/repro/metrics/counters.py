"""Drop and message counters driven by the trace bus."""

from __future__ import annotations

from typing import Optional

from ..sim.tracing import DropCause, MessageRecord, PacketRecord, TraceBus

__all__ = ["DropCounter", "MessageCounter"]


class DropCounter:
    """Counts data-packet drops by cause, with optional time windowing.

    The paper reports drops during the convergence period; passing
    ``window_start`` (failure time) restricts counting to drops at or after
    that instant — pre-failure steady state contributes nothing anyway, which
    tests assert.
    """

    def __init__(self, bus: TraceBus, window_start: Optional[float] = None) -> None:
        self.window_start = window_start
        self.by_cause: dict[DropCause, int] = {cause: 0 for cause in DropCause}
        self.drop_times: dict[DropCause, list[float]] = {cause: [] for cause in DropCause}
        bus.subscribe("packet", self._on_packet)

    def _on_packet(self, record: PacketRecord) -> None:
        if record.kind != "drop" or record.cause is None:
            return
        if self.window_start is not None and record.time < self.window_start:
            return
        self.by_cause[record.cause] += 1
        self.drop_times[record.cause].append(record.time)

    @property
    def no_route(self) -> int:
        return self.by_cause[DropCause.NO_ROUTE]

    @property
    def ttl_expired(self) -> int:
        return self.by_cause[DropCause.TTL_EXPIRED]

    @property
    def link_down(self) -> int:
        return self.by_cause[DropCause.LINK_DOWN]

    @property
    def queue_overflow(self) -> int:
        return self.by_cause[DropCause.QUEUE_OVERFLOW]

    @property
    def total(self) -> int:
        return sum(self.by_cause.values())


class MessageCounter:
    """Routing overhead: messages and route entries sent, per protocol."""

    def __init__(self, bus: TraceBus, window_start: Optional[float] = None) -> None:
        self.window_start = window_start
        self.messages = 0
        self.routes = 0
        self.withdrawals = 0
        bus.subscribe("message", self._on_message)

    def _on_message(self, record: MessageRecord) -> None:
        if self.window_start is not None and record.time < self.window_start:
            return
        self.messages += 1
        self.routes += record.n_routes
        if record.is_withdrawal:
            self.withdrawals += 1
