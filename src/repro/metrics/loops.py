"""Transient forwarding-loop analysis (paper §5.2).

Works from recorded per-packet hop traces (enable ``record_paths`` on the
network): a packet whose hop sequence revisits a node traversed a loop; a
*delivered* packet with a revisit "escaped" the loop (the long-delay
stragglers of Figure 7); a TTL-expired packet died inside one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..traffic.flows import Delivery

__all__ = ["LoopReport", "path_has_loop", "first_loop", "analyze_deliveries"]


def path_has_loop(path: Sequence[int]) -> bool:
    """True if any node appears twice in the hop sequence."""
    return len(set(path)) != len(path)


def first_loop(path: Sequence[int]) -> Optional[tuple[int, ...]]:
    """The node cycle of the first loop in ``path`` (None if loop-free).

    E.g. ``[1, 2, 3, 2]`` -> ``(2, 3, 2)``.
    """
    seen: dict[int, int] = {}
    for idx, node in enumerate(path):
        if node in seen:
            return tuple(path[seen[node] : idx + 1])
        seen[node] = idx
    return None


@dataclass(frozen=True)
class LoopReport:
    """Summary of loop involvement among delivered packets."""

    delivered: int
    escaped_loop: int
    loop_cycles: tuple[tuple[int, ...], ...]
    max_extra_hops: int

    @property
    def escape_ratio(self) -> float:
        return self.escaped_loop / self.delivered if self.delivered else 0.0


def analyze_deliveries(
    deliveries: Iterable[Delivery], shortest_hops: Optional[int] = None
) -> LoopReport:
    """Classify delivered packets by loop involvement.

    ``shortest_hops`` (steady-state hop count) lets the report quantify the
    extra hops transient paths added.
    """
    delivered = 0
    escaped = 0
    cycles: list[tuple[int, ...]] = []
    max_extra = 0
    for d in deliveries:
        delivered += 1
        if d.path is None:
            continue
        if path_has_loop(d.path):
            escaped += 1
            cycle = first_loop(d.path)
            if cycle is not None:
                cycles.append(cycle)
        if shortest_hops is not None:
            max_extra = max(max_extra, d.hops - shortest_hops)
    return LoopReport(
        delivered=delivered,
        escaped_loop=escaped,
        loop_cycles=tuple(cycles),
        max_extra_hops=max_extra,
    )
