"""Sample a mobility model into a link-event schedule.

The :class:`MobilityDriver` advances a :class:`~repro.mobility.base.
MobilityModel` on a fixed cadence, derives range-based connectivity at each
sample, and diffs consecutive samples into :class:`~repro.net.dynamics.
LinkEvent` fail/restore pairs.  Because a live :class:`~repro.net.network.
Network` cannot grow links mid-run, the driver also reports the *union* of
every link that ever exists: the scenario builds the network over the
union, silently takes the initially-absent links down
(:meth:`~repro.net.dynamics.LinkScheduler.take_down_initially`), and the
first time a union-only link comes into range it is an ordinary restore.

``build`` is one-shot per horizon: mobility models are stateful, so the
driver caches the schedule it derived and refuses to re-integrate the same
model past a different horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.dynamics import LinkEvent
from ..topology.graph import Topology
from ..topology.spatial import (
    Position,
    connectivity,
    connectivity_changes,
    derive_topology,
)
from .base import MobilityModel

__all__ = ["MobilityDriver", "MobilitySchedule"]


@dataclass(frozen=True)
class MobilitySchedule:
    """Everything a scenario needs to run one mobility trace.

    ``topology`` spans the union of every link that ever exists over the
    horizon; ``initial_links`` is the connectivity at t=0.  ``events`` is
    the time-ordered fail/restore schedule (downs before ups within one
    sampling step, each in canonical link order).
    """

    topology: Topology
    initial_links: frozenset[tuple[int, int]]
    initial_positions: dict[int, Position]
    events: tuple[LinkEvent, ...]

    @property
    def initially_down(self) -> list[tuple[int, int]]:
        """Union links absent from the t=0 connectivity, canonical order."""
        return sorted(set(self.topology.links) - self.initial_links)

    def connected_at_start(self, a: int, b: int) -> bool:
        """Whether a and b are in the same t=0 connected component."""
        adjacency: dict[int, list[int]] = {}
        for x, y in self.initial_links:
            adjacency.setdefault(x, []).append(y)
            adjacency.setdefault(y, []).append(x)
        frontier, seen = [a], {a}
        while frontier:
            node = frontier.pop()
            if node == b:
                return True
            for nbr in adjacency.get(node, ()):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        return a == b


class MobilityDriver:
    """Derives a link schedule from node movement; a ``TopologyDriver``.

    Positions are sampled at ``start + k * step`` for k >= 1 (the t=0
    connectivity is the initial state, not an event), so the same model,
    range, and cadence always produce a byte-identical schedule.
    """

    def __init__(
        self,
        model: MobilityModel,
        radio_range: float,
        step: float,
        start: float = 0.0,
        detection_delay: Optional[float] = None,
        **link_attrs,
    ) -> None:
        if step <= 0:
            raise ValueError(f"sampling step must be positive, got {step}")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._model = model
        self._radio_range = radio_range
        self._step = step
        self._start = start
        self._detection_delay = detection_delay
        self._link_attrs = link_attrs
        self._schedule: Optional[MobilitySchedule] = None
        self._horizon: Optional[float] = None

    def build(self, until: float) -> MobilitySchedule:
        """Integrate the model to ``until`` and return the full schedule."""
        if self._schedule is not None:
            if until != self._horizon:
                raise ValueError(
                    f"schedule already built to t={self._horizon}; a mobility "
                    "model cannot be re-integrated to a different horizon"
                )
            return self._schedule
        initial_positions = self._model.positions()
        current = connectivity(initial_positions, self._radio_range)
        initial = frozenset(current)
        union = set(current)
        events: list[LinkEvent] = []
        k = 1
        while self._start + k * self._step < until:
            t = self._start + k * self._step
            self._model.advance(self._step)
            sampled = connectivity(self._model.positions(), self._radio_range)
            downs, ups = connectivity_changes(current, sampled)
            for a, b in downs:
                events.append(
                    LinkEvent("fail", a, b, t, self._detection_delay)
                )
            for a, b in ups:
                events.append(
                    LinkEvent("restore", a, b, t, self._detection_delay)
                )
            union |= sampled
            current = sampled
            k += 1
        topology = derive_topology(
            initial_positions,
            self._radio_range,
            name="mobility",
            links=union,
            **self._link_attrs,
        )
        self._schedule = MobilitySchedule(
            topology=topology,
            initial_links=initial,
            initial_positions=initial_positions,
            events=tuple(events),
        )
        self._horizon = until
        return self._schedule

    def generate(self, until: float) -> list[LinkEvent]:
        """TopologyDriver interface: the event schedule up to ``until``."""
        return list(self.build(until).events)
