"""Manhattan-grid mobility.

Nodes move along the streets of a rectangular grid (``blocks`` city blocks
across the area).  At every intersection a node continues straight with
probability 0.5, turns left with 0.25, turns right with 0.25 — options
that would leave the area are dropped and the remaining ones rescaled; at
a dead end the node reverses.  Speed is redrawn uniformly at each
intersection.  Positions are tracked as (intersection, direction,
progress-along-segment), so trajectories stay exactly on the lattice with
no float drift off the streets.
"""

from __future__ import annotations

import random

from ..topology.spatial import Position

__all__ = ["ManhattanGrid"]

#: Unit directions along the street axes: +x, -x, +y, -y.
_DIRECTIONS = ((1, 0), (-1, 0), (0, 1), (0, -1))


def _left(d: tuple[int, int]) -> tuple[int, int]:
    return (-d[1], d[0])


def _right(d: tuple[int, int]) -> tuple[int, int]:
    return (d[1], -d[0])


class ManhattanGrid:
    """Manhattan-grid movement over ``n_nodes`` nodes."""

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float, float],
        blocks: tuple[int, int],
        speed: tuple[float, float],
        rng: random.Random,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        bx, by = blocks
        if bx < 1 or by < 1:
            raise ValueError(f"need at least 1x1 blocks, got {blocks}")
        lo, hi = speed
        if not 0 < lo <= hi:
            raise ValueError(f"need 0 < speed_min <= speed_max, got {speed}")
        self._blocks = blocks
        self._seg = (area[0] / bx, area[1] / by)
        self._speed_band = speed
        self._rng = rng
        # Per node: lattice intersection (i, j), travel direction, metres of
        # progress along the current segment, and current speed.
        self._at: dict[int, tuple[int, int]] = {}
        self._dir: dict[int, tuple[int, int]] = {}
        self._progress: dict[int, float] = {}
        self._speed: dict[int, float] = {}
        for node in range(n_nodes):
            i = rng.randrange(bx + 1)
            j = rng.randrange(by + 1)
            self._at[node] = (i, j)
            direction = _DIRECTIONS[rng.randrange(4)]
            if not self._valid((i, j), direction):
                direction = (-direction[0], -direction[1])
            self._dir[node] = direction
            self._progress[node] = 0.0
            self._speed[node] = rng.uniform(lo, hi)

    def _valid(self, at: tuple[int, int], d: tuple[int, int]) -> bool:
        bx, by = self._blocks
        i, j = at[0] + d[0], at[1] + d[1]
        return 0 <= i <= bx and 0 <= j <= by

    def positions(self) -> dict[int, Position]:
        sx, sy = self._seg
        out: dict[int, Position] = {}
        for node in sorted(self._at):
            i, j = self._at[node]
            di, dj = self._dir[node]
            progress = self._progress[node]
            out[node] = (i * sx + di * progress, j * sy + dj * progress, 0.0)
        return out

    def advance(self, dt: float) -> None:
        for node in sorted(self._at):
            self._advance_node(node, dt)

    def _advance_node(self, node: int, dt: float) -> None:
        sx, sy = self._seg
        remaining = dt
        while remaining > 1e-12:
            direction = self._dir[node]
            seg_len = sx if direction[0] else sy
            dist_left = seg_len - self._progress[node]
            speed = self._speed[node]
            if speed * remaining < dist_left:
                self._progress[node] += speed * remaining
                return
            remaining -= dist_left / speed
            i, j = self._at[node]
            self._at[node] = (i + direction[0], j + direction[1])
            self._progress[node] = 0.0
            self._dir[node] = self._turn(node)
            lo, hi = self._speed_band
            self._speed[node] = self._rng.uniform(lo, hi)

    def _turn(self, node: int) -> tuple[int, int]:
        at = self._at[node]
        direction = self._dir[node]
        options = [
            (direction, 0.5),
            (_left(direction), 0.25),
            (_right(direction), 0.25),
        ]
        valid = [(d, w) for d, w in options if self._valid(at, d)]
        if not valid:
            return (-direction[0], -direction[1])
        total = sum(w for _, w in valid)
        draw = self._rng.random() * total
        for d, w in valid:
            draw -= w
            if draw <= 0:
                return d
        return valid[-1][0]
