"""Mobility models: deterministic node movement driving topology churn.

Three classic models — random waypoint, Gauss-Markov (3D-capable), and
Manhattan grid — move nodes through a bounded area; the
:class:`~repro.mobility.driver.MobilityDriver` samples their positions on a
fixed cadence, derives range-based connectivity (:mod:`repro.topology.
spatial`), and emits the link fail/restore schedule the
:class:`~repro.net.dynamics.LinkScheduler` executes.

Every model draws exclusively from the ``random.Random`` it is given
(scenarios hand it an :class:`~repro.sim.rng.RngStreams` stream), so the
same seed always yields a byte-identical event schedule.
"""

from .base import MobilityModel
from .driver import MobilityDriver, MobilitySchedule
from .gauss_markov import GaussMarkov
from .manhattan import ManhattanGrid
from .waypoint import RandomWaypoint

__all__ = [
    "MobilityModel",
    "MobilityDriver",
    "MobilitySchedule",
    "RandomWaypoint",
    "GaussMarkov",
    "ManhattanGrid",
]
