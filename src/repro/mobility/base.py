"""Mobility model protocol and shared helpers."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..topology.spatial import Position

__all__ = ["MobilityModel", "clamp"]


@runtime_checkable
class MobilityModel(Protocol):
    """A stateful movement process over a fixed node set.

    Implementations must be deterministic functions of their constructor
    arguments (including the ``random.Random`` they were given): the driver
    replays them step by step and persists the resulting schedule, so two
    models built identically must trace identical trajectories.
    """

    def positions(self) -> dict[int, Position]:
        """Current position of every node."""
        ...

    def advance(self, dt: float) -> None:
        """Integrate movement forward by ``dt`` seconds."""
        ...


def clamp(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value
