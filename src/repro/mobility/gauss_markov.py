"""Gauss-Markov mobility (3D-capable).

Temporally correlated movement (cf. the UAV-network mobility literature):
each node carries a speed, heading, and pitch that evolve as first-order
Gauss-Markov processes

    x_n = alpha * x_{n-1} + (1 - alpha) * x_mean + sqrt(1 - alpha^2) * g_n

with ``g_n`` standard Gaussian draws.  ``alpha`` close to 1 gives smooth,
inertial trajectories; ``alpha = 0`` is a memoryless random walk.  Near an
area boundary the mean heading is steered back toward the interior — the
standard edge treatment — so nodes never escape the field.  With a planar
area (depth 0) the pitch stays 0 and movement is 2D.
"""

from __future__ import annotations

import math
import random

from ..topology.spatial import Position
from .base import clamp

__all__ = ["GaussMarkov"]


class GaussMarkov:
    """Gauss-Markov movement over ``n_nodes`` nodes."""

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float, float],
        mean_speed: float,
        alpha: float,
        rng: random.Random,
        speed_sigma: float | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if not 0 <= alpha < 1:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        if mean_speed <= 0:
            raise ValueError(f"mean_speed must be positive, got {mean_speed}")
        self._area = area
        self._alpha = alpha
        self._mean_speed = mean_speed
        self._speed_sigma = (
            speed_sigma if speed_sigma is not None else mean_speed / 4.0
        )
        self._rng = rng
        self._3d = area[2] > 0
        self._pos: dict[int, Position] = {}
        self._speed: dict[int, float] = {}
        self._heading: dict[int, float] = {}
        self._pitch: dict[int, float] = {}
        #: Per-node mean heading/pitch; steered near boundaries.
        self._mean_heading: dict[int, float] = {}
        self._mean_pitch: dict[int, float] = {}
        w, h, d = area
        for node in range(n_nodes):
            self._pos[node] = (
                rng.uniform(0.0, w),
                rng.uniform(0.0, h),
                rng.uniform(0.0, d) if self._3d else 0.0,
            )
            self._speed[node] = mean_speed
            heading = rng.uniform(0.0, 2 * math.pi)
            self._heading[node] = heading
            self._mean_heading[node] = heading
            self._pitch[node] = 0.0
            self._mean_pitch[node] = 0.0

    def positions(self) -> dict[int, Position]:
        return dict(self._pos)

    def advance(self, dt: float) -> None:
        a = self._alpha
        keep = math.sqrt(1.0 - a * a)
        rng = self._rng
        w, h, d = self._area
        for node in sorted(self._pos):
            self._steer_from_edges(node)
            self._speed[node] = max(
                0.1,
                a * self._speed[node]
                + (1 - a) * self._mean_speed
                + keep * rng.gauss(0.0, self._speed_sigma),
            )
            self._heading[node] = (
                a * self._heading[node]
                + (1 - a) * self._mean_heading[node]
                + keep * rng.gauss(0.0, math.pi / 6)
            )
            if self._3d:
                self._pitch[node] = clamp(
                    a * self._pitch[node]
                    + (1 - a) * self._mean_pitch[node]
                    + keep * rng.gauss(0.0, math.pi / 12),
                    -math.pi / 3,
                    math.pi / 3,
                )
            x, y, z = self._pos[node]
            step = self._speed[node] * dt
            pitch = self._pitch[node]
            heading = self._heading[node]
            self._pos[node] = (
                clamp(x + step * math.cos(heading) * math.cos(pitch), 0.0, w),
                clamp(y + step * math.sin(heading) * math.cos(pitch), 0.0, h),
                clamp(z + step * math.sin(pitch), 0.0, d) if self._3d else 0.0,
            )

    def _steer_from_edges(self, node: int) -> None:
        """Point the mean heading back toward the interior near a boundary."""
        w, h, d = self._area
        x, y, z = self._pos[node]
        margin_x, margin_y = 0.1 * w, 0.1 * h
        near_edge = False
        if x < margin_x or x > w - margin_x or y < margin_y or y > h - margin_y:
            self._mean_heading[node] = math.atan2(h / 2 - y, w / 2 - x)
            # Snap the live heading's accumulated windup into [0, 2pi) so the
            # relaxation toward the steered mean acts on the short way round.
            self._heading[node] = self._heading[node] % (2 * math.pi)
            near_edge = True
        if self._3d:
            margin_z = 0.1 * d
            if z < margin_z:
                self._mean_pitch[node] = math.pi / 6
                near_edge = True
            elif z > d - margin_z:
                self._mean_pitch[node] = -math.pi / 6
                near_edge = True
            elif not near_edge:
                self._mean_pitch[node] = 0.0
