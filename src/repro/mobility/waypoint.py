"""Random-waypoint mobility.

The canonical MANET model (used by the protocol-comparison studies this
repo targets, e.g. arXiv 1209.5507): each node picks a uniform destination
in the area and a uniform speed, travels there in a straight line, pauses,
and repeats.  The 3D extension draws the z coordinate when the area has
depth.
"""

from __future__ import annotations

import random

from ..topology.spatial import Position, distance

__all__ = ["RandomWaypoint"]


class RandomWaypoint:
    """Random-waypoint movement over ``n_nodes`` nodes."""

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float, float],
        speed: tuple[float, float],
        pause: float,
        rng: random.Random,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        lo, hi = speed
        if not 0 < lo <= hi:
            raise ValueError(f"need 0 < speed_min <= speed_max, got {speed}")
        self._area = area
        self._speed_band = speed
        self._pause = pause
        self._rng = rng
        self._pos: dict[int, Position] = {}
        self._target: dict[int, Position] = {}
        self._speed: dict[int, float] = {}
        self._pause_left: dict[int, float] = {}
        for node in range(n_nodes):
            self._pos[node] = self._random_point()
            self._target[node] = self._random_point()
            self._speed[node] = rng.uniform(lo, hi)
            self._pause_left[node] = 0.0

    def _random_point(self) -> Position:
        w, h, d = self._area
        return (
            self._rng.uniform(0.0, w),
            self._rng.uniform(0.0, h),
            self._rng.uniform(0.0, d) if d > 0 else 0.0,
        )

    def positions(self) -> dict[int, Position]:
        return dict(self._pos)

    def advance(self, dt: float) -> None:
        for node in sorted(self._pos):
            self._advance_node(node, dt)

    def _advance_node(self, node: int, dt: float) -> None:
        remaining = dt
        while remaining > 1e-12:
            if self._pause_left[node] > 0.0:
                waited = min(self._pause_left[node], remaining)
                self._pause_left[node] -= waited
                remaining -= waited
                if self._pause_left[node] <= 0.0:
                    self._target[node] = self._random_point()
                    lo, hi = self._speed_band
                    self._speed[node] = self._rng.uniform(lo, hi)
                continue
            pos, target = self._pos[node], self._target[node]
            gap = distance(pos, target)
            speed = self._speed[node]
            if gap <= speed * remaining:
                # Arrives within this step: snap to the waypoint and pause.
                self._pos[node] = target
                remaining -= gap / speed if speed > 0 else remaining
                self._pause_left[node] = self._pause
                if self._pause == 0.0:
                    self._target[node] = self._random_point()
                    lo, hi = self._speed_band
                    self._speed[node] = self._rng.uniform(lo, hi)
            else:
                frac = speed * remaining / gap
                self._pos[node] = (
                    pos[0] + (target[0] - pos[0]) * frac,
                    pos[1] + (target[1] - pos[1]) * frac,
                    pos[2] + (target[2] - pos[2]) * frac,
                )
                remaining = 0.0
