"""Topology validation helpers.

Experiments assert these invariants before running; tests exercise them
directly.
"""

from __future__ import annotations

from .graph import Topology

__all__ = [
    "check_connected",
    "check_interior_degree",
    "degree_histogram",
    "TopologyError",
]


class TopologyError(ValueError):
    """A topology violates a structural requirement."""


def check_connected(topo: Topology) -> None:
    """Raise :class:`TopologyError` unless the topology is connected."""
    if not topo.is_connected():
        raise TopologyError(f"{topo.name} is not connected")


def degree_histogram(topo: Topology) -> dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    hist: dict[int, int] = {}
    for node in topo.nodes:
        d = topo.degree(node)
        hist[d] = hist.get(d, 0) + 1
    return hist


def check_interior_degree(topo: Topology, nodes: list[int], degree: int) -> None:
    """Raise unless every node in ``nodes`` has exactly ``degree`` neighbors."""
    bad = {n: topo.degree(n) for n in nodes if topo.degree(n) != degree}
    if bad:
        raise TopologyError(
            f"{topo.name}: expected interior degree {degree}, violations: {bad}"
        )
