"""Auxiliary topology generators.

The paper's sweeps all use :func:`repro.topology.mesh.regular_mesh`; these
generators support unit tests, examples and extension experiments (random
regular graphs let us check that the mesh results are not an artifact of the
lattice structure).
"""

from __future__ import annotations

import random
from typing import Optional

import networkx as nx

from ..sim import units
from .graph import LinkSpec, Topology

__all__ = [
    "line",
    "ring",
    "star",
    "complete",
    "random_regular",
    "waxman",
    "attach_host",
    "from_networkx",
]


def _standard_link(a: int, b: int, **attrs) -> LinkSpec:
    defaults = dict(cost=1, delay=1 * units.MILLISECONDS, bandwidth=1 * units.MEGABITS)
    defaults.update(attrs)
    return LinkSpec(a, b, **defaults)


def line(n: int, **attrs) -> Topology:
    """Path graph 0-1-...-(n-1)."""
    if n < 2:
        raise ValueError(f"line needs >= 2 nodes, got {n}")
    topo = Topology(name=f"line-{n}")
    for i in range(n - 1):
        topo.add_link(_standard_link(i, i + 1, **attrs))
    return topo


def ring(n: int, **attrs) -> Topology:
    """Cycle graph on n nodes."""
    if n < 3:
        raise ValueError(f"ring needs >= 3 nodes, got {n}")
    topo = Topology(name=f"ring-{n}")
    for i in range(n):
        topo.add_link(_standard_link(i, (i + 1) % n, **attrs))
    return topo


def star(n_leaves: int, **attrs) -> Topology:
    """Hub node 0 connected to leaves 1..n."""
    if n_leaves < 1:
        raise ValueError(f"star needs >= 1 leaf, got {n_leaves}")
    topo = Topology(name=f"star-{n_leaves}")
    for i in range(1, n_leaves + 1):
        topo.add_link(_standard_link(0, i, **attrs))
    return topo


def complete(n: int, **attrs) -> Topology:
    """Complete graph on n nodes."""
    if n < 2:
        raise ValueError(f"complete needs >= 2 nodes, got {n}")
    topo = Topology(name=f"complete-{n}")
    for i in range(n):
        for j in range(i + 1, n):
            topo.add_link(_standard_link(i, j, **attrs))
    return topo


def random_regular(
    n: int, degree: int, seed: int, rng: Optional[random.Random] = None, **attrs
) -> Topology:
    """Connected random ``degree``-regular graph (retries seeds until connected)."""
    if n * degree % 2 != 0:
        raise ValueError(f"n*degree must be even, got n={n} degree={degree}")
    if degree >= n:
        raise ValueError(f"degree must be < n, got degree={degree} n={n}")
    attempt_seed = seed
    for _ in range(100):
        graph = nx.random_regular_graph(degree, n, seed=attempt_seed)
        if nx.is_connected(graph):
            topo = from_networkx(graph, name=f"rr-{n}-d{degree}-s{seed}", **attrs)
            return topo
        attempt_seed += 1
    raise RuntimeError(f"no connected {degree}-regular graph found from seed {seed}")


def waxman(
    n: int,
    seed: int,
    alpha: float = 0.5,
    beta: float = 0.25,
    **attrs,
) -> Topology:
    """Connected Waxman random graph (the classic network-simulation model).

    Retries seeds until the sampled graph is connected; link probability
    decays with Euclidean distance (``alpha`` scales density, ``beta`` the
    decay length).
    """
    if n < 2:
        raise ValueError(f"waxman needs >= 2 nodes, got {n}")
    attempt = seed
    for _ in range(100):
        graph = nx.waxman_graph(n, alpha=alpha, beta=beta, seed=attempt)
        if nx.is_connected(graph):
            return from_networkx(graph, name=f"waxman-{n}-s{seed}", **attrs)
        attempt += 1
    raise RuntimeError(f"no connected Waxman graph found from seed {seed}")


def from_networkx(graph: nx.Graph, name: str = "imported", **attrs) -> Topology:
    """Convert an undirected networkx graph of integer nodes."""
    topo = Topology(name=name)
    for node in graph.nodes:
        topo.add_node(int(node))
    for a, b in graph.edges:
        topo.add_link(_standard_link(int(a), int(b), **attrs))
    return topo


def attach_host(topo: Topology, router: int, host: Optional[int] = None, **attrs) -> int:
    """Attach a stub host (degree-1 node) to ``router`` via an access link.

    Returns the host's node id (``max(nodes) + 1`` when not given).  The paper
    attaches the sender and receiver this way to routers on the first and last
    mesh rows.
    """
    if router not in topo.nodes:
        raise ValueError(f"router {router} not in topology {topo.name}")
    if host is None:
        host = max(topo.nodes) + 1
    if host in topo.nodes:
        raise ValueError(f"host id {host} already used")
    topo.add_link(_standard_link(router, host, **attrs))
    return host
