"""Auxiliary topology generators.

The paper's sweeps all use :func:`repro.topology.mesh.regular_mesh`; these
generators support unit tests, examples and extension experiments (random
regular graphs let us check that the mesh results are not an artifact of the
lattice structure).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Optional

import networkx as nx

from ..sim import units
from ..sim.rng import RngStreams
from .graph import LinkSpec, Topology

__all__ = [
    "line",
    "ring",
    "star",
    "complete",
    "random_regular",
    "scale_free",
    "waxman",
    "attach_host",
    "from_networkx",
]


def _standard_link(a: int, b: int, **attrs) -> LinkSpec:
    defaults = dict(cost=1, delay=1 * units.MILLISECONDS, bandwidth=1 * units.MEGABITS)
    defaults.update(attrs)
    return LinkSpec(a, b, **defaults)


def line(n: int, **attrs) -> Topology:
    """Path graph 0-1-...-(n-1)."""
    if n < 2:
        raise ValueError(f"line needs >= 2 nodes, got {n}")
    topo = Topology(name=f"line-{n}")
    for i in range(n - 1):
        topo.add_link(_standard_link(i, i + 1, **attrs))
    return topo


def ring(n: int, **attrs) -> Topology:
    """Cycle graph on n nodes."""
    if n < 3:
        raise ValueError(f"ring needs >= 3 nodes, got {n}")
    topo = Topology(name=f"ring-{n}")
    for i in range(n):
        topo.add_link(_standard_link(i, (i + 1) % n, **attrs))
    return topo


def star(n_leaves: int, **attrs) -> Topology:
    """Hub node 0 connected to leaves 1..n."""
    if n_leaves < 1:
        raise ValueError(f"star needs >= 1 leaf, got {n_leaves}")
    topo = Topology(name=f"star-{n_leaves}")
    for i in range(1, n_leaves + 1):
        topo.add_link(_standard_link(0, i, **attrs))
    return topo


def complete(n: int, **attrs) -> Topology:
    """Complete graph on n nodes."""
    if n < 2:
        raise ValueError(f"complete needs >= 2 nodes, got {n}")
    topo = Topology(name=f"complete-{n}")
    for i in range(n):
        for j in range(i + 1, n):
            topo.add_link(_standard_link(i, j, **attrs))
    return topo


def random_regular(
    n: int, degree: int, seed: int, rng: Optional[random.Random] = None, **attrs
) -> Topology:
    """Connected random ``degree``-regular graph (retries seeds until connected)."""
    if n * degree % 2 != 0:
        raise ValueError(f"n*degree must be even, got n={n} degree={degree}")
    if degree >= n:
        raise ValueError(f"degree must be < n, got degree={degree} n={n}")
    attempt_seed = seed
    for _ in range(100):
        graph = nx.random_regular_graph(degree, n, seed=attempt_seed)
        if nx.is_connected(graph):
            topo = from_networkx(graph, name=f"rr-{n}-d{degree}-s{seed}", **attrs)
            return topo
        attempt_seed += 1
    raise RuntimeError(f"no connected {degree}-regular graph found from seed {seed}")


def scale_free(
    n: int,
    m: int = 2,
    seed: int = 1,
    exponent: float = 1.0,
    **attrs,
) -> Topology:
    """Preferential-attachment scale-free graph (AS-graph stand-in).

    Grows from an ``m+1``-node star: each new node attaches ``m`` links to
    distinct existing nodes chosen with probability proportional to
    ``degree ** exponent`` (1.0 = classic Barabási–Albert; larger exponents
    thicken the hubs).  Connected by construction, and all randomness comes
    from one :class:`RngStreams` stream, so the same ``(n, m, seed,
    exponent)`` reproduces the same graph in any process.

    The ``exponent != 1`` path recomputes attachment weights per joining
    node (O(n^2) total) — fine for test-sized graphs; the 10k-node sharded
    scenarios use the linear classic path.
    """
    if m < 1:
        raise ValueError(f"scale_free needs m >= 1, got {m}")
    if n < m + 2:
        raise ValueError(f"scale_free needs n >= m+2, got n={n} m={m}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    rng = RngStreams(seed).stream(f"scale-free-m{m}-x{exponent}")
    topo = Topology(name=f"sf-{n}-m{m}-s{seed}")
    for i in range(1, m + 1):
        topo.add_link(_standard_link(0, i, **attrs))
    if exponent == 1.0:
        # Classic linear preferential attachment: sample from a list where
        # each node appears once per unit of degree.
        targets = [0] * m + list(range(1, m + 1))
        for new in range(m + 1, n):
            chosen: set[int] = set()
            while len(chosen) < m:
                chosen.add(targets[rng.randrange(len(targets))])
            for t in sorted(chosen):
                topo.add_link(_standard_link(t, new, **attrs))
                targets.append(t)
            targets.extend([new] * m)
    else:
        degree = {i: 1 for i in range(1, m + 1)}
        degree[0] = m
        nodes = sorted(degree)
        for new in range(m + 1, n):
            cum = list(itertools.accumulate(degree[v] ** exponent for v in nodes))
            chosen = set()
            while len(chosen) < m:
                idx = bisect.bisect_right(cum, rng.random() * cum[-1])
                chosen.add(nodes[min(idx, len(nodes) - 1)])
            for t in sorted(chosen):
                topo.add_link(_standard_link(t, new, **attrs))
                degree[t] += 1
            degree[new] = m
            nodes.append(new)
    return topo


def waxman(
    n: int,
    seed: int,
    alpha: float = 0.5,
    beta: float = 0.25,
    **attrs,
) -> Topology:
    """Connected Waxman random graph (the classic network-simulation model).

    Retries seeds until the sampled graph is connected; link probability
    decays with Euclidean distance (``alpha`` scales density, ``beta`` the
    decay length).
    """
    if n < 2:
        raise ValueError(f"waxman needs >= 2 nodes, got {n}")
    attempt = seed
    for _ in range(100):
        graph = nx.waxman_graph(n, alpha=alpha, beta=beta, seed=attempt)
        if nx.is_connected(graph):
            return from_networkx(graph, name=f"waxman-{n}-s{seed}", **attrs)
        attempt += 1
    raise RuntimeError(f"no connected Waxman graph found from seed {seed}")


def from_networkx(graph: nx.Graph, name: str = "imported", **attrs) -> Topology:
    """Convert an undirected networkx graph of integer nodes."""
    topo = Topology(name=name)
    for node in graph.nodes:
        topo.add_node(int(node))
    for a, b in graph.edges:
        topo.add_link(_standard_link(int(a), int(b), **attrs))
    return topo


def attach_host(topo: Topology, router: int, host: Optional[int] = None, **attrs) -> int:
    """Attach a stub host (degree-1 node) to ``router`` via an access link.

    Returns the host's node id (``max(nodes) + 1`` when not given).  The paper
    attaches the sender and receiver this way to routers on the first and last
    mesh rows.
    """
    if router not in topo.nodes:
        raise ValueError(f"router {router} not in topology {topo.name}")
    if host is None:
        host = max(topo.nodes) + 1
    if host in topo.nodes:
        raise ValueError(f"host id {host} already used")
    topo.add_link(_standard_link(router, host, **attrs))
    return host
