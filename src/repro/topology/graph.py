"""Topology model.

A :class:`Topology` is an undirected multigraph-free graph of integer node
ids with per-link attributes (cost, propagation delay, bandwidth).  It is a
pure description — the network substrate (:mod:`repro.net`) instantiates the
live simulation objects from it, and the analysis helpers convert it to a
``networkx`` graph for shortest-path queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import networkx as nx

from ..sim import units

__all__ = [
    "LinkSpec",
    "Topology",
    "shortest_path_tree",
    "all_shortest_path_trees",
    "destination_path_trees",
    "merge",
]


@dataclass(frozen=True)
class LinkSpec:
    """A bidirectional link between two nodes.

    Defaults match the paper's simulation setup: unit cost, 1 ms propagation
    delay, 1 Mbps transmission rate.
    """

    a: int
    b: int
    cost: int = 1
    delay: float = 1 * units.MILLISECONDS
    bandwidth: float = 1 * units.MEGABITS

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"self-loop on node {self.a}")
        if self.cost <= 0:
            raise ValueError(f"link cost must be positive, got {self.cost}")
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    @property
    def endpoints(self) -> tuple[int, int]:
        """Canonical (min, max) endpoint pair."""
        return (self.a, self.b) if self.a < self.b else (self.b, self.a)


@dataclass
class Topology:
    """Named collection of nodes and links."""

    name: str = "topology"
    nodes: set[int] = field(default_factory=set)
    links: dict[tuple[int, int], LinkSpec] = field(default_factory=dict)
    #: Optional (row, col) positions for mesh topologies (rendering/tests).
    positions: dict[int, tuple[int, int]] = field(default_factory=dict)

    def add_node(self, node: int, position: Optional[tuple[int, int]] = None) -> None:
        self.nodes.add(node)
        if position is not None:
            self.positions[node] = position

    def add_link(self, spec: LinkSpec) -> None:
        """Add a link; endpoints are auto-added as nodes."""
        key = spec.endpoints
        if key in self.links:
            raise ValueError(f"duplicate link {key} in {self.name}")
        self.links[key] = spec
        self.nodes.add(spec.a)
        self.nodes.add(spec.b)

    def connect(self, a: int, b: int, **attrs) -> LinkSpec:
        """Convenience: create and add a :class:`LinkSpec`."""
        spec = LinkSpec(a, b, **attrs)
        self.add_link(spec)
        return spec

    def has_link(self, a: int, b: int) -> bool:
        return (min(a, b), max(a, b)) in self.links

    def link(self, a: int, b: int) -> LinkSpec:
        return self.links[(min(a, b), max(a, b))]

    def neighbors(self, node: int) -> Iterator[int]:
        """Neighbors of ``node`` in deterministic (sorted) order."""
        found = set()
        for a, b in self.links:
            if a == node:
                found.add(b)
            elif b == node:
                found.add(a)
        return iter(sorted(found))

    def degree(self, node: int) -> int:
        return sum(1 for _ in self.neighbors(node))

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_links(self) -> int:
        return len(self.links)

    def to_networkx(self) -> nx.Graph:
        """Weighted ``networkx`` view (``weight`` = link cost)."""
        graph = nx.Graph()
        graph.add_nodes_from(sorted(self.nodes))
        for (a, b), spec in self.links.items():
            graph.add_edge(a, b, weight=spec.cost, delay=spec.delay)
        return graph

    def shortest_path(
        self, src: int, dst: int, exclude_link: Optional[tuple[int, int]] = None
    ) -> Optional[list[int]]:
        """Min-cost path (ties broken deterministically), or None if disconnected.

        ``exclude_link`` removes one link first — used to compute the
        post-failure path the network should converge to.
        """
        graph = self.to_networkx()
        if exclude_link is not None:
            a, b = exclude_link
            if graph.has_edge(a, b):
                graph.remove_edge(a, b)
        try:
            return _deterministic_shortest_path(graph, src, dst)
        except nx.NetworkXNoPath:
            return None

    def is_connected(self) -> bool:
        if not self.nodes:
            return True
        return nx.is_connected(self.to_networkx())

    def copy(self, name: Optional[str] = None) -> "Topology":
        return Topology(
            name=name or self.name,
            nodes=set(self.nodes),
            links=dict(self.links),
            positions=dict(self.positions),
        )


def shortest_path_tree(graph: nx.Graph, src: int) -> dict[int, list[int]]:
    """Deterministic shortest paths from ``src`` to every reachable node.

    Dijkstra with (cost, hop count, lexicographic node sequence) tie-breaking.
    The protocols in this package break cost ties by lowest neighbor id, which
    for unit-cost graphs yields exactly the lexicographic-minimum shortest
    path — so analysis and warm-start code predict the same winner the
    protocols converge to.
    """
    import heapq

    dist: dict[int, tuple] = {src: (0, 0, ())}
    prev: dict[int, Optional[int]] = {src: None}
    heap: list[tuple] = [(0, 0, (), src)]
    visited: set[int] = set()
    while heap:
        cost, hops, key, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for nbr in sorted(graph.neighbors(node)):
            if nbr in visited:
                continue
            w = graph.edges[node, nbr].get("weight", 1)
            cand = (cost + w, hops + 1, key + (nbr,))
            if nbr not in dist or cand < dist[nbr]:
                dist[nbr] = cand
                prev[nbr] = node
                heapq.heappush(heap, (*cand, nbr))
    paths: dict[int, list[int]] = {}
    for node in visited:
        path = [node]
        while prev[path[-1]] is not None:
            path.append(prev[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        paths[node] = path
    return paths


def _deterministic_shortest_path(graph: nx.Graph, src: int, dst: int) -> list[int]:
    paths = shortest_path_tree(graph, src)
    if dst not in paths:
        raise nx.NetworkXNoPath(f"no path {src}->{dst}")
    return paths[dst]


_TREE_CACHE: dict[tuple, dict[int, dict[int, list[int]]]] = {}


def all_shortest_path_trees(topo: "Topology") -> dict[int, dict[int, list[int]]]:
    """Deterministic shortest-path trees from every node, memoized per
    link-set (warm starts of all 49 routers share one computation)."""
    key = tuple(sorted((a, b, spec.cost) for (a, b), spec in topo.links.items()))
    cached = _TREE_CACHE.get(key)
    if cached is not None:
        return cached
    graph = topo.to_networkx()
    trees = {src: shortest_path_tree(graph, src) for src in sorted(topo.nodes)}
    if len(_TREE_CACHE) > 32:  # bound memory across large sweeps
        _TREE_CACHE.clear()
    _TREE_CACHE[key] = trees
    return trees


# Keyed by id(topo), validated against a weak reference to the owning
# Topology: building a sorted-link-set key is O(E log E) per call, too slow
# to repeat for every router of a 10k-node warm start.  The weakref guard
# makes id() reuse after garbage collection safe.
_DEST_TREE_CACHE: dict[int, dict[int, dict[int, list[int]]]] = {}
_DEST_TREE_OWNERS: "weakref.WeakValueDictionary[int, Topology]" = None  # type: ignore[assignment]


def destination_path_trees(
    topo: "Topology", dests: Iterable[int]
) -> dict[int, dict[int, list[int]]]:
    """Deterministic shortest paths *toward* each destination.

    Returns ``{dest: {node: [node, ..., dest]}}`` — the tree rooted at the
    destination, with each path reversed to run from the node to the root.
    One Dijkstra per destination network-wide (instead of one per node as in
    :func:`all_shortest_path_trees`), which is what makes a 10k-node warm
    start restricted to a few traffic destinations affordable.

    Tie-breaking is the destination-rooted lexicographic minimum, so a path
    may legitimately differ from the source-rooted tree's choice for the
    same pair; within one call the result is prefix-closed and loop-free,
    which is all a restricted warm start needs.
    """
    global _DEST_TREE_OWNERS
    import weakref

    if _DEST_TREE_OWNERS is None:
        _DEST_TREE_OWNERS = weakref.WeakValueDictionary()
    key = id(topo)
    if _DEST_TREE_OWNERS.get(key) is not topo:
        _DEST_TREE_CACHE.pop(key, None)
        if len(_DEST_TREE_CACHE) > 8:
            _DEST_TREE_CACHE.clear()
        _DEST_TREE_OWNERS[key] = topo
    per_dest = _DEST_TREE_CACHE.setdefault(key, {})
    graph: Optional[nx.Graph] = None
    out: dict[int, dict[int, list[int]]] = {}
    for dest in sorted(set(dests)):
        tree = per_dest.get(dest)
        if tree is None:
            if graph is None:
                graph = topo.to_networkx()
            rooted = shortest_path_tree(graph, dest)
            tree = {node: list(reversed(path)) for node, path in rooted.items()}
            per_dest[dest] = tree
        out[dest] = tree
    return out


def merge(name: str, parts: Iterable[Topology]) -> Topology:
    """Union of disjoint topologies (helper for multi-domain experiments)."""
    out = Topology(name=name)
    for part in parts:
        for node in part.nodes:
            out.add_node(node, part.positions.get(node))
        for spec in part.links.values():
            out.add_link(spec)
    return out
