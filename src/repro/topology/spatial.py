"""Spatial topologies: node positions and range-based connectivity.

The paper's meshes are purely combinatorial; mobility scenarios instead
place nodes in a metric space and derive links from radio range: two nodes
share a link exactly when their Euclidean distance is at most the range.
This module is the pure geometry half of the dynamic-topology stack — the
mobility models (:mod:`repro.mobility`) move the positions, and the
:class:`~repro.net.dynamics.LinkScheduler` executes the resulting link
up/down events.

Everything here is deterministic: connectivity sets are computed over
sorted node pairs and diffs are returned in canonical order, so a schedule
derived from the same positions is always byte-identical.
"""

from __future__ import annotations

import math
from typing import Mapping

from .graph import LinkSpec, Topology

__all__ = [
    "Position",
    "distance",
    "connectivity",
    "connectivity_changes",
    "derive_topology",
]

#: A point in simulation space (meters); planar models use z=0.
Position = tuple[float, float, float]


def distance(p: Position, q: Position) -> float:
    """Euclidean distance between two positions."""
    return math.sqrt(
        (p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2 + (p[2] - q[2]) ** 2
    )


def connectivity(
    positions: Mapping[int, Position], radio_range: float
) -> set[tuple[int, int]]:
    """Canonical (min, max) link keys for every in-range node pair."""
    if radio_range <= 0:
        raise ValueError(f"radio range must be positive, got {radio_range}")
    nodes = sorted(positions)
    links: set[tuple[int, int]] = set()
    for i, a in enumerate(nodes):
        pa = positions[a]
        for b in nodes[i + 1 :]:
            if distance(pa, positions[b]) <= radio_range:
                links.add((a, b))
    return links


def connectivity_changes(
    old: set[tuple[int, int]], new: set[tuple[int, int]]
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """``(downs, ups)`` between two connectivity sets, in canonical order."""
    return sorted(old - new), sorted(new - old)


def derive_topology(
    positions: Mapping[int, Position],
    radio_range: float,
    name: str = "spatial",
    links: set[tuple[int, int]] | None = None,
    **link_attrs,
) -> Topology:
    """Topology over ``positions``: one link per in-range pair.

    ``links`` overrides the derived connectivity (mobility drivers pass the
    union of every link that ever exists, so the live network can represent
    links that only come up later).  Isolated nodes are kept — a node out of
    everyone's range still runs its protocol.  ``link_attrs`` (cost, delay,
    bandwidth) apply to every link.
    """
    topo = Topology(name=name)
    for node in sorted(positions):
        topo.add_node(node)
    keys = links if links is not None else connectivity(positions, radio_range)
    for a, b in sorted(keys):
        topo.add_link(LinkSpec(a, b, **link_attrs))
    return topo
