"""Topology models and generators (Baran regular meshes + standard graphs)."""

from .graph import (
    LinkSpec,
    Topology,
    all_shortest_path_trees,
    merge,
    shortest_path_tree,
)
from .generators import (
    attach_host,
    complete,
    from_networkx,
    line,
    random_regular,
    ring,
    star,
    waxman,
)
from .mesh import MAX_DEGREE, MIN_DEGREE, interior_nodes, node_at, regular_mesh
from .render import render_mesh
from .validate import (
    TopologyError,
    check_connected,
    check_interior_degree,
    degree_histogram,
)

__all__ = [
    "LinkSpec",
    "Topology",
    "merge",
    "shortest_path_tree",
    "all_shortest_path_trees",
    "regular_mesh",
    "render_mesh",
    "interior_nodes",
    "node_at",
    "MIN_DEGREE",
    "MAX_DEGREE",
    "line",
    "ring",
    "star",
    "complete",
    "random_regular",
    "waxman",
    "from_networkx",
    "attach_host",
    "TopologyError",
    "check_connected",
    "check_interior_degree",
    "degree_histogram",
]
