"""ASCII rendering of regular meshes (Figure 2's visual).

Draws nodes as two-digit ids, horizontal links as ``--``, vertical links as
``|``, main diagonals as ``\\``, anti-diagonals as ``/`` (both as ``X``),
and marks a failed link with ``xx``/``x``.  Useful in examples and for
eyeballing the degree-3..8 construction.
"""

from __future__ import annotations

from typing import Optional

from .graph import Topology
from .mesh import node_at

__all__ = ["render_mesh"]


def render_mesh(
    topo: Topology,
    rows: int,
    cols: int,
    failed_link: Optional[tuple[int, int]] = None,
) -> str:
    """Render a mesh built by :func:`repro.topology.mesh.regular_mesh`."""
    failed = None
    if failed_link is not None:
        failed = (min(failed_link), max(failed_link))

    def is_failed(a: int, b: int) -> bool:
        return failed == (min(a, b), max(a, b))

    def has(a: int, b: int) -> bool:
        return topo.has_link(a, b)

    lines: list[str] = []
    for r in range(rows):
        # Node row.
        parts = []
        for c in range(cols):
            node = node_at(r, c, cols)
            parts.append(f"{node:02d}")
            if c < cols - 1:
                right = node_at(r, c + 1, cols)
                if has(node, right):
                    parts.append("xx" if is_failed(node, right) else "--")
                else:
                    parts.append("  ")
        lines.append("".join(parts))
        if r == rows - 1:
            break
        # Inter-row: vertical and diagonal links.
        parts = []
        for c in range(cols):
            node = node_at(r, c, cols)
            below = node_at(r + 1, c, cols)
            if has(node, below):
                parts.append("x " if is_failed(node, below) else "| ")
            else:
                parts.append("  ")
            if c < cols - 1:
                right = node_at(r, c + 1, cols)
                below_right = node_at(r + 1, c + 1, cols)
                main = has(node, below_right)
                anti = has(right, below)
                if main and anti:
                    glyph = "X"
                elif main:
                    glyph = "x" if is_failed(node, below_right) else "\\"
                elif anti:
                    glyph = "x" if is_failed(right, below) else "/"
                else:
                    glyph = " "
                parts.append(glyph + " ")
        lines.append("".join(parts).rstrip())
    return "\n".join(lines)
