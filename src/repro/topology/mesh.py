"""Baran-style regular mesh topologies.

The paper evaluates a family of R x C meshes in which every non-border node
has the same degree, built "by a deterministic method similar to the one used
by Baran" (On Distributed Communication Networks, 1964).  We reconstruct that
family for interior degrees 3..8:

==========  =========================================================
degree      construction
==========  =========================================================
3           grid with brick-pattern vertical links (every other one)
4           plain grid
5           grid + one main diagonal per node (added on even rows)
6           grid + main diagonals everywhere (triangular lattice)
7           degree-6 + anti-diagonals on even rows
8           degree-6 + anti-diagonals everywhere (king's graph)
==========  =========================================================

Node ids are assigned row-major: node = row * cols + col.
"""

from __future__ import annotations

from ..sim import units
from .graph import LinkSpec, Topology

__all__ = ["regular_mesh", "node_at", "MIN_DEGREE", "MAX_DEGREE"]

MIN_DEGREE = 3
MAX_DEGREE = 8


def node_at(row: int, col: int, cols: int) -> int:
    """Row-major node id of grid coordinate (row, col)."""
    return row * cols + col


def regular_mesh(
    rows: int = 7,
    cols: int = 7,
    degree: int = 4,
    cost: int = 1,
    delay: float = 1 * units.MILLISECONDS,
    bandwidth: float = 1 * units.MEGABITS,
) -> Topology:
    """Build the degree-``degree`` regular mesh used throughout the paper.

    Interior nodes have exactly ``degree`` neighbors; border nodes have fewer,
    matching the paper's description.  Raises ``ValueError`` for degrees
    outside 3..8 or meshes too small to have an interior.
    """
    if not MIN_DEGREE <= degree <= MAX_DEGREE:
        raise ValueError(f"degree must be in [{MIN_DEGREE}, {MAX_DEGREE}], got {degree}")
    if rows < 3 or cols < 3:
        raise ValueError(f"mesh must be at least 3x3, got {rows}x{cols}")

    topo = Topology(name=f"mesh-{rows}x{cols}-d{degree}")
    for r in range(rows):
        for c in range(cols):
            topo.add_node(node_at(r, c, cols), position=(r, c))

    def connect(r1: int, c1: int, r2: int, c2: int) -> None:
        topo.add_link(
            LinkSpec(
                node_at(r1, c1, cols),
                node_at(r2, c2, cols),
                cost=cost,
                delay=delay,
                bandwidth=bandwidth,
            )
        )

    # Horizontal links: present in every construction.
    for r in range(rows):
        for c in range(cols - 1):
            connect(r, c, r, c + 1)

    # Vertical links: brick pattern for degree 3, full otherwise.
    for r in range(rows - 1):
        for c in range(cols):
            if degree == 3 and (r + c) % 2 != 0:
                continue
            connect(r, c, r + 1, c)

    # Main diagonals (r, c) -- (r+1, c+1).
    if degree >= 5:
        for r in range(rows - 1):
            if degree == 5 and r % 2 != 0:
                continue
            for c in range(cols - 1):
                connect(r, c, r + 1, c + 1)

    # Anti-diagonals (r, c) -- (r+1, c-1).
    if degree >= 7:
        for r in range(rows - 1):
            if degree == 7 and r % 2 != 0:
                continue
            for c in range(1, cols):
                connect(r, c, r + 1, c - 1)

    return topo


def interior_nodes(topo: Topology, rows: int, cols: int) -> list[int]:
    """Node ids strictly inside the border (where the degree guarantee holds)."""
    return [
        node_at(r, c, cols)
        for r in range(1, rows - 1)
        for c in range(1, cols - 1)
    ]
