"""Packet sink: records every delivery for a flow."""

from __future__ import annotations

from ..net.node import Node
from ..net.packet import Packet
from .flows import Delivery, FlowStats

__all__ = ["PacketSink"]


class PacketSink:
    """Attach to the destination node to collect per-packet delivery records."""

    def __init__(self, flow_id: int, ttl_at_send: int = 127) -> None:
        self.flow_id = flow_id
        self.ttl_at_send = ttl_at_send
        self.stats = FlowStats()

    def on_packet(self, packet: Packet, node: Node) -> None:
        if packet.flow_id != self.flow_id:
            return
        delay = node.sim.now - packet.send_time
        hops = self.ttl_at_send - packet.ttl
        self.stats.delivered += 1
        self.stats.deliveries.append(
            Delivery(
                time=node.sim.now,
                delay=delay,
                hops=hops,
                packet_id=packet.packet_id,
                path=tuple(packet.hops) if packet.hops else None,
            )
        )
