"""Flow descriptors and end-to-end statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["FlowSpec", "Delivery", "FlowStats"]


@dataclass(frozen=True)
class FlowSpec:
    """One constant-bit-rate flow (the paper uses a single sender/receiver pair)."""

    flow_id: int
    src: int
    dst: int
    rate_pps: float
    start: float
    stop: float
    packet_bytes: int = 500
    ttl: int = 127

    def __post_init__(self) -> None:
        if self.rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_pps}")
        if self.stop <= self.start:
            raise ValueError(f"stop ({self.stop}) must follow start ({self.start})")
        if self.ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {self.ttl}")

    @property
    def interval(self) -> float:
        return 1.0 / self.rate_pps

    @property
    def expected_packets(self) -> int:
        return int((self.stop - self.start) * self.rate_pps)


@dataclass(frozen=True)
class Delivery:
    """One packet that reached the sink."""

    time: float
    delay: float
    hops: int
    packet_id: int
    path: Optional[tuple[int, ...]] = None


@dataclass
class FlowStats:
    """Aggregated outcome of one flow."""

    sent: int = 0
    delivered: int = 0
    deliveries: list[Delivery] = field(default_factory=list)

    @property
    def lost(self) -> int:
        return self.sent - self.delivered

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0

    @property
    def mean_delay(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.delay for d in self.deliveries) / len(self.deliveries)

    @property
    def max_delay(self) -> float:
        return max((d.delay for d in self.deliveries), default=0.0)
