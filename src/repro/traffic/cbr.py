"""Constant-bit-rate packet source.

The paper's workload: a single sender emitting fixed-size IP packets with
TTL 127 at a constant rate toward a single receiver, starting after the
routing warm-up.
"""

from __future__ import annotations

from ..net.network import Network
from ..net.packet import Packet
from ..sim.engine import Simulator
from .flows import FlowSpec

__all__ = ["CbrSource"]


class CbrSource:
    """Originates one packet every ``1/rate`` seconds during [start, stop)."""

    def __init__(self, sim: Simulator, network: Network, spec: FlowSpec) -> None:
        self.sim = sim
        self.network = network
        self.spec = spec
        self.sent = 0
        self._started = False

    def start(self) -> None:
        """Arm the first transmission (idempotent)."""
        if self._started:
            return
        self._started = True
        delay = max(0.0, self.spec.start - self.sim.now)
        self.sim.schedule(delay, self._emit)

    def _emit(self) -> None:
        if self.sim.now >= self.spec.stop:
            return
        packet = Packet(
            src=self.spec.src,
            dst=self.spec.dst,
            kind="data",
            ttl=self.spec.ttl,
            size_bytes=self.spec.packet_bytes,
            flow_id=self.spec.flow_id,
        )
        self.network.node(self.spec.src).originate(packet)
        self.sent += 1
        self.sim.schedule(self.spec.interval, self._emit)
