"""Constant-bit-rate packet source.

The paper's workload: a single sender emitting fixed-size IP packets with
TTL 127 at a constant rate toward a single receiver, starting after the
routing warm-up.
"""

from __future__ import annotations

from ..net.network import Network
from ..net.packet import Packet
from ..sim.engine import Simulator
from .flows import FlowSpec

__all__ = ["CbrSource"]


class CbrSource:
    """Originates one packet every ``1/rate`` seconds during [start, stop)."""

    __slots__ = ("sim", "network", "spec", "sent", "_started", "_handle", "_src_node")

    def __init__(self, sim: Simulator, network: Network, spec: FlowSpec) -> None:
        self.sim = sim
        self.network = network
        self.spec = spec
        self.sent = 0
        self._started = False
        self._handle = None
        self._src_node = network.node(spec.src)

    def start(self) -> None:
        """Arm the first transmission (idempotent)."""
        if self._started:
            return
        self._started = True
        delay = max(0.0, self.spec.start - self.sim.now)
        self._handle = self.sim.schedule(delay, self._emit)

    def _emit(self) -> None:
        if self.sim.now >= self.spec.stop:
            return
        spec = self.spec
        packet = Packet(
            src=spec.src,
            dst=spec.dst,
            kind="data",
            ttl=spec.ttl,
            size_bytes=spec.packet_bytes,
            flow_id=spec.flow_id,
        )
        self._src_node.originate(packet)
        self.sent += 1
        # Recycle the emit handle instead of allocating one per packet.
        self._handle = self.sim.reschedule(self._handle, spec.interval)
