"""Traffic generation and accounting (CBR source, sink, flow stats)."""

from .cbr import CbrSource
from .flows import Delivery, FlowSpec, FlowStats
from .sink import PacketSink
from .transport import (
    ReliableReceiver,
    ReliableSender,
    TransportConfig,
    TransportStats,
)

__all__ = [
    "CbrSource",
    "FlowSpec",
    "FlowStats",
    "Delivery",
    "PacketSink",
    "ReliableSender",
    "ReliableReceiver",
    "TransportConfig",
    "TransportStats",
]
