"""Reliable transport on top of the simulated IP layer.

The paper's §6 lists "extending the packet delivery performance measure from
IP layer to include end-to-end TCP performance during routing convergence"
as future work; this module provides that extension with a deliberately
simple transport in the spirit of the flow model used by Shankar et al.
(the paper's [25]): a fixed-size sliding window, cumulative ACKs, and
timeout-driven retransmission with exponential backoff.  No congestion
control — the point is to observe how IP-layer convergence losses translate
into end-to-end stalls and retransmissions, not to model TCP Reno.

Wire format: data segments are data packets whose ``payload`` is
``("seg", seq)``; ACKs travel as data packets in the reverse direction with
payload ``("ack", cumulative_seq)``.  Both directions therefore experience
the same convergence dynamics, like real TCP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net.network import Network
from ..net.node import Node
from ..net.packet import Packet
from ..sim.engine import Simulator
from ..sim.timers import OneShotTimer

__all__ = ["TransportConfig", "TransportStats", "ReliableSender", "ReliableReceiver"]


@dataclass(frozen=True)
class TransportConfig:
    """Window/retransmission parameters."""

    window: int = 8
    initial_rto: float = 1.0
    max_rto: float = 16.0
    segment_bytes: int = 64
    ack_bytes: int = 40
    ttl: int = 127

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.initial_rto <= 0 or self.max_rto < self.initial_rto:
            raise ValueError("bad RTO range")


@dataclass
class TransportStats:
    """Sender-side outcome of one transfer."""

    segments: int = 0
    transmissions: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    completed_at: Optional[float] = None
    #: (time, cumulative acked seq) — the transfer's progress curve.
    progress: list[tuple[float, int]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return self.completed_at is not None


class ReliableReceiver:
    """Receiver half: delivers cumulative ACKs for in-order data."""

    def __init__(self, network: Network, host: int, peer: int, flow_id: int,
                 config: Optional[TransportConfig] = None) -> None:
        self.network = network
        self.host = host
        self.peer = peer
        self.flow_id = flow_id
        self.config = config or TransportConfig()
        self.next_expected = 0
        self.out_of_order: set[int] = set()
        self.segments_received = 0
        network.node(host).attach_app(self)

    def on_packet(self, packet: Packet, node: Node) -> None:
        if packet.flow_id != self.flow_id or not isinstance(packet.payload, tuple):
            return
        kind, seq = packet.payload
        if kind != "seg":
            return
        self.segments_received += 1
        if seq == self.next_expected:
            self.next_expected += 1
            while self.next_expected in self.out_of_order:
                self.out_of_order.discard(self.next_expected)
                self.next_expected += 1
        elif seq > self.next_expected:
            self.out_of_order.add(seq)
        self._send_ack(node)

    def _send_ack(self, node: Node) -> None:
        ack = Packet(
            src=self.host,
            dst=self.peer,
            kind="data",
            ttl=self.config.ttl,
            size_bytes=self.config.ack_bytes,
            flow_id=self.flow_id,
            payload=("ack", self.next_expected),
        )
        node.originate(ack)


class ReliableSender:
    """Sender half: fixed window, cumulative ACKs, RTO with backoff."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        host: int,
        peer: int,
        flow_id: int,
        total_segments: int,
        config: Optional[TransportConfig] = None,
    ) -> None:
        if total_segments < 1:
            raise ValueError("need at least one segment")
        self.sim = sim
        self.network = network
        self.host = host
        self.peer = peer
        self.flow_id = flow_id
        self.total_segments = total_segments
        self.config = config or TransportConfig()
        self.stats = TransportStats(segments=total_segments)
        self._base = 0  # lowest unacked seq
        self._next = 0  # next seq never sent
        self._rto = self.config.initial_rto
        self._timer = OneShotTimer(sim, self._on_timeout)
        self._started = False
        network.node(host).attach_app(self)

    # ----------------------------------------------------------------- driver

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._fill_window()

    @property
    def done(self) -> bool:
        return self._base >= self.total_segments

    def _fill_window(self) -> None:
        while (
            self._next < self.total_segments
            and self._next < self._base + self.config.window
        ):
            self._transmit(self._next)
            self._next += 1
        if not self.done and not self._timer.running:
            self._timer.start(self._rto)

    def _transmit(self, seq: int, is_retransmission: bool = False) -> None:
        segment = Packet(
            src=self.host,
            dst=self.peer,
            kind="data",
            ttl=self.config.ttl,
            size_bytes=self.config.segment_bytes,
            flow_id=self.flow_id,
            payload=("seg", seq),
        )
        self.stats.transmissions += 1
        if is_retransmission:
            self.stats.retransmissions += 1
        self.network.node(self.host).originate(segment)

    # ------------------------------------------------------------------ input

    def on_packet(self, packet: Packet, node: Node) -> None:
        if packet.flow_id != self.flow_id or not isinstance(packet.payload, tuple):
            return
        kind, cum = packet.payload
        if kind != "ack":
            return
        if cum > self._base:
            self._base = cum
            self.stats.progress.append((self.sim.now, cum))
            self._rto = self.config.initial_rto
            if self.done:
                self._timer.cancel()
                if self.stats.completed_at is None:
                    self.stats.completed_at = self.sim.now
                return
            self._timer.start(self._rto)
            self._fill_window()

    # --------------------------------------------------------------- timeouts

    def _on_timeout(self) -> None:
        if self.done:
            return
        self.stats.timeouts += 1
        # Go-back-N style: resend the whole outstanding window.
        for seq in range(self._base, min(self._next, self._base + self.config.window)):
            self._transmit(seq, is_retransmission=True)
        self._rto = min(self._rto * 2, self.config.max_rto)
        self._timer.start(self._rto)
