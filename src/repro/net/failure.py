"""Failure injection.

The paper's experiment injects a single link failure on the pre-failure
shortest path between sender and receiver; the two attached nodes detect it
after a fixed detection delay (link-layer keepalive), at which point their
routing protocols react.  The injector separates the two moments: packets die
on the link immediately at ``fail``, protocols learn at ``fail + detection``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.engine import Simulator
from ..sim.tracing import LinkEventRecord
from ..sim.units import MILLISECONDS
from .network import Network

__all__ = ["FailureInjector", "DEFAULT_DETECTION_DELAY", "FailureEvent"]

#: Endpoint detection delay (see DESIGN.md parameter reconstruction).
DEFAULT_DETECTION_DELAY = 50 * MILLISECONDS


@dataclass
class FailureEvent:
    """Record of one injected failure (for reports and convergence tracking)."""

    a: int
    b: int
    fail_time: float
    detection_delay: float
    restored_time: Optional[float] = None

    @property
    def detect_time(self) -> float:
        """Time both endpoints know about the failure."""
        return self.fail_time + self.detection_delay

    @property
    def link_key(self) -> tuple[int, int]:
        return (min(self.a, self.b), max(self.a, self.b))


class FailureInjector:
    """Schedules link failures/restorations against a live network."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        detection_delay: float = DEFAULT_DETECTION_DELAY,
    ) -> None:
        if detection_delay < 0:
            raise ValueError(f"detection delay must be >= 0, got {detection_delay}")
        self._sim = sim
        self._network = network
        self.detection_delay = detection_delay
        self.events: list[FailureEvent] = []

    def fail_link(self, a: int, b: int, at: float) -> FailureEvent:
        """Schedule the link (a, b) to fail at absolute time ``at``."""
        link = self._network.link(a, b)  # validate now, fail loudly early
        event = FailureEvent(a, b, at, self.detection_delay)
        self.events.append(event)
        self._sim.schedule_at(at, lambda: self._fire(event))
        return event

    def fail_node(self, node: int, at: float) -> list[FailureEvent]:
        """Schedule every link attached to ``node`` to fail at ``at``.

        Models a whole-router crash (the other failure mode of the paper's
        related work [28]); neighbors detect each adjacent link failure after
        the usual detection delay.
        """
        events = []
        for nbr in self._network.node(node).neighbors():
            events.append(self.fail_link(node, nbr, at))
        if not events:
            raise ValueError(f"node {node} has no links to fail")
        return events

    def restore_link(self, a: int, b: int, at: float) -> None:
        """Schedule the link to come back up at ``at`` (repair experiments)."""
        self._network.link(a, b)
        self._sim.schedule_at(at, lambda: self._restore(a, b, at))

    def _fire(self, event: FailureEvent) -> None:
        link = self._network.link(event.a, event.b)
        link.fail()
        bus = self._network.bus
        bus.counters.link_events += 1
        if bus.wants_link:
            bus.publish(
                LinkEventRecord(time=self._sim.now, node_a=event.a, node_b=event.b, up=False)
            )
        self._sim.schedule_call(self.detection_delay, self._detected, event)

    def _detected(self, event: FailureEvent) -> None:
        self._network.node(event.a).on_link_down(event.b)
        self._network.node(event.b).on_link_down(event.a)

    def _restore(self, a: int, b: int, at: float) -> None:
        link = self._network.link(a, b)
        link.restore()
        bus = self._network.bus
        bus.counters.link_events += 1
        if bus.wants_link:
            bus.publish(
                LinkEventRecord(time=self._sim.now, node_a=a, node_b=b, up=True)
            )
        for event in self.events:
            if event.link_key == (min(a, b), max(a, b)) and event.restored_time is None:
                event.restored_time = at
        self._sim.schedule(
            self.detection_delay,
            lambda: (
                self._network.node(a).on_link_up(b),
                self._network.node(b).on_link_up(a),
            ),
        )
