"""Topology event layer: typed link events, their scheduler, and drivers.

The paper's experiment injects *one* link failure on a static mesh.  This
module dissolves that single-failure assumption into three orthogonal
pieces:

* :class:`LinkEvent` — one typed topology change (``fail`` or ``restore``)
  with its own detection delay;
* :class:`LinkScheduler` — executes an ordered schedule of link events
  against a live network: the link's physical state flips at the event
  instant (packets on it die immediately on a fail), and the two endpoints
  are notified after the event's detection delay (link-layer keepalive);
* :class:`TopologyDriver` — anything that *generates* an event schedule.
  The paper's one-failure experiment is the trivial
  :class:`SingleLinkFailureDriver`; an explicit event list is a
  :class:`ScriptedDriver`; the mobility models in :mod:`repro.mobility`
  derive schedules from node movement and radio range.

State transitions are strict: failing a link that is already down, or
restoring one that is already up, raises :class:`~repro.sim.engine.
SimulationError` at the event instant.  (The old ``FailureInjector``
silently ignored both, which let a driver bug — e.g. a mobility model
emitting duplicate transitions — pass unnoticed while quietly skewing the
event bookkeeping.)  Restores are first-class events with their own records,
not an untracked side channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, runtime_checkable

from ..sim.engine import SimulationError, Simulator
from ..sim.tracing import LinkEventRecord
from ..sim.units import MILLISECONDS
from .network import Network

__all__ = [
    "DEFAULT_DETECTION_DELAY",
    "LinkEvent",
    "LinkScheduler",
    "TopologyDriver",
    "SingleLinkFailureDriver",
    "ScriptedDriver",
]

#: Endpoint detection delay (see DESIGN.md parameter reconstruction).
DEFAULT_DETECTION_DELAY = 50 * MILLISECONDS


@dataclass
class LinkEvent:
    """One scheduled topology change (and its bookkeeping record).

    ``detection_delay`` is per-event; ``None`` means "use the scheduler's
    default".  For ``fail`` events, ``restored_time`` is backfilled when a
    later ``restore`` of the same link executes, so a fail event records the
    full outage interval.
    """

    kind: str  # "fail" | "restore"
    a: int
    b: int
    time: float
    detection_delay: Optional[float] = None
    #: Fail events only: when a matching restore executed (None = never).
    restored_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "restore"):
            raise ValueError(f"unknown link event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.detection_delay is not None and self.detection_delay < 0:
            raise ValueError(
                f"detection delay must be >= 0, got {self.detection_delay}"
            )

    @property
    def link_key(self) -> tuple[int, int]:
        """Canonical (min, max) endpoint pair."""
        return (self.a, self.b) if self.a < self.b else (self.b, self.a)

    @property
    def fail_time(self) -> float:
        """Legacy alias: the event instant (failure injection time)."""
        return self.time

    @property
    def detect_time(self) -> float:
        """Time both endpoints know about the change.

        Resolved against the module default when the event carries no
        per-event delay; a scheduler with a non-default delay resolves it at
        execution time instead.
        """
        delay = (
            self.detection_delay
            if self.detection_delay is not None
            else DEFAULT_DETECTION_DELAY
        )
        return self.time + delay


@runtime_checkable
class TopologyDriver(Protocol):
    """Anything that generates a link-event schedule for one run."""

    def generate(self, until: float) -> list[LinkEvent]:
        """Events at/after t=0 and strictly before ``until``, time-ordered."""
        ...


@dataclass(frozen=True)
class SingleLinkFailureDriver:
    """The paper's scenario as a driver: one link fails, optionally repairs."""

    link: tuple[int, int]
    fail_at: float
    detection_delay: Optional[float] = None
    restore_at: Optional[float] = None

    def generate(self, until: float) -> list[LinkEvent]:
        a, b = self.link
        events = [
            LinkEvent("fail", a, b, self.fail_at, self.detection_delay)
        ]
        if self.restore_at is not None and self.restore_at < until:
            if self.restore_at <= self.fail_at:
                raise ValueError(
                    f"restore_at {self.restore_at} must be after fail_at "
                    f"{self.fail_at}"
                )
            events.append(
                LinkEvent("restore", a, b, self.restore_at, self.detection_delay)
            )
        return events


@dataclass(frozen=True)
class ScriptedDriver:
    """A driver that replays an explicit, caller-built event list."""

    events: tuple[LinkEvent, ...]

    def generate(self, until: float) -> list[LinkEvent]:
        out = [e for e in self.events if e.time < until]
        if any(
            out[i].time > out[i + 1].time for i in range(len(out) - 1)
        ):
            raise ValueError("scripted events must be time-ordered")
        return out


class LinkScheduler:
    """Executes an ordered schedule of link events against a live network.

    Each event flips the link's physical state the instant it fires (a fail
    kills everything queued and in flight with ``LINK_DOWN``), publishes a
    :class:`~repro.sim.tracing.LinkEventRecord`, and notifies both endpoint
    protocols after the event's detection delay.  All scheduling goes
    through the engine's closure-free ``schedule_call`` fast paths.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        detection_delay: float = DEFAULT_DETECTION_DELAY,
    ) -> None:
        if detection_delay < 0:
            raise ValueError(f"detection delay must be >= 0, got {detection_delay}")
        self._sim = sim
        self._network = network
        self.detection_delay = detection_delay
        #: Every scheduled event, in schedule order.
        self.events: list[LinkEvent] = []

    # ------------------------------------------------------------- scheduling

    def add(self, event: LinkEvent) -> LinkEvent:
        """Schedule one event; the link must exist (fails loudly now)."""
        self._network.link(event.a, event.b)  # validate now, fail loudly early
        self.events.append(event)
        self._sim.schedule_call_at(event.time, self._execute, event)
        return event

    def load(self, events: Iterable[LinkEvent]) -> list[LinkEvent]:
        """Schedule a whole driver-generated schedule, in order."""
        return [self.add(event) for event in events]

    def run_driver(self, driver: TopologyDriver, until: float) -> list[LinkEvent]:
        """Generate ``driver``'s schedule up to ``until`` and load it."""
        return self.load(driver.generate(until))

    # Convenience constructors mirroring the old injector API ---------------

    def fail_link(
        self, a: int, b: int, at: float, detection_delay: Optional[float] = None
    ) -> LinkEvent:
        """Schedule the link (a, b) to fail at absolute time ``at``."""
        return self.add(LinkEvent("fail", a, b, at, detection_delay))

    def restore_link(
        self, a: int, b: int, at: float, detection_delay: Optional[float] = None
    ) -> LinkEvent:
        """Schedule the link to come back up at ``at`` (repair/churn).

        A first-class event: it appears in :attr:`events`, publishes a trace
        record, and raises at execution time if the link is already up.
        """
        return self.add(LinkEvent("restore", a, b, at, detection_delay))

    def fail_node(self, node: int, at: float) -> list[LinkEvent]:
        """Schedule every link attached to ``node`` to fail at ``at``.

        Models a whole-router crash (the other failure mode of the paper's
        related work [28]); neighbors detect each adjacent link failure
        after the usual detection delay.  The neighbor set is validated
        up front, so a degree-zero node schedules nothing before raising.
        """
        neighbors = list(self._network.node(node).neighbors())
        if not neighbors:
            raise ValueError(f"node {node} has no links to fail")
        return [self.fail_link(node, nbr, at) for nbr in neighbors]

    # --------------------------------------------------------- initial state

    def take_down_initially(self, links: Iterable[tuple[int, int]]) -> None:
        """Mark links down *before* the run starts, without events.

        Used by mobility scenarios: the network is built over the union of
        every link that ever exists, and links outside the initial
        connectivity start down.  No trace record is published and no
        endpoint is notified — the protocols are warm-started on the initial
        topology and never knew these links existed.
        """
        if self._sim.now != 0.0:
            raise SimulationError(
                "initial link state must be applied before the run starts"
            )
        for a, b in links:
            link = self._network.link(a, b)
            if not link.up:
                raise SimulationError(
                    f"link {link.endpoints} already down at initial state"
                )
            link.fail()

    # -------------------------------------------------------------- execution

    def _resolved_delay(self, event: LinkEvent) -> float:
        return (
            event.detection_delay
            if event.detection_delay is not None
            else self.detection_delay
        )

    def _execute(self, event: LinkEvent) -> None:
        link = self._network.link(event.a, event.b)
        if event.kind == "fail":
            if not link.up:
                raise SimulationError(
                    f"cannot fail link {link.endpoints} at t={event.time}: "
                    "already down"
                )
            link.fail()
            self._publish(event, up=False)
            self._sim.schedule_call(
                self._resolved_delay(event), self._notify_down, event.a, event.b
            )
        else:
            if link.up:
                raise SimulationError(
                    f"cannot restore link {link.endpoints} at t={event.time}: "
                    "already up"
                )
            link.restore()
            self._publish(event, up=True)
            key = event.link_key
            for prior in self.events:
                # Only fails that already executed: strict transitions
                # guarantee at most one un-restored executed fail per link.
                if (
                    prior.kind == "fail"
                    and prior.link_key == key
                    and prior.time <= event.time
                    and prior.restored_time is None
                ):
                    prior.restored_time = event.time
            self._sim.schedule_call(
                self._resolved_delay(event), self._notify_up, event.a, event.b
            )

    def _publish(self, event: LinkEvent, up: bool) -> None:
        bus = self._network.bus
        bus.counters.link_events += 1
        if bus.wants_link:
            bus.publish(
                LinkEventRecord(
                    time=self._sim.now, node_a=event.a, node_b=event.b, up=up
                )
            )

    def _notify_down(self, a: int, b: int) -> None:
        self._network.node(a).on_link_down(b)
        self._network.node(b).on_link_down(a)

    def _notify_up(self, a: int, b: int) -> None:
        self._network.node(a).on_link_up(b)
        self._network.node(b).on_link_up(a)
