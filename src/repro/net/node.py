"""Router/host node.

A :class:`Node` owns a FIB (``destination -> next hop``), its attached links,
at most one routing protocol, and any local applications (traffic sinks).
Forwarding follows the paper's §4 description exactly: as long as a packet's
TTL is positive and the router knows *some* next hop, the packet is forwarded
and the TTL decremented — regardless of whether routing has converged.

Drop accounting:

* ``NO_ROUTE``     — FIB miss (the router is inside its path switch-over period)
* ``TTL_EXPIRED``  — TTL hit zero (transient forwarding loop)
* ``QUEUE_OVERFLOW`` / ``LINK_DOWN`` — charged by the link machinery

Hot-path notes: every deliver/forward/drop bumps the bus's always-on integer
counters, but full :class:`~repro.sim.tracing.PacketRecord` objects are only
constructed when the bus's ``wants_packet`` guard says someone is listening.
When they are, records are built with ``tuple.__new__`` (they are
NamedTuples), skipping the generated ``__new__``'s extra Python call — at a
flight-recorder-grade record rate that call is the single largest
instrumentation cost.  Transmission goes through a precomputed per-neighbor
dispatch table (``neighbor id -> channel.send``) so the FIB lookup resolves
straight to the outgoing channel without re-walking Link internals per packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Protocol as TypingProtocol

from ..sim.engine import Simulator
from ..sim.tracing import DropCause, PacketRecord, RouteChangeRecord, TraceBus
from .packet import Packet
from .link import Link

_new = tuple.__new__

if TYPE_CHECKING:  # pragma: no cover
    from ..routing.base import RoutingProtocol

__all__ = ["Node", "PacketApp"]


class PacketApp(TypingProtocol):
    """Anything that consumes locally delivered data packets."""

    def on_packet(self, packet: Packet, node: "Node") -> None: ...


class Node:
    """One router (or stub host) in the simulated network."""

    __slots__ = (
        "sim",
        "id",
        "bus",
        "record_paths",
        "record_forwards",
        "links",
        "fib",
        "protocol",
        "apps",
        "delivered",
        "originated",
        "forwarded",
        "drops",
        "route_cause",
        "route_miss",
        "_tx",
    )

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        bus: TraceBus,
        record_paths: bool = False,
        record_forwards: bool = False,
    ) -> None:
        self.sim = sim
        self.id = node_id
        self.bus = bus
        self.record_paths = record_paths
        self.record_forwards = record_forwards
        self.links: dict[int, Link] = {}
        #: Dispatch table: neighbor id -> that link's channel.send for this end.
        self._tx: dict[int, Callable[[Packet], None]] = {}
        self.fib: dict[int, Optional[int]] = {}
        self.protocol: Optional["RoutingProtocol"] = None
        self.apps: list[PacketApp] = []
        # Counters (data packets only).
        self.delivered = 0
        self.originated = 0
        self.forwarded = 0
        self.drops: dict[DropCause, int] = {cause: 0 for cause in DropCause}
        #: Control-plane scope marker: while a protocol event is being
        #: applied (see ``RoutingProtocol.route_cause``), names the event so
        #: route-change records can attribute FIB flips causally.
        self.route_cause: Optional[tuple[str, Optional[int]]] = None
        #: Reactive-routing hook: when set, a data packet that misses the FIB
        #: is handed here (on-demand discovery, source-route forwarding)
        #: instead of being dropped.  ``None`` keeps the classic drop — the
        #: hook costs nothing on the FIB-hit fast path.
        self.route_miss: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------ wiring

    def add_link(self, neighbor: int, link: Link) -> None:
        if neighbor in self.links:
            raise ValueError(f"node {self.id} already linked to {neighbor}")
        self.links[neighbor] = link
        self._tx[neighbor] = link.sender_from(self.id)

    def neighbors(self) -> list[int]:
        """Directly connected neighbor ids, sorted for determinism."""
        return sorted(self.links)

    def up_neighbors(self) -> list[int]:
        """Neighbors whose connecting link is currently up."""
        return sorted(n for n, l in self.links.items() if l.up)

    def link_to(self, neighbor: int) -> Link:
        return self.links[neighbor]

    def attach_protocol(self, protocol: "RoutingProtocol") -> None:
        if self.protocol is not None:
            raise ValueError(f"node {self.id} already has a protocol")
        self.protocol = protocol

    def attach_app(self, app: PacketApp) -> None:
        self.apps.append(app)

    # ------------------------------------------------------------------- FIB

    def next_hop(self, dest: int) -> Optional[int]:
        """Current next hop toward ``dest`` (None = no route)."""
        return self.fib.get(dest)

    def set_next_hop(self, dest: int, next_hop: Optional[int]) -> None:
        """Install/replace the FIB entry, publishing a route-change record."""
        old = self.fib.get(dest)
        if old == next_hop:
            return
        if next_hop is None:
            self.fib.pop(dest, None)
        else:
            if next_hop not in self.links:
                raise ValueError(
                    f"node {self.id}: next hop {next_hop} is not a neighbor"
                )
            self.fib[dest] = next_hop
        bus = self.bus
        bus.counters.route_changes += 1
        if bus.wants_route:
            # Fields: (time, node, dest, old_next_hop, new_next_hop, cause).
            # sim._now skips the ``now`` property call — guarded record
            # construction is the one place that cost is measurable.
            bus.publish(_new(RouteChangeRecord, (
                self.sim._now, self.id, dest, old, next_hop, self.route_cause,
            )))

    # ------------------------------------------------------------- data plane

    def originate(self, packet: Packet) -> None:
        """Inject a locally generated data packet into the network."""
        if not packet.is_data:
            raise ValueError("originate() is for data packets")
        packet.send_time = self.sim.now
        self.originated += 1
        if self.record_paths:
            packet.hops.append(self.id)
        bus = self.bus
        bus.counters.sends += 1
        if bus.wants_packet:
            # Fields: (time, kind, packet_id, node, flow_id, ttl, cause, dst)
            bus.publish(_new(PacketRecord, (
                self.sim._now, "send", packet.packet_id, self.id,
                packet.flow_id, packet.ttl, None, packet.dst,
            )))
        if packet.dst == self.id:
            self._deliver_local(packet)
            return
        self._lookup_and_transmit(packet)

    def receive(self, packet: Packet, from_node: int) -> None:
        """Entry point for packets arriving off a link."""
        if packet.is_control:
            if self.protocol is not None:
                self.route_cause = ("message", from_node)
                try:
                    self.protocol.handle_message(packet.payload, from_node)
                finally:
                    self.route_cause = None
            return
        if packet.dst == self.id:
            self._deliver_local(packet)
            return
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.drop(packet, DropCause.TTL_EXPIRED)
            return
        if self.record_paths:
            packet.hops.append(self.id)
        bus = self.bus
        bus.counters.forwards += 1
        if self.record_forwards and bus.wants_packet:
            bus.publish(_new(PacketRecord, (
                self.sim._now, "forward", packet.packet_id, self.id,
                packet.flow_id, packet.ttl, None, packet.dst,
            )))
        self.forwarded += 1
        self._lookup_and_transmit(packet)

    def _lookup_and_transmit(self, packet: Packet) -> None:
        nh = self.fib.get(packet.dst)
        if nh is None:
            if self.route_miss is not None:
                self.route_miss(packet)
            else:
                self.drop(packet, DropCause.NO_ROUTE)
            return
        send = self._tx.get(nh)
        if send is None:
            if self.route_miss is not None:
                self.route_miss(packet)
            else:
                self.drop(packet, DropCause.NO_ROUTE)
            return
        send(packet)

    def transmit_to(self, packet: Packet, next_hop: int) -> bool:
        """Push ``packet`` onto the channel toward ``next_hop`` directly.

        Used by reactive protocols to release buffered packets after route
        discovery and to forward along DSR source routes, bypassing the FIB.
        Returns False (and drops as NO_ROUTE) when ``next_hop`` is not
        currently attached.
        """
        send = self._tx.get(next_hop)
        if send is None:
            self.drop(packet, DropCause.NO_ROUTE)
            return False
        send(packet)
        return True

    def _deliver_local(self, packet: Packet) -> None:
        self.delivered += 1
        if self.record_paths:
            packet.hops.append(self.id)
        bus = self.bus
        bus.counters.delivers += 1
        if bus.wants_packet:
            bus.publish(_new(PacketRecord, (
                self.sim._now, "deliver", packet.packet_id, self.id,
                packet.flow_id, packet.ttl, None, packet.dst,
            )))
        for app in self.apps:
            app.on_packet(packet, self)

    def drop(self, packet: Packet, cause: DropCause) -> None:
        """Account a packet death at this node."""
        if packet.is_data:
            self.drops[cause] += 1
            bus = self.bus
            bus.counters.drops += 1
            if bus.wants_packet:
                bus.publish(_new(PacketRecord, (
                    self.sim._now, "drop", packet.packet_id, self.id,
                    packet.flow_id, packet.ttl, cause, packet.dst,
                )))

    # ---------------------------------------------------------- control plane

    def send_control(self, neighbor: int, payload: Any, size_bytes: int, protocol: str) -> None:
        """Send a routing-protocol message to a directly connected neighbor."""
        send = self._tx.get(neighbor)
        if send is None:
            raise ValueError(f"node {self.id}: {neighbor} is not a neighbor")
        packet = Packet(
            src=self.id,
            dst=neighbor,
            kind="control",
            ttl=1,
            size_bytes=size_bytes,
            flow_id=-1,
            payload=payload,
            protocol=protocol,
            send_time=self.sim.now,
        )
        send(packet)

    def on_link_down(self, neighbor: int) -> None:
        """Failure detection fired for the link to ``neighbor``."""
        if self.protocol is not None:
            self.route_cause = ("link_down", neighbor)
            try:
                self.protocol.handle_link_down(neighbor)
            finally:
                self.route_cause = None

    def on_link_up(self, neighbor: int) -> None:
        if self.protocol is not None:
            self.route_cause = ("link_up", neighbor)
            try:
                self.protocol.handle_link_up(neighbor)
            finally:
                self.route_cause = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.id} nbrs={self.neighbors()}>"
