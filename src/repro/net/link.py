"""Point-to-point duplex link.

A :class:`Link` is two independent directed channels, each with its own
drop-tail output queue and store-and-forward serialization: a packet waits
for the transmitter to go idle, occupies it for ``size/bandwidth`` seconds,
then propagates for ``delay`` seconds before arriving at the far node.

Failure semantics (single-failure model of the paper): when the link fails,
every queued and in-flight packet is dropped with cause ``LINK_DOWN``, and
any later transmit attempt is dropped the same way until the link is
restored.  Failure *detection* is separate — the endpoints learn about the
failure only after the injector's detection delay (see
:mod:`repro.net.dynamics`).

Hot-path notes: serialization and propagation events are scheduled through
``Simulator.schedule_call`` (no per-packet lambda allocation), the per-link
bandwidth/propagation figures are cached on the channel, and in-flight
packets are tracked in a dict keyed by packet identity for O(1) arrival.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..sim.engine import EventHandle, Simulator
from ..sim.tracing import DropCause
from ..sim.units import BITS_PER_BYTE
from ..topology.graph import LinkSpec
from .packet import Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["Link", "DEFAULT_QUEUE_CAPACITY"]

#: Per-channel output queue size in packets (see DESIGN.md reconstruction).
DEFAULT_QUEUE_CAPACITY = 20

#: Called as dropper(packet, node_id, cause) when a channel kills a packet.
Dropper = Callable[[Packet, int, DropCause], None]


class _Channel:
    """One direction of a link."""

    __slots__ = (
        "_sim",
        "_link",
        "src",
        "dst",
        "queue",
        "control_queue",
        "_busy",
        "_serializing",
        "_in_flight",
        "_bandwidth",
        "_prop_delay",
        "transmitted",
        "arrival_gate",
    )

    def __init__(self, sim: Simulator, link: "Link", src: int, dst: int) -> None:
        self._sim = sim
        self._link = link
        self.src = src
        self.dst = dst
        self.queue = DropTailQueue(link.queue_capacity)
        # Separate strict-priority queue for routing messages when the link
        # is configured to protect its control plane from data congestion.
        self.control_queue = (
            DropTailQueue(link.queue_capacity) if link.priority_control else None
        )
        self._busy = False
        self._serializing: Optional[Packet] = None
        self._in_flight: dict[int, tuple[EventHandle, Packet]] = {}
        self._bandwidth = link.spec.bandwidth
        self._prop_delay = link.spec.delay
        self.transmitted = 0
        #: Optional arrival interceptor, called as ``gate(channel, packet)``
        #: instead of delivering.  Installed by repro.dist on channels into
        #: cut-adjacent nodes so same-instant arrivals can be sequenced; the
        #: gate finishes the delivery via :meth:`deliver_now`.
        self.arrival_gate: Optional[Callable[["_Channel", Packet], None]] = None

    def send(self, packet: Packet) -> None:
        if not self._link.up:
            self._link._drop(packet, self.src, DropCause.LINK_DOWN)
            return
        queue = (
            self.control_queue
            if self.control_queue is not None and packet.is_control
            else self.queue
        )
        if not queue.push(packet):
            self._link._drop(packet, self.src, DropCause.QUEUE_OVERFLOW)
            return
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        packet = None
        if self.control_queue is not None:
            packet = self.control_queue.pop()
        if packet is None:
            packet = self.queue.pop()
        if packet is None:
            self._busy = False
            self._serializing = None
            return
        self._busy = True
        self._serializing = packet
        tx = (packet.size_bytes * BITS_PER_BYTE) / self._bandwidth
        self._sim.schedule_call(tx, self._serialized, packet)

    def _serialized(self, packet: Packet) -> None:
        # Serialization finished; packet enters propagation.  The transmitter
        # is free to start the next packet.
        self._serializing = None
        if not self._link.up:
            self._link._drop(packet, self.src, DropCause.LINK_DOWN)
            self._busy = False
            return
        handle = self._sim.schedule_call(self._prop_delay, self._arrive, packet)
        self._in_flight[id(packet)] = (handle, packet)
        self.transmitted += 1
        self._start_next()

    def _arrive(self, packet: Packet) -> None:
        del self._in_flight[id(packet)]
        gate = self.arrival_gate
        if gate is not None:
            gate(self, packet)
            return
        self._link._deliver(self.dst, packet, self.src)

    def deliver_now(self, packet: Packet) -> None:
        """Finish an arrival whose propagation event already fired (or was
        cancelled by a sequencer that is replaying the slot in order)."""
        self._link._deliver(self.dst, packet, self.src)

    def occupancy(self, data_only: bool = False) -> int:
        """Packets currently held by this channel: queued, serializing, or
        propagating.  With ``data_only`` control messages are excluded.
        Used by the packet-conservation invariant monitor."""
        packets = list(self.queue)
        if self.control_queue is not None:
            packets.extend(self.control_queue)
        if self._serializing is not None:
            packets.append(self._serializing)
        packets.extend(p for _, p in self._in_flight.values())
        if data_only:
            return sum(1 for p in packets if p.is_data)
        return len(packets)

    def flush_on_failure(self) -> None:
        """Drop everything queued or propagating (link just failed)."""
        for handle, packet in self._in_flight.values():
            handle.cancel()
            self._link._drop(packet, self.src, DropCause.LINK_DOWN)
        self._in_flight.clear()
        for packet in self.queue.drain():
            self._link._drop(packet, self.src, DropCause.LINK_DOWN)
        if self.control_queue is not None:
            for packet in self.control_queue.drain():
                self._link._drop(packet, self.src, DropCause.LINK_DOWN)
        self._busy = False


class Link:
    """Duplex link between two live nodes."""

    __slots__ = (
        "_sim",
        "spec",
        "queue_capacity",
        "priority_control",
        "up",
        "_deliver_cb",
        "_dropper",
        "_channels",
        "failed_at",
        "fail_listeners",
        "message_tap",
        "reliable_gate",
    )

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        deliver: Callable[[int, Packet, int], None],
        dropper: Dropper,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        priority_control: bool = False,
    ) -> None:
        self._sim = sim
        self.spec = spec
        self.queue_capacity = queue_capacity
        self.priority_control = priority_control
        self.up = True
        self._deliver_cb = deliver
        self._dropper = dropper
        a, b = spec.endpoints
        self._channels = {a: _Channel(sim, self, a, b), b: _Channel(sim, self, b, a)}
        self.failed_at: Optional[float] = None
        #: Called (with no arguments) the instant the link fails; used by
        #: reliable channels to flush their in-flight messages.
        self.fail_listeners: list[Callable[[], None]] = []
        #: Optional hook called as ``tap(src, dst, payload, arrive_at,
        #: tx_start)`` when a reliable channel on this link accepts a message.
        #: Installed by repro.dist on cut links to relay messages to the far
        #: shard.
        self.message_tap: Optional[
            Callable[[int, int, object, float, float], None]
        ] = None
        #: Optional arrival interceptor inherited by every ReliableChannel
        #: opened over this link, called as ``gate(channel, entry)``.
        #: Installed by repro.dist on links into cut-adjacent nodes (at link
        #: creation, so sessions opened at any later point inherit it too).
        self.reliable_gate = None

    @property
    def endpoints(self) -> tuple[int, int]:
        return self.spec.endpoints

    def other_end(self, node: int) -> int:
        a, b = self.endpoints
        if node == a:
            return b
        if node == b:
            return a
        raise ValueError(f"node {node} is not an endpoint of link {self.endpoints}")

    def sender_from(self, node: int) -> Callable[[Packet], None]:
        """Bound ``channel.send`` for the direction leaving ``node``.

        Nodes cache this in their per-neighbor dispatch table so the per-packet
        transmit path is one dict lookup + one call, with no Link indirection.
        """
        channel = self._channels.get(node)
        if channel is None:
            raise ValueError(
                f"node {node} is not an endpoint of link {self.endpoints}"
            )
        return channel.send

    def transmit(self, from_node: int, packet: Packet) -> None:
        """Send ``packet`` from ``from_node`` toward the other endpoint."""
        channel = self._channels.get(from_node)
        if channel is None:
            raise ValueError(
                f"node {from_node} is not an endpoint of link {self.endpoints}"
            )
        channel.send(packet)

    def fail(self) -> None:
        """Take the link down, killing all queued and in-flight packets."""
        if not self.up:
            return
        self.up = False
        self.failed_at = self._sim.now
        for channel in self._channels.values():
            channel.flush_on_failure()
        for listener in self.fail_listeners:
            listener()

    def restore(self) -> None:
        """Bring the link back up (used by repair experiments, not the paper's)."""
        self.up = True
        self.failed_at = None

    def queue_length(self, from_node: int) -> int:
        return len(self._channels[from_node].queue)

    def queue_depth_hwm(self) -> int:
        """Deepest any of this link's output queues has ever been (packets),
        control-priority queues included.  Harvested by repro.obs."""
        hwm = 0
        for channel in self._channels.values():
            if channel.queue.depth_hwm > hwm:
                hwm = channel.queue.depth_hwm
            if (
                channel.control_queue is not None
                and channel.control_queue.depth_hwm > hwm
            ):
                hwm = channel.control_queue.depth_hwm
        return hwm

    def occupancy(self, data_only: bool = False) -> int:
        """Packets currently inside the link (both directions): queued,
        serializing, or in flight."""
        return sum(c.occupancy(data_only=data_only) for c in self._channels.values())

    @property
    def packets_transmitted(self) -> int:
        return sum(c.transmitted for c in self._channels.values())

    def _deliver(self, dst: int, packet: Packet, src: int) -> None:
        self._deliver_cb(dst, packet, src)

    def _drop(self, packet: Packet, node: int, cause: DropCause) -> None:
        self._dropper(packet, node, cause)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"<Link {self.endpoints} {state}>"
