"""Packet-level network substrate: packets, queues, links, nodes, dynamics."""

from .channels import ReliableChannel
from .dynamics import (
    DEFAULT_DETECTION_DELAY,
    LinkEvent,
    LinkScheduler,
    ScriptedDriver,
    SingleLinkFailureDriver,
    TopologyDriver,
)
from .link import DEFAULT_QUEUE_CAPACITY, Link
from .network import Network
from .node import Node
from .packet import (
    CONTROL_HEADER_BYTES,
    DATA_PACKET_BYTES,
    DEFAULT_TTL,
    Packet,
    reset_packet_ids,
)
from .queues import DropTailQueue

__all__ = [
    "Packet",
    "reset_packet_ids",
    "DEFAULT_TTL",
    "DATA_PACKET_BYTES",
    "CONTROL_HEADER_BYTES",
    "DropTailQueue",
    "Link",
    "DEFAULT_QUEUE_CAPACITY",
    "Node",
    "Network",
    "LinkScheduler",
    "LinkEvent",
    "TopologyDriver",
    "SingleLinkFailureDriver",
    "ScriptedDriver",
    "DEFAULT_DETECTION_DELAY",
    "ReliableChannel",
]
