"""Reliable in-order neighbor channel (the TCP abstraction under BGP).

BGP in the paper runs over TCP, so routing updates between neighbors are
never lost or reordered while the link is up, and no periodic refresh is
needed.  :class:`ReliableChannel` models exactly that contract:

* messages are delivered in send order;
* each message occupies the sender for ``size/bandwidth`` seconds (FIFO
  serialization) and then propagates for the link delay;
* messages still in flight when the link fails are destroyed (the TCP session
  dies with the link), and the channel refuses sends while the link is down.

Unlike data packets, reliable messages do not contend with the drop-tail
queue — TCP's retransmission would win eventually anyway, and the paper's
control plane is loss-free.  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim.engine import EventHandle, Simulator
from ..sim.units import transmission_delay
from .link import Link

__all__ = ["ReliableChannel"]


class ReliableChannel:
    """One direction of a reliable neighbor session."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        src: int,
        deliver: Callable[[Any], None],
    ) -> None:
        self._sim = sim
        self._link = link
        self.src = src
        self.dst = link.other_end(src)
        self._deliver = deliver
        self._busy_until = 0.0
        self._in_flight: list[EventHandle] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0
        link.fail_listeners.append(self._on_link_fail)

    @property
    def connected(self) -> bool:
        return self._link.up

    def send(self, payload: Any, size_bytes: int) -> bool:
        """Queue ``payload`` for in-order delivery; False if the session is down."""
        if not self._link.up:
            return False
        now = self._sim.now
        start = max(now, self._busy_until)
        tx = transmission_delay(size_bytes, self._link.spec.bandwidth)
        self._busy_until = start + tx
        arrive_at = self._busy_until + self._link.spec.delay
        handle = self._sim.schedule_at(arrive_at, lambda: self._arrive(payload))
        self._in_flight.append(handle)
        self.messages_sent += 1
        return True

    def _arrive(self, payload: Any) -> None:
        self._in_flight = [h for h in self._in_flight if h.pending]
        if not self._link.up:
            self.messages_lost += 1
            return
        self.messages_delivered += 1
        self._deliver(payload)

    def _on_link_fail(self) -> None:
        for handle in self._in_flight:
            if handle.pending:
                handle.cancel()
                self.messages_lost += 1
        self._in_flight.clear()
        self._busy_until = self._sim.now
