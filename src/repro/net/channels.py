"""Reliable in-order neighbor channel (the TCP abstraction under BGP).

BGP in the paper runs over TCP, so routing updates between neighbors are
never lost or reordered while the link is up, and no periodic refresh is
needed.  :class:`ReliableChannel` models exactly that contract:

* messages are delivered in send order;
* each message occupies the sender for ``size/bandwidth`` seconds (FIFO
  serialization) and then propagates for the link delay;
* messages still in flight when the link fails are destroyed (the TCP session
  dies with the link), and the channel refuses sends while the link is down.

Unlike data packets, reliable messages do not contend with the drop-tail
queue — TCP's retransmission would win eventually anyway, and the paper's
control plane is loss-free.  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim.engine import EventHandle, Simulator
from ..sim.units import transmission_delay
from .link import Link

__all__ = ["ReliableChannel"]


class _Pending:
    """One in-flight reliable message.

    Besides the cancelable event handle, the entry keeps the payload and the
    serialization start time: the sharded delivery sequencer (repro.dist)
    needs both to replay same-instant arrivals in canonical order.
    """

    __slots__ = ("handle", "payload", "tx_start")

    def __init__(self, handle: EventHandle, payload: Any, tx_start: float) -> None:
        self.handle = handle
        self.payload = payload
        self.tx_start = tx_start


class ReliableChannel:
    """One direction of a reliable neighbor session."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        src: int,
        deliver: Callable[[Any], None],
    ) -> None:
        self._sim = sim
        self._link = link
        self.src = src
        self.dst = link.other_end(src)
        self._deliver = deliver
        self._busy_until = 0.0
        self._in_flight: list[_Pending] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0
        #: Arrival interceptor, called as ``gate(channel, entry)`` instead of
        #: delivering; inherited from the link so sessions opened at any time
        #: get it (see Link.reliable_gate).
        self.arrival_gate = link.reliable_gate
        link.fail_listeners.append(self._on_link_fail)

    @property
    def connected(self) -> bool:
        return self._link.up

    def send(self, payload: Any, size_bytes: int) -> bool:
        """Queue ``payload`` for in-order delivery; False if the session is down."""
        if not self._link.up:
            return False
        now = self._sim.now
        start = max(now, self._busy_until)
        tx = transmission_delay(size_bytes, self._link.spec.bandwidth)
        self._busy_until = start + tx
        arrive_at = self._busy_until + self._link.spec.delay
        entry = _Pending(None, payload, start)  # type: ignore[arg-type]
        entry.handle = self._sim.schedule_at(
            arrive_at, lambda: self._arrive(entry)
        )
        self._in_flight.append(entry)
        self.messages_sent += 1
        tap = self._link.message_tap
        if tap is not None:
            tap(self.src, self.dst, payload, arrive_at, start)
        return True

    def _arrive(self, entry: _Pending) -> None:
        self._in_flight = [e for e in self._in_flight if e.handle.pending]
        if not self._link.up:
            self.messages_lost += 1
            return
        gate = self.arrival_gate
        if gate is not None:
            gate(self, entry)
            return
        self.deliver_now(entry.payload)

    def deliver_now(self, payload: Any) -> None:
        """Finish an arrival whose event already fired (or was cancelled by
        a sequencer replaying the slot in canonical order)."""
        self.messages_delivered += 1
        self._deliver(payload)

    def _on_link_fail(self) -> None:
        for entry in self._in_flight:
            if entry.handle.pending:
                entry.handle.cancel()
                self.messages_lost += 1
        self._in_flight.clear()
        self._busy_until = self._sim.now
