"""Drop-tail FIFO output queue.

Each directed link channel owns one.  Capacity counts packets (the paper's
simulator used a 20-packet queue per node); arrivals beyond capacity are
rejected and accounted as ``QUEUE_OVERFLOW`` drops by the caller.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .packet import Packet

__all__ = ["DropTailQueue"]


class DropTailQueue:
    """Bounded FIFO of packets."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque[Packet] = deque()
        self.enqueued = 0
        self.dropped = 0
        #: Packets removed by :meth:`drain` (link failure) rather than popped
        #: for transmission.  Every drained packet must be re-accounted by the
        #: caller as a LINK_DOWN drop — ``enqueued == popped + drained + len``
        #: is the queue's conservation identity.
        self.drained = 0
        #: Deepest the queue has ever been (packets); an always-on integer,
        #: harvested by the observability layer (repro.obs) after the run.
        self.depth_hwm = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        """Iterate queued packets head-first without consuming them."""
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, packet: Packet) -> bool:
        """Append if there is room; returns False (and counts a drop) if full."""
        if self.full:
            self.dropped += 1
            return False
        self._items.append(packet)
        self.enqueued += 1
        if len(self._items) > self.depth_hwm:
            self.depth_hwm = len(self._items)
        return True

    def pop(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def drain(self) -> list[Packet]:
        """Remove and return all queued packets (used on link failure).

        Drained packets leave the queue without being transmitted; the caller
        owns their fate and must account for each one (the link-failure path
        records them as LINK_DOWN drops — see ``_Channel.flush_on_failure``).
        ``drained`` counts them so the conservation identity stays checkable.
        """
        items = list(self._items)
        self._items.clear()
        self.drained += len(items)
        return items
