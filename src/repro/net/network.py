"""Network: live instantiation of a topology.

Builds one :class:`~repro.net.node.Node` per topology node and one
:class:`~repro.net.link.Link` per topology link, wires delivery/drop
callbacks, and offers the lookups the routing, traffic and failure layers
need.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from ..sim.engine import Simulator
from ..sim.tracing import DropCause, TraceBus
from ..topology.graph import Topology
from .link import DEFAULT_QUEUE_CAPACITY, Link
from .node import Node
from .packet import Packet

__all__ = ["Network"]


class Network:
    """All live nodes and links for one simulation run."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        bus: Optional[TraceBus] = None,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        record_paths: bool = False,
        record_forwards: bool = False,
        priority_control: bool = False,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.bus = bus if bus is not None else TraceBus()
        self.nodes: dict[int, Node] = {}
        self.links: dict[tuple[int, int], Link] = {}

        for node_id in sorted(topology.nodes):
            self.nodes[node_id] = Node(
                sim,
                node_id,
                self.bus,
                record_paths=record_paths,
                record_forwards=record_forwards,
            )
        for key, spec in sorted(topology.links.items()):
            link = Link(
                sim,
                spec,
                deliver=self._deliver,
                dropper=self._drop,
                queue_capacity=queue_capacity,
                priority_control=priority_control,
            )
            self.links[key] = link
            a, b = key
            self.nodes[a].add_link(b, link)
            self.nodes[b].add_link(a, link)

    # ----------------------------------------------------------------- lookup

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def link(self, a: int, b: int) -> Link:
        return self.links[(min(a, b), max(a, b))]

    def iter_nodes(self) -> Iterator[Node]:
        for node_id in sorted(self.nodes):
            yield self.nodes[node_id]

    def iter_links(self) -> Iterator[Link]:
        for key in sorted(self.links):
            yield self.links[key]

    # ----------------------------------------------------------------- wiring

    def attach_protocols(self, factory: Callable[[Node], object]) -> None:
        """Create one routing protocol per node via ``factory(node)``.

        The factory must return an object implementing the
        :class:`repro.routing.base.RoutingProtocol` interface; it is attached
        to the node automatically if the factory did not already do so.
        """
        for node in self.iter_nodes():
            protocol = factory(node)
            if node.protocol is None:
                node.attach_protocol(protocol)  # type: ignore[arg-type]

    def start_protocols(self) -> None:
        """Invoke ``start()`` on every attached protocol."""
        for node in self.iter_nodes():
            if node.protocol is not None:
                node.protocol.start()

    # --------------------------------------------------------------- counters

    def total_drops(self, cause: DropCause) -> int:
        """Sum of data-packet drops of ``cause`` across all nodes and links."""
        return sum(node.drops[cause] for node in self.nodes.values())

    def total_delivered(self) -> int:
        return sum(node.delivered for node in self.nodes.values())

    def total_originated(self) -> int:
        return sum(node.originated for node in self.nodes.values())

    # -------------------------------------------------------------- callbacks

    def _deliver(self, dst: int, packet: Packet, src: int) -> None:
        self.nodes[dst].receive(packet, src)

    def _drop(self, packet: Packet, node_id: int, cause: DropCause) -> None:
        self.nodes[node_id].drop(packet, cause)
