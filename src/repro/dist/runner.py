"""Sharded scenario coordinator: conservative time-window barriers.

The coordinator advances all shards in lockstep windows.  Each round it
asks every shard for its next event time and computes the safe horizon

    H = E_min + W

where ``E_min`` is the earliest pending event anywhere and ``W`` the
partition lookahead (minimum propagation delay over cut links).
Conservative safety: any packet departing in the window departs at
``>= E_min``, so it arrives at ``>= E_min + W = H`` — *possibly exactly*
at ``H``, which is why the horizon is exclusive: every shard runs events
strictly below ``H`` (capped inclusively at ``end_at``), then the captured
cross-shard relays — all arriving at ``>= H``, i.e. in future windows —
are injected before the clock moves on.  Same-instant ordering at the
arrival node is then the worker's delivery sequencer's job (see
docs/distributed.md).

Two exchanges drive the same :class:`~repro.dist.worker.ShardHost` logic:

* :class:`LocalExchange` — all shards in-process.  The default: sweep
  workers are daemonic and cannot fork grandchildren, and it makes the
  byte-identity differential tests cheap.
* :class:`ProcessExchange` — one forked worker process per shard, relays
  over pipes.  A shard that stalls (hang, crash) is detected by a pipe
  timeout, all workers are torn down, and :class:`ShardStallError` reports
  the stalled window's virtual time — the barrier never deadlocks the
  surviving shards.
"""

from __future__ import annotations

import math
import multiprocessing
import time as _wallclock
import traceback
from dataclasses import dataclass
from typing import Optional, Union

from ..experiments.config import ExperimentConfig
from ..obs.registry import MetricsRegistry
from ..net.dynamics import LinkEvent, SingleLinkFailureDriver
from ..net.packet import reset_packet_ids
from ..sim.rng import RngStreams
from ..topology.generators import attach_host
from ..topology.graph import Topology
from ..topology.mesh import regular_mesh
from .partition import Partition, partition_topology
from .proxy import Relay, ShardHeartbeat
from .worker import ShardHost, ShardOutput, ShardPlan, maybe_fault

__all__ = [
    "ShardScenarioSpec",
    "ShardStallError",
    "LocalExchange",
    "ProcessExchange",
    "run_sharded",
    "run_scenario_sharded",
]


class ShardStallError(RuntimeError):
    """A worker shard hung or died; the run was torn down, not deadlocked.

    Beyond the stalled window's virtual time, the error carries everything
    the coordinator knew when it gave up: each shard's last *completed*
    window, whether each worker pipe was still open, and the last
    :class:`~repro.dist.proxy.ShardHeartbeat` received per shard — so a
    stall names which shard stopped advancing and at what event count, not
    just the barrier timestamp.
    """

    def __init__(
        self,
        shard_index: int,
        window_time: float,
        reason: str,
        last_windows: Optional[dict] = None,
        pipes_open: Optional[dict] = None,
        heartbeats: Optional[dict] = None,
    ) -> None:
        self.shard_index = shard_index
        self.window_time = window_time
        self.reason = reason
        #: shard -> last barrier that shard completed (None before any).
        self.last_windows = dict(last_windows or {})
        #: shard -> whether its pipe/process was still open at detection.
        self.pipes_open = dict(pipes_open or {})
        #: shard -> last ShardHeartbeat received (None before any).
        self.heartbeats = dict(heartbeats or {})
        message = (
            f"shard {shard_index} stalled at window t={window_time:.3f}: {reason}"
        )
        beat = self.heartbeats.get(shard_index)
        if beat is not None:
            message += (
                f"; last heartbeat: clock={beat.clock:.3f}s "
                f"events={beat.events} relays_out={beat.relays_out} "
                f"after window t={beat.barrier:.3f}"
            )
        if self.last_windows:
            parts = []
            for shard in sorted(self.last_windows):
                last = self.last_windows[shard]
                done = "none" if last is None else f"t={last:.3f}"
                pipe = "open" if self.pipes_open.get(shard) else "closed"
                parts.append(f"shard {shard}: last window {done}, pipe {pipe}")
            message += " [" + "; ".join(parts) + "]"
        super().__init__(message)


@dataclass(frozen=True)
class ShardScenarioSpec:
    """A fully laid-out scenario ready to shard (topology and flow fixed).

    ``run_scenario_sharded`` builds one that replicates ``run_scenario``'s
    mesh layout; scale tests build their own over generated topologies.
    """

    protocol: str
    degree: int
    seed: int
    config: ExperimentConfig
    topology: Topology
    sender: int
    receiver: int
    pre_path: tuple[int, ...]
    expected_final: Optional[tuple[int, ...]]
    events: tuple[LinkEvent, ...]
    #: Restrict warm start to these destinations (BGP family only) so
    #: 10k-node topologies skip the all-pairs warm start.
    warm_dests: Optional[tuple[int, ...]] = None


# --------------------------------------------------------------------------
# exchanges


class LocalExchange:
    """All shards in this process; the pipe protocol without the pipes."""

    def __init__(self, plans: list[ShardPlan]) -> None:
        self.hosts = [ShardHost(plan) for plan in plans]

    def peek_times(self) -> list[Optional[float]]:
        return [host.peek_time() for host in self.hosts]

    def run_until(self, barrier: float) -> tuple[list[Relay], list[ShardHeartbeat]]:
        relays: list[Relay] = []
        beats: list[ShardHeartbeat] = []
        for host in self.hosts:
            out, beat = host.run_until(barrier)
            relays.extend(out)
            beats.append(beat)
        return relays, beats

    def inject(self, per_shard: dict[int, list[Relay]]) -> None:
        for shard in sorted(per_shard):
            self.hosts[shard].inject(per_shard[shard])

    def finalize(self) -> list[ShardOutput]:
        return [host.finalize() for host in self.hosts]

    def close(self) -> None:
        pass


def _worker_main(plan: ShardPlan, conn) -> None:
    """Process-worker command loop (one end of a duplex pipe)."""
    try:
        # Fork inherits the parent's packet-id counters mid-count; shard
        # construction must start from the same state a fresh run would.
        reset_packet_ids()
        host = ShardHost(plan)
        conn.send(("ok", None))
    except Exception:
        conn.send(("err", traceback.format_exc()))
        return
    while True:
        command = conn.recv()
        op = command[0]
        try:
            if op == "peek":
                conn.send(("ok", host.peek_time()))
            elif op == "run":
                maybe_fault(plan.shard_index, command[1])
                conn.send(("ok", host.run_until(command[1])))
            elif op == "inject":
                host.inject(command[1])
                conn.send(("ok", None))
            elif op == "finalize":
                conn.send(("ok", host.finalize()))
            elif op == "close":
                conn.close()
                return
            else:
                conn.send(("err", f"unknown command {op!r}"))
        except Exception:
            conn.send(("err", traceback.format_exc()))


class ProcessExchange:
    """One forked worker process per shard, commands and relays over pipes."""

    def __init__(self, plans: list[ShardPlan], timeout: float = 60.0) -> None:
        self._timeout = timeout
        ctx = multiprocessing.get_context("fork")
        self._procs = []
        self._conns = []
        # Stall forensics, updated as responses arrive: last barrier each
        # shard completed and its last heartbeat.  Attached to
        # ShardStallError so a stall names which shard stopped advancing.
        self._last_windows: dict[int, Optional[float]] = {
            index: None for index in range(len(plans))
        }
        self._heartbeats: dict[int, Optional[ShardHeartbeat]] = {
            index: None for index in range(len(plans))
        }
        for plan in plans:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(plan, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        for index in range(len(plans)):
            self._recv(index, window=0.0)

    def _pipes_open(self) -> dict[int, bool]:
        return {
            index: proc.is_alive() and not conn.closed
            for index, (proc, conn) in enumerate(zip(self._procs, self._conns))
        }

    def _stall(self, index: int, window: float, reason: str) -> ShardStallError:
        # Capture pipe state BEFORE teardown terminates every worker.
        error = ShardStallError(
            index,
            window,
            reason,
            last_windows=self._last_windows,
            pipes_open=self._pipes_open(),
            heartbeats=self._heartbeats,
        )
        self._teardown()
        return error

    def _recv(self, index: int, window: float):
        conn = self._conns[index]
        if not conn.poll(self._timeout):
            raise self._stall(
                index, window, f"no response within {self._timeout:.0f}s"
            )
        try:
            status, value = conn.recv()
        except EOFError:
            raise self._stall(index, window, "worker process died") from None
        if status != "ok":
            self._teardown()
            raise RuntimeError(f"shard {index} worker failed:\n{value}")
        return value

    def _broadcast(self, command: tuple, window: float) -> list:
        for conn in self._conns:
            conn.send(command)
        return [self._recv(index, window) for index in range(len(self._conns))]

    def peek_times(self) -> list[Optional[float]]:
        return self._broadcast(("peek",), window=0.0)

    def run_until(self, barrier: float) -> tuple[list[Relay], list[ShardHeartbeat]]:
        relays: list[Relay] = []
        beats: list[ShardHeartbeat] = []
        for conn in self._conns:
            conn.send(("run", barrier))
        for index in range(len(self._conns)):
            batch, beat = self._recv(index, window=barrier)
            relays.extend(batch)
            beats.append(beat)
            self._last_windows[index] = barrier
            self._heartbeats[index] = beat
        return relays, beats

    def inject(self, per_shard: dict[int, list[Relay]]) -> None:
        for shard in sorted(per_shard):
            self._conns[shard].send(("inject", per_shard[shard]))
        for shard in sorted(per_shard):
            self._recv(shard, window=0.0)

    def finalize(self) -> list[ShardOutput]:
        return self._broadcast(("finalize",), window=0.0)

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.close()
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()

    def _teardown(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()


# --------------------------------------------------------------------------
# coordinator


def _relay_sort_key(relay: Relay) -> tuple:
    return (relay.arrive_at, relay.link, relay.src, relay.seq)


#: Bucket edges for per-window engine-event bursts (events between barriers).
_WINDOW_EVENT_BUCKETS = (1.0, 10.0, 100.0, 1000.0, 10000.0)


def _fold_heartbeat(
    registry: MetricsRegistry, beat: ShardHeartbeat, prev: Optional[ShardHeartbeat]
) -> None:
    """Fold one heartbeat's deltas into that shard's registry.

    Heartbeat fields are cumulative, so each window contributes its delta
    against the previous beat — which makes merging per-shard registries
    agree with an unsharded aggregate (see ``MetricsRegistry.merge``).
    """
    delta_events = beat.events - (prev.events if prev is not None else 0)
    registry.counter("shard.windows").inc()
    registry.counter("shard.events").inc(delta_events)
    registry.counter("shard.relays_out").inc(
        beat.relays_out - (prev.relays_out if prev is not None else 0)
    )
    registry.counter("shard.relays_in").inc(
        beat.relays_in - (prev.relays_in if prev is not None else 0)
    )
    registry.gauge("shard.clock").set(beat.clock)
    registry.gauge("shard.busy_s").set(beat.busy_s)
    registry.gauge("shard.wall_s").set(beat.wall_s)
    registry.histogram("shard.window_events", _WINDOW_EVENT_BUCKETS).observe(
        delta_events
    )


def run_sharded(
    spec: ShardScenarioSpec,
    exchange: str = "local",
    barrier_timeout: float = 60.0,
    collect_traces: bool = False,
    validate: Optional[bool] = None,
    live_log: Union[None, str, "object"] = None,
    heartbeat_interval: float = 1.0,
    registries: Optional[dict[int, MetricsRegistry]] = None,
):
    """Run ``spec`` partitioned across ``spec.config.shards`` shards.

    Returns the same :class:`~repro.experiments.scenario.ScenarioResult` a
    single-process ``run_scenario`` would — byte-identical on any topology
    small enough to run both (the differential suite pins this).  When
    ``collect_traces`` is set the per-shard trace streams are attached to
    the result as ``result.traces`` (see :func:`~repro.dist.merge.
    canonical_trace_streams`).

    ``live_log`` (a path or an open :class:`~repro.obs.live.RunEventLog`)
    streams heartbeat/window records as the run executes; emission is
    throttled to one batch per ``heartbeat_interval`` simulated seconds
    (thousands of barrier windows fit in one simulated second), with the
    final per-shard heartbeats and ``shard-end`` totals always written so
    the log replays into exactly the totals the coordinator reports.
    ``registries``, if given, is filled with a per-shard
    :class:`~repro.obs.registry.MetricsRegistry` aggregated from every
    heartbeat (not throttled).  Both are harvested off worker-maintained
    counters between windows — the simulation itself stays byte-identical
    (the transparency tests pin this).
    """
    from ..obs.live import open_live_log  # obs imports net/sim; keep cycle-free
    from .merge import merge_results  # merge imports metrics; keep cycle-free

    config = spec.config
    if config.cold_start:
        raise ValueError("sharded execution requires warm start (cold_start)")
    if config.churn is not None:
        raise ValueError("sharded execution does not support churn configs")
    end_at = config.end_time
    fail_at = config.fail_time
    scheduled = [e for e in spec.events if e.time < end_at]
    detect_times = [
        e.time
        + (
            e.detection_delay
            if e.detection_delay is not None
            else config.detection_delay
        )
        for e in scheduled
    ]
    first_at = scheduled[0].time if scheduled else fail_at
    first_detect = (
        detect_times[0] if detect_times else fail_at + config.detection_delay
    )

    partition = partition_topology(
        spec.topology, config.shards, strategy=config.partition
    )
    if partition.cut_links and partition.lookahead <= 0.0:
        raise ValueError(
            "cannot shard: a cut link has zero propagation delay, so the "
            "conservative lookahead window is empty"
        )
    reset_packet_ids()
    plans = [
        ShardPlan(
            shard_index=index,
            n_shards=config.shards,
            protocol=spec.protocol,
            seed=spec.seed,
            config=config,
            topology=spec.topology,
            assignment=partition.assignment,
            cut_links=partition.cut_links,
            sender=spec.sender,
            receiver=spec.receiver,
            events=tuple(scheduled),
            traffic_start=config.traffic_start,
            window_start=fail_at,
            end_at=end_at,
            warm_dests=spec.warm_dests,
            collect_traces=collect_traces,
        )
        for index in range(config.shards)
    ]
    log, owns_log = open_live_log(
        live_log,
        run="shard",
        meta={
            "protocol": spec.protocol,
            "degree": spec.degree,
            "seed": spec.seed,
            "shards": config.shards,
            "exchange": exchange,
        },
    )
    telemetry = log is not None or registries is not None
    regs = registries if registries is not None else {}
    last_beats: dict[int, ShardHeartbeat] = {}
    pending_windows = 0
    pending_relays = 0
    emit_from = _wallclock.perf_counter()
    next_emit = 0.0
    emit_index = 0

    def note(beats: list[ShardHeartbeat], n_relays: int) -> None:
        nonlocal pending_windows, pending_relays
        if not telemetry:
            return
        pending_windows += 1
        pending_relays += n_relays
        for beat in beats:
            registry = regs.get(beat.shard)
            if registry is None:
                registry = regs[beat.shard] = MetricsRegistry()
            _fold_heartbeat(registry, beat, last_beats.get(beat.shard))
            last_beats[beat.shard] = beat

    def emit(barrier: float, e_min: Optional[float]) -> None:
        """Flush the coalesced window stats + current heartbeats to the log."""
        nonlocal pending_windows, pending_relays, emit_from, next_emit, emit_index
        if log is None or pending_windows == 0:
            return
        now = _wallclock.perf_counter()
        log.window(
            index=emit_index,
            e_min=e_min,
            barrier=barrier,
            n_windows=pending_windows,
            n_relays=pending_relays,
            wall_s=now - emit_from,
        )
        emit_index += 1
        for shard in sorted(last_beats):
            beat = last_beats[shard]
            log.heartbeat(
                shard=beat.shard,
                clock=beat.clock,
                events=beat.events,
                barrier=beat.barrier,
                relays_out=beat.relays_out,
                relays_in=beat.relays_in,
                busy_s=beat.busy_s,
                wall_s=beat.wall_s,
            )
        pending_windows = 0
        pending_relays = 0
        emit_from = now
        next_emit = barrier + heartbeat_interval

    xchg = None
    try:
        if exchange == "process":
            xchg = ProcessExchange(plans, timeout=barrier_timeout)
        elif exchange == "local":
            xchg = LocalExchange(plans)
        else:
            raise ValueError(f"unknown exchange {exchange!r} (local | process)")

        lookahead = partition.lookahead
        while True:
            peeks = [t for t in xchg.peek_times() if t is not None]
            e_min = min(peeks, default=None)
            if e_min is None or e_min > end_at:
                barrier = end_at
            else:
                # The horizon is EXCLUSIVE: an event at e_min can cause a
                # cross-cut arrival at exactly e_min + lookahead, so shards
                # may only execute events strictly below it — otherwise a
                # shard processes its own events at the horizon before the
                # coinciding relay is injected, inverting same-instant
                # order.  nextafter gives the largest representable time
                # below the horizon (run() is inclusive).
                horizon = e_min + lookahead
                barrier = (
                    end_at
                    if horizon > end_at
                    else math.nextafter(horizon, -math.inf)
                )
            relays, beats = xchg.run_until(barrier)
            note(beats, len(relays))
            while relays:
                relays.sort(key=_relay_sort_key)
                per_shard: dict[int, list[Relay]] = {}
                for relay in relays:
                    shard = partition.shard_of(relay.dst)
                    per_shard.setdefault(shard, []).append(relay)
                xchg.inject(per_shard)
                if any(r.arrive_at <= barrier for r in relays):
                    # Mop-up: something landed inside the closed window.
                    # With the exclusive horizon every relay arrives at
                    # >= e_min + lookahead > barrier, so this is a safety
                    # net, not an expected path.
                    relays, beats = xchg.run_until(barrier)
                    note(beats, len(relays))
                else:
                    break
            if barrier >= next_emit:
                emit(barrier, e_min)
            if barrier >= end_at:
                break
        outputs = xchg.finalize()
        if log is not None:
            emit(end_at, None)  # flush a sub-interval tail, if any
            for shard in sorted(last_beats):
                beat = last_beats[shard]
                log.shard_end(
                    shard=shard,
                    events=beat.events,
                    relays_out=beat.relays_out,
                    relays_in=beat.relays_in,
                )
            log.end(ok=True)
    except ShardStallError as stall:
        if log is not None:
            beat = stall.heartbeats.get(stall.shard_index)
            log.stall(
                shard=stall.shard_index,
                window=stall.window_time,
                reason=stall.reason,
                heartbeat=beat.to_dict() if beat is not None else None,
            )
            log.end(ok=False, error=str(stall))
        raise
    finally:
        if xchg is not None:
            xchg.close()
        if owns_log:
            log.close()

    return merge_results(
        spec=spec,
        partition=partition,
        outputs=outputs,
        scheduled=scheduled,
        detect_times=detect_times,
        first_at=first_at,
        first_detect=first_detect,
        validate=config.validate if validate is None else validate,
        collect_traces=collect_traces,
    )


def run_scenario_sharded(
    protocol: str,
    degree: int,
    seed: int,
    config: ExperimentConfig,
    exchange: str = "local",
    barrier_timeout: float = 60.0,
    collect_traces: bool = False,
    validate: Optional[bool] = None,
    live_log: Union[None, str, "object"] = None,
    heartbeat_interval: float = 1.0,
    registries: Optional[dict[int, MetricsRegistry]] = None,
):
    """Sharded twin of ``run_scenario``: identical mesh layout and schedule."""
    rng_streams = RngStreams(seed)
    scenario_rng = rng_streams.stream("scenario")
    # Layout replicates run_scenario exactly; both must draw the same
    # topology, endpoints, and failed link from the scenario stream.
    from ..experiments.scenario import _pick_endpoints, _pick_failed_link

    topo = regular_mesh(config.rows, config.cols, degree)
    sender_router, receiver_router = _pick_endpoints(
        scenario_rng, config.rows, config.cols
    )
    sender = attach_host(topo, sender_router)
    receiver = attach_host(topo, receiver_router)
    pre_path = topo.shortest_path(sender, receiver)
    assert pre_path is not None, "mesh must be connected"
    failed = _pick_failed_link(scenario_rng, pre_path, sender, receiver)
    expected_final = topo.shortest_path(sender, receiver, exclude_link=failed)
    driver = SingleLinkFailureDriver(failed, config.fail_time)
    events = tuple(driver.generate(config.end_time))
    spec = ShardScenarioSpec(
        protocol=protocol,
        degree=degree,
        seed=seed,
        config=config,
        topology=topo,
        sender=sender,
        receiver=receiver,
        pre_path=tuple(pre_path),
        expected_final=tuple(expected_final) if expected_final else None,
        events=events,
    )
    return run_sharded(
        spec,
        exchange=exchange,
        barrier_timeout=barrier_timeout,
        collect_traces=collect_traces,
        validate=validate,
        live_log=live_log,
        heartbeat_interval=heartbeat_interval,
        registries=registries,
    )
