"""Sharded scenario coordinator: conservative time-window barriers.

The coordinator advances all shards in lockstep windows.  Each round it
asks every shard for its next event time and computes the safe horizon

    H = E_min + W

where ``E_min`` is the earliest pending event anywhere and ``W`` the
partition lookahead (minimum propagation delay over cut links).
Conservative safety: any packet departing in the window departs at
``>= E_min``, so it arrives at ``>= E_min + W = H`` — *possibly exactly*
at ``H``, which is why the horizon is exclusive: every shard runs events
strictly below ``H`` (capped inclusively at ``end_at``), then the captured
cross-shard relays — all arriving at ``>= H``, i.e. in future windows —
are injected before the clock moves on.  Same-instant ordering at the
arrival node is then the worker's delivery sequencer's job (see
docs/distributed.md).

Two exchanges drive the same :class:`~repro.dist.worker.ShardHost` logic:

* :class:`LocalExchange` — all shards in-process.  The default: sweep
  workers are daemonic and cannot fork grandchildren, and it makes the
  byte-identity differential tests cheap.
* :class:`ProcessExchange` — one forked worker process per shard, relays
  over pipes.  A shard that stalls (hang, crash) is detected by a pipe
  timeout, all workers are torn down, and :class:`ShardStallError` reports
  the stalled window's virtual time — the barrier never deadlocks the
  surviving shards.
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from dataclasses import dataclass
from typing import Optional

from ..experiments.config import ExperimentConfig
from ..net.dynamics import LinkEvent, SingleLinkFailureDriver
from ..net.packet import reset_packet_ids
from ..sim.rng import RngStreams
from ..topology.generators import attach_host
from ..topology.graph import Topology
from ..topology.mesh import regular_mesh
from .partition import Partition, partition_topology
from .proxy import Relay
from .worker import ShardHost, ShardOutput, ShardPlan, maybe_fault

__all__ = [
    "ShardScenarioSpec",
    "ShardStallError",
    "LocalExchange",
    "ProcessExchange",
    "run_sharded",
    "run_scenario_sharded",
]


class ShardStallError(RuntimeError):
    """A worker shard hung or died; the run was torn down, not deadlocked."""

    def __init__(self, shard_index: int, window_time: float, reason: str) -> None:
        self.shard_index = shard_index
        self.window_time = window_time
        super().__init__(
            f"shard {shard_index} stalled at window t={window_time:.3f}: {reason}"
        )


@dataclass(frozen=True)
class ShardScenarioSpec:
    """A fully laid-out scenario ready to shard (topology and flow fixed).

    ``run_scenario_sharded`` builds one that replicates ``run_scenario``'s
    mesh layout; scale tests build their own over generated topologies.
    """

    protocol: str
    degree: int
    seed: int
    config: ExperimentConfig
    topology: Topology
    sender: int
    receiver: int
    pre_path: tuple[int, ...]
    expected_final: Optional[tuple[int, ...]]
    events: tuple[LinkEvent, ...]
    #: Restrict warm start to these destinations (BGP family only) so
    #: 10k-node topologies skip the all-pairs warm start.
    warm_dests: Optional[tuple[int, ...]] = None


# --------------------------------------------------------------------------
# exchanges


class LocalExchange:
    """All shards in this process; the pipe protocol without the pipes."""

    def __init__(self, plans: list[ShardPlan]) -> None:
        self.hosts = [ShardHost(plan) for plan in plans]

    def peek_times(self) -> list[Optional[float]]:
        return [host.peek_time() for host in self.hosts]

    def run_until(self, barrier: float) -> list[Relay]:
        relays: list[Relay] = []
        for host in self.hosts:
            relays.extend(host.run_until(barrier))
        return relays

    def inject(self, per_shard: dict[int, list[Relay]]) -> None:
        for shard in sorted(per_shard):
            self.hosts[shard].inject(per_shard[shard])

    def finalize(self) -> list[ShardOutput]:
        return [host.finalize() for host in self.hosts]

    def close(self) -> None:
        pass


def _worker_main(plan: ShardPlan, conn) -> None:
    """Process-worker command loop (one end of a duplex pipe)."""
    try:
        # Fork inherits the parent's packet-id counters mid-count; shard
        # construction must start from the same state a fresh run would.
        reset_packet_ids()
        host = ShardHost(plan)
        conn.send(("ok", None))
    except Exception:
        conn.send(("err", traceback.format_exc()))
        return
    while True:
        command = conn.recv()
        op = command[0]
        try:
            if op == "peek":
                conn.send(("ok", host.peek_time()))
            elif op == "run":
                maybe_fault(plan.shard_index, command[1])
                conn.send(("ok", host.run_until(command[1])))
            elif op == "inject":
                host.inject(command[1])
                conn.send(("ok", None))
            elif op == "finalize":
                conn.send(("ok", host.finalize()))
            elif op == "close":
                conn.close()
                return
            else:
                conn.send(("err", f"unknown command {op!r}"))
        except Exception:
            conn.send(("err", traceback.format_exc()))


class ProcessExchange:
    """One forked worker process per shard, commands and relays over pipes."""

    def __init__(self, plans: list[ShardPlan], timeout: float = 60.0) -> None:
        self._timeout = timeout
        ctx = multiprocessing.get_context("fork")
        self._procs = []
        self._conns = []
        for plan in plans:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(plan, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        for index in range(len(plans)):
            self._recv(index, window=0.0)

    def _recv(self, index: int, window: float):
        conn = self._conns[index]
        if not conn.poll(self._timeout):
            self._teardown()
            raise ShardStallError(
                index, window, f"no response within {self._timeout:.0f}s"
            )
        try:
            status, value = conn.recv()
        except EOFError:
            self._teardown()
            raise ShardStallError(index, window, "worker process died") from None
        if status != "ok":
            self._teardown()
            raise RuntimeError(f"shard {index} worker failed:\n{value}")
        return value

    def _broadcast(self, command: tuple, window: float) -> list:
        for conn in self._conns:
            conn.send(command)
        return [self._recv(index, window) for index in range(len(self._conns))]

    def peek_times(self) -> list[Optional[float]]:
        return self._broadcast(("peek",), window=0.0)

    def run_until(self, barrier: float) -> list[Relay]:
        relays: list[Relay] = []
        for batch in self._broadcast(("run", barrier), window=barrier):
            relays.extend(batch)
        return relays

    def inject(self, per_shard: dict[int, list[Relay]]) -> None:
        for shard in sorted(per_shard):
            self._conns[shard].send(("inject", per_shard[shard]))
        for shard in sorted(per_shard):
            self._recv(shard, window=0.0)

    def finalize(self) -> list[ShardOutput]:
        return self._broadcast(("finalize",), window=0.0)

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("close",))
                conn.close()
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()

    def _teardown(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()


# --------------------------------------------------------------------------
# coordinator


def _relay_sort_key(relay: Relay) -> tuple:
    return (relay.arrive_at, relay.link, relay.src, relay.seq)


def run_sharded(
    spec: ShardScenarioSpec,
    exchange: str = "local",
    barrier_timeout: float = 60.0,
    collect_traces: bool = False,
    validate: Optional[bool] = None,
):
    """Run ``spec`` partitioned across ``spec.config.shards`` shards.

    Returns the same :class:`~repro.experiments.scenario.ScenarioResult` a
    single-process ``run_scenario`` would — byte-identical on any topology
    small enough to run both (the differential suite pins this).  When
    ``collect_traces`` is set the per-shard trace streams are attached to
    the result as ``result.traces`` (see :func:`~repro.dist.merge.
    canonical_trace_streams`).
    """
    from .merge import merge_results  # merge imports metrics; keep cycle-free

    config = spec.config
    if config.cold_start:
        raise ValueError("sharded execution requires warm start (cold_start)")
    if config.churn is not None:
        raise ValueError("sharded execution does not support churn configs")
    end_at = config.end_time
    fail_at = config.fail_time
    scheduled = [e for e in spec.events if e.time < end_at]
    detect_times = [
        e.time
        + (
            e.detection_delay
            if e.detection_delay is not None
            else config.detection_delay
        )
        for e in scheduled
    ]
    first_at = scheduled[0].time if scheduled else fail_at
    first_detect = (
        detect_times[0] if detect_times else fail_at + config.detection_delay
    )

    partition = partition_topology(
        spec.topology, config.shards, strategy=config.partition
    )
    if partition.cut_links and partition.lookahead <= 0.0:
        raise ValueError(
            "cannot shard: a cut link has zero propagation delay, so the "
            "conservative lookahead window is empty"
        )
    reset_packet_ids()
    plans = [
        ShardPlan(
            shard_index=index,
            n_shards=config.shards,
            protocol=spec.protocol,
            seed=spec.seed,
            config=config,
            topology=spec.topology,
            assignment=partition.assignment,
            cut_links=partition.cut_links,
            sender=spec.sender,
            receiver=spec.receiver,
            events=tuple(scheduled),
            traffic_start=config.traffic_start,
            window_start=fail_at,
            end_at=end_at,
            warm_dests=spec.warm_dests,
            collect_traces=collect_traces,
        )
        for index in range(config.shards)
    ]
    if exchange == "process":
        xchg = ProcessExchange(plans, timeout=barrier_timeout)
    elif exchange == "local":
        xchg = LocalExchange(plans)
    else:
        raise ValueError(f"unknown exchange {exchange!r} (local | process)")

    try:
        lookahead = partition.lookahead
        while True:
            peeks = [t for t in xchg.peek_times() if t is not None]
            e_min = min(peeks, default=None)
            if e_min is None or e_min > end_at:
                barrier = end_at
            else:
                # The horizon is EXCLUSIVE: an event at e_min can cause a
                # cross-cut arrival at exactly e_min + lookahead, so shards
                # may only execute events strictly below it — otherwise a
                # shard processes its own events at the horizon before the
                # coinciding relay is injected, inverting same-instant
                # order.  nextafter gives the largest representable time
                # below the horizon (run() is inclusive).
                horizon = e_min + lookahead
                barrier = (
                    end_at
                    if horizon > end_at
                    else math.nextafter(horizon, -math.inf)
                )
            relays = xchg.run_until(barrier)
            while relays:
                relays.sort(key=_relay_sort_key)
                per_shard: dict[int, list[Relay]] = {}
                for relay in relays:
                    shard = partition.shard_of(relay.dst)
                    per_shard.setdefault(shard, []).append(relay)
                xchg.inject(per_shard)
                if any(r.arrive_at <= barrier for r in relays):
                    # Mop-up: something landed inside the closed window.
                    # With the exclusive horizon every relay arrives at
                    # >= e_min + lookahead > barrier, so this is a safety
                    # net, not an expected path.
                    relays = xchg.run_until(barrier)
                else:
                    break
            if barrier >= end_at:
                break
        outputs = xchg.finalize()
    finally:
        xchg.close()

    return merge_results(
        spec=spec,
        partition=partition,
        outputs=outputs,
        scheduled=scheduled,
        detect_times=detect_times,
        first_at=first_at,
        first_detect=first_detect,
        validate=config.validate if validate is None else validate,
        collect_traces=collect_traces,
    )


def run_scenario_sharded(
    protocol: str,
    degree: int,
    seed: int,
    config: ExperimentConfig,
    exchange: str = "local",
    barrier_timeout: float = 60.0,
    collect_traces: bool = False,
    validate: Optional[bool] = None,
):
    """Sharded twin of ``run_scenario``: identical mesh layout and schedule."""
    rng_streams = RngStreams(seed)
    scenario_rng = rng_streams.stream("scenario")
    # Layout replicates run_scenario exactly; both must draw the same
    # topology, endpoints, and failed link from the scenario stream.
    from ..experiments.scenario import _pick_endpoints, _pick_failed_link

    topo = regular_mesh(config.rows, config.cols, degree)
    sender_router, receiver_router = _pick_endpoints(
        scenario_rng, config.rows, config.cols
    )
    sender = attach_host(topo, sender_router)
    receiver = attach_host(topo, receiver_router)
    pre_path = topo.shortest_path(sender, receiver)
    assert pre_path is not None, "mesh must be connected"
    failed = _pick_failed_link(scenario_rng, pre_path, sender, receiver)
    expected_final = topo.shortest_path(sender, receiver, exclude_link=failed)
    driver = SingleLinkFailureDriver(failed, config.fail_time)
    events = tuple(driver.generate(config.end_time))
    spec = ShardScenarioSpec(
        protocol=protocol,
        degree=degree,
        seed=seed,
        config=config,
        topology=topo,
        sender=sender,
        receiver=receiver,
        pre_path=tuple(pre_path),
        expected_final=tuple(expected_final) if expected_final else None,
        events=events,
    )
    return run_sharded(
        spec,
        exchange=exchange,
        barrier_timeout=barrier_timeout,
        collect_traces=collect_traces,
        validate=validate,
    )
