"""Topology partitioning for sharded simulation.

The partitioner's contract (pinned by the property tests):

* every node lands in exactly one shard, every shard is non-empty;
* the cut-link set is exactly the links whose endpoints differ in shard,
  in canonical ``(min, max)`` order;
* ``lookahead`` is the minimum propagation delay over cut links — the
  conservative synchronization window (see docs/distributed.md);
* degenerate inputs fail loudly: more shards than nodes or a disconnected
  topology raise, one shard warns and returns the trivial partition.

Strategies (:data:`~repro.experiments.config.PARTITION_STRATEGIES`):

* ``"mincut"`` — deterministic balanced BFS growth from spread seed nodes,
  followed by boundary-refinement passes that move nodes to reduce the cut
  while keeping shard sizes within tolerance.  O(E) per pass, fast enough
  for 10k-node graphs.
* ``"stripe"`` — contiguous blocks of the sorted node list; the dumb
  baseline (useful for forcing a bad cut in tests).
"""

from __future__ import annotations

import math
import warnings
from collections import deque
from dataclasses import dataclass

from ..experiments.config import PARTITION_STRATEGIES
from ..topology.graph import Topology

__all__ = ["Partition", "partition_topology"]

#: Boundary-refinement sweeps for the "mincut" strategy.
_REFINE_PASSES = 4


@dataclass(frozen=True)
class Partition:
    """Assignment of every node to one shard, plus the induced cut."""

    shards: int
    #: node -> shard index.
    assignment: dict[int, int]
    #: Per-shard node sets, indexed by shard.
    parts: tuple[frozenset[int], ...]
    #: Cut links as canonical (min, max) endpoint pairs, sorted.
    cut_links: tuple[tuple[int, int], ...]
    #: Conservative lookahead window: min propagation delay over cut links
    #: (inf when there are no cut links, e.g. the trivial 1-shard partition).
    lookahead: float

    def shard_of(self, node: int) -> int:
        return self.assignment[node]


def partition_topology(
    topo: Topology, shards: int, strategy: str = "mincut"
) -> Partition:
    """Split ``topo`` into ``shards`` parts; see module docstring for the contract."""
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown partition strategy {strategy!r} "
            f"(expected one of {PARTITION_STRATEGIES})"
        )
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > topo.n_nodes:
        raise ValueError(
            f"cannot split {topo.n_nodes} node(s) into {shards} shards"
        )
    if not topo.is_connected():
        raise ValueError(
            f"cannot partition disconnected topology {topo.name!r}: "
            "a shard cut through a disconnected graph has no well-defined "
            "lookahead"
        )
    if shards == 1:
        warnings.warn(
            "partitioning into 1 shard is trivial; a single-process run "
            "avoids the barrier overhead entirely",
            stacklevel=2,
        )
        assignment = {node: 0 for node in sorted(topo.nodes)}
    elif strategy == "stripe":
        assignment = _stripe(topo, shards)
    else:
        assignment = _balanced_bfs(topo, shards)
        _refine(topo, shards, assignment)
    return _finish(topo, shards, assignment)


def _finish(topo: Topology, shards: int, assignment: dict[int, int]) -> Partition:
    parts: list[set[int]] = [set() for _ in range(shards)]
    for node, shard in assignment.items():
        parts[shard].add(node)
    for index, part in enumerate(parts):
        if not part:
            raise ValueError(f"partition left shard {index} empty")
    cut = sorted(
        key for key in topo.links if assignment[key[0]] != assignment[key[1]]
    )
    lookahead = min(
        (topo.links[key].delay for key in cut), default=math.inf
    )
    return Partition(
        shards=shards,
        assignment=dict(sorted(assignment.items())),
        parts=tuple(frozenset(p) for p in parts),
        cut_links=tuple(cut),
        lookahead=lookahead,
    )


def _stripe(topo: Topology, shards: int) -> dict[int, int]:
    nodes = sorted(topo.nodes)
    base, extra = divmod(len(nodes), shards)
    assignment: dict[int, int] = {}
    index = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        for node in nodes[index : index + size]:
            assignment[node] = shard
        index += size
    return assignment


def _spread_seeds(topo: Topology, shards: int) -> list[int]:
    """Deterministic far-apart seed nodes: lowest id, then repeatedly the
    node maximizing hop distance to the chosen set (lowest id on ties)."""
    seeds = [min(topo.nodes)]
    dist = _bfs_distances(topo, seeds[0])
    while len(seeds) < shards:
        best = max(sorted(dist), key=lambda n: dist[n])
        seeds.append(best)
        for node, d in _bfs_distances(topo, best).items():
            if d < dist[node]:
                dist[node] = d
    return seeds


def _bfs_distances(topo: Topology, start: int) -> dict[int, int]:
    dist = {start: 0}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for nbr in topo.neighbors(node):
            if nbr not in dist:
                dist[nbr] = dist[node] + 1
                queue.append(nbr)
    return dist


def _balanced_bfs(topo: Topology, shards: int) -> dict[int, int]:
    """Grow all shards breadth-first from spread seeds, round-robin, so the
    parts come out contiguous and within one node of balanced."""
    seeds = _spread_seeds(topo, shards)
    assignment: dict[int, int] = {}
    frontiers: list[deque[int]] = [deque([seed]) for seed in seeds]
    unassigned = set(topo.nodes)
    while unassigned:
        progressed = False
        for shard in range(shards):
            frontier = frontiers[shard]
            node = None
            while frontier:
                candidate = frontier.popleft()
                if candidate in unassigned:
                    node = candidate
                    break
            if node is None:
                continue
            assignment[node] = shard
            unassigned.discard(node)
            progressed = True
            for nbr in topo.neighbors(node):
                if nbr in unassigned:
                    frontier.append(nbr)
        if not progressed:
            # All frontiers exhausted (connected graph: only possible once
            # everything is assigned, but guard against surprises loudly).
            if unassigned:
                raise ValueError(
                    f"BFS growth stranded nodes {sorted(unassigned)[:5]}..."
                )
    return assignment


def _refine(topo: Topology, shards: int, assignment: dict[int, int]) -> None:
    """Boundary sweeps: move a node to a neighboring shard when that strictly
    reduces the cut and keeps shard sizes within tolerance."""
    sizes = [0] * shards
    for shard in assignment.values():
        sizes[shard] += 1
    n = len(assignment)
    tolerance = max(1, n // (shards * 10))
    target = n / shards
    for _ in range(_REFINE_PASSES):
        moved = False
        for node in sorted(assignment):
            home = assignment[node]
            if sizes[home] - 1 < max(1, math.floor(target - tolerance)):
                continue
            counts: dict[int, int] = {}
            for nbr in topo.neighbors(node):
                nbr_shard = assignment[nbr]
                counts[nbr_shard] = counts.get(nbr_shard, 0) + 1
            here = counts.get(home, 0)
            best_shard, best_gain = home, 0
            for shard in sorted(counts):
                if shard == home:
                    continue
                if sizes[shard] + 1 > math.ceil(target + tolerance):
                    continue
                gain = counts[shard] - here
                if gain > best_gain:
                    best_shard, best_gain = shard, gain
            if best_shard != home:
                assignment[node] = best_shard
                sizes[home] -= 1
                sizes[best_shard] += 1
                moved = True
        if not moved:
            break
