"""Merge per-shard outputs into one ``ScenarioResult``.

The merge replicates ``run_scenario``'s result assembly field by field:
counters are sums (every record is observed by exactly one shard), the
convergence clocks are replayed offline over the merged route-change
stream, and the conservation / FIB-loop invariants are re-checked from the
shipped end-of-run state.  The only genuinely order-sensitive step is the
route-record merge; see :func:`merge_route_records` for the tie-break.
"""

from __future__ import annotations

import pickle
from types import SimpleNamespace
from typing import Optional

from ..experiments.scenario import ScenarioResult, TopologyEventOutcome
from ..metrics.convergence import (
    ConvergenceTracker,
    NetworkConvergenceWatcher,
    PathSnapshot,
    attribute_waves,
    walk_forwarding_path,
)
from ..metrics.loops import analyze_deliveries
from ..metrics.manet import analyze_manet
from ..metrics.reordering import analyze_reordering
from ..metrics.timeseries import delay_series, throughput_series
from ..net.packet import reset_packet_ids
from ..sim.tracing import DropCause, TraceBus
from ..validation.monitors import (
    LOOP_FREE_PROTOCOLS,
    SOURCE_ROUTED_PROTOCOLS,
    FibLoopMonitor,
    Violation,
)
from .partition import Partition
from .worker import ShardOutput

__all__ = [
    "merge_results",
    "merge_route_records",
    "canonical_trace_streams",
    "shard_perfetto_trace",
    "diff_results",
    "TraceProbe",
    "run_single_with_traces",
    "run_sharded_with_traces",
]

#: Monitors that need a live simulator and are not re-derivable offline.
_SHARD_SKIPPED_MONITORS = (
    "convergence-sentinel",
    "ttl",
    "queue-occupancy",
    "no-route-after-convergence",
    "rib-consistency",
)
_SHARD_SKIP_REASON = "not evaluated under sharded execution"


def merge_route_records(
    outputs: list[ShardOutput], scheduled, detect_times
) -> list:
    """Interleave per-shard route records into the global publish order.

    Records are totally ordered within a shard (bus publish order) but only
    timestamp-ordered across shards.  At equal timestamps the dominant
    cluster is the detection instant of a topology event, where
    ``_notify_down(a, b)`` reacts at ``a`` then ``b``; the tie-break ranks
    the event's own endpoints in pair order first, then everything else by
    node id.  The sort is stable over the shard-ordered concatenation, so
    within-shard order is never perturbed.
    """
    detect_pairs: dict[float, tuple[int, int]] = {}
    for event, detect in zip(scheduled, detect_times):
        detect_pairs.setdefault(detect, (event.a, event.b))

    def rank(record) -> tuple:
        pair = detect_pairs.get(record.time)
        if pair is not None and record.node in pair:
            return (0, pair.index(record.node))
        return (1, record.node)

    merged = []
    for output in sorted(outputs, key=lambda o: o.shard_index):
        merged.extend(output.route_records)
    merged.sort(key=lambda record: (record.time, rank(record)))
    return merged


def _offline_violations(
    protocol: str,
    outputs: list[ShardOutput],
    merged_records: list,
    sent: int,
    delivered: int,
    end_at: float,
) -> tuple[tuple[str, ...], dict[str, str]]:
    """Re-check the invariants that survive sharding, skip the rest loudly."""
    violations: list[Violation] = []
    skips = {name: _SHARD_SKIP_REASON for name in _SHARD_SKIPPED_MONITORS}

    # Packet conservation: same arithmetic as the live monitor, from global
    # sums (drops_total is whole-run, data-only, owned nodes only).
    dropped = sum(sum(o.drops_total.values()) for o in outputs)
    outstanding = sent - delivered - dropped
    in_network = sum(o.end_occupancy_data for o in outputs)
    buffered = sum(o.pending_data for o in outputs)
    if outstanding != in_network + buffered:
        violations.append(
            Violation(
                "packet-conservation",
                end_at,
                f"{outstanding} packet(s) unaccounted for but {in_network} "
                f"data packet(s) physically in the network and {buffered} "
                f"buffered awaiting routes",
            )
        )

    # FIB loops: replay the real monitor over the merged stream.
    if protocol not in LOOP_FREE_PROTOCOLS:
        skips["fib-loop"] = (
            f"protocol {protocol!r} makes no loop-freedom promise"
        )
    elif protocol in SOURCE_ROUTED_PROTOCOLS:
        skips["fib-loop"] = (
            f"{_SHARD_SKIP_REASON} (source-routed cache needs a live sampler)"
        )
    else:
        monitor = FibLoopMonitor()
        for output in sorted(outputs, key=lambda o: o.shard_index):
            for node, fib in sorted(output.initial_fibs.items()):
                for dest, next_hop in fib.items():
                    monitor._views.setdefault(dest, {})[node] = next_hop
        for record in merged_records:
            monitor._on_route(record)
        monitor.finalize(SimpleNamespace(end_time=end_at))
        violations.extend(monitor.violations)

    return tuple(str(v) for v in violations), skips


def merge_results(
    spec,
    partition: Partition,
    outputs: list[ShardOutput],
    scheduled,
    detect_times,
    first_at: float,
    first_detect: float,
    validate: bool,
    collect_traces: bool,
) -> ScenarioResult:
    config = spec.config
    traffic_start = config.traffic_start
    end_at = config.end_time
    outputs = sorted(outputs, key=lambda o: o.shard_index)

    merged_records = merge_route_records(outputs, scheduled, detect_times)

    # Offline replay of the two convergence observers over the merged stream.
    bus = TraceBus(keep_routes=False, keep_links=False)
    tracker = ConvergenceTracker(bus, dest=spec.receiver, src=spec.sender)
    view: dict[int, Optional[int]] = {}
    for output in outputs:
        view.update(output.initial_next_hops)
    tracker._fib_view = dict(sorted(view.items()))
    snap = walk_forwarding_path(tracker._fib_view, spec.sender, spec.receiver)
    tracker.snapshots.append(
        PathSnapshot(time=0.0, path=snap.path, state=snap.state)
    )
    watcher = NetworkConvergenceWatcher(bus)
    for record in merged_records:
        tracker._on_route_change(record)
        watcher._on_route_change(record)

    sent = sum(o.sent for o in outputs)
    delivered = sum(o.delivered for o in outputs)
    deliveries = outputs[partition.shard_of(spec.receiver)].deliveries
    drops: dict[DropCause, int] = {cause: 0 for cause in DropCause}
    messages = withdrawals = overhead_messages = overhead_bytes = 0
    for output in outputs:
        for cause, count in output.drops_window.items():
            drops[cause] += count
        messages += output.messages
        withdrawals += output.withdrawals
        overhead_messages += output.overhead_messages
        overhead_bytes += output.overhead_bytes

    waves = attribute_waves(detect_times, watcher.change_times, end_at)
    outcomes = tuple(
        TopologyEventOutcome(
            kind=e.kind,
            link=e.link_key,
            time=e.time,
            detect_time=dt,
            wave_start=w[0],
            wave_end=w[1],
        )
        for e, dt, w in zip(scheduled, detect_times, waves)
    )

    expected_final = spec.expected_final
    result = ScenarioResult(
        protocol=spec.protocol,
        degree=spec.degree,
        seed=spec.seed,
        sender=spec.sender,
        receiver=spec.receiver,
        initial_path=tuple(spec.pre_path),
        expected_final_path=expected_final,
        events=outcomes,
        sent=sent,
        delivered=delivered,
        drops_no_route=drops[DropCause.NO_ROUTE],
        drops_ttl=drops[DropCause.TTL_EXPIRED],
        drops_link_down=drops[DropCause.LINK_DOWN],
        drops_queue=drops[DropCause.QUEUE_OVERFLOW],
        routing_convergence=watcher.convergence_time(first_detect),
        destination_convergence=tracker.routing_convergence_time(first_detect),
        forwarding_convergence=tracker.forwarding_convergence_delay(first_detect),
        converged_to_expected=(
            tracker.converged_to(expected_final) if expected_final else False
        ),
        transient_path_count=len(tracker.transient_paths(first_at)),
        throughput=throughput_series(
            deliveries, traffic_start, end_at, origin=first_at
        ),
        delay=delay_series(deliveries, traffic_start, end_at, origin=first_at),
        messages=messages,
        withdrawals=withdrawals,
        reordering=analyze_reordering(deliveries),
        manet=analyze_manet(
            sent,
            deliveries,
            overhead_messages,
            control_bytes=overhead_bytes,
        ),
    )
    if config.record_paths:
        steady_hops = len(spec.pre_path) - 2
        result.loop_report = analyze_deliveries(
            deliveries, shortest_hops=steady_hops
        )
    if validate:
        result.violations, result.monitor_skips = _offline_violations(
            spec.protocol, outputs, merged_records, sent, delivered, end_at
        )
    if collect_traces:
        result.traces = canonical_trace_streams(
            packets=[r for o in outputs for r in o.trace_packets],
            routes=[r for o in outputs for r in o.route_records],
            links=[r for o in outputs for r in o.trace_links],
            messages=[r for o in outputs for r in o.trace_messages],
        )
    return result


# --------------------------------------------------------------------------
# trace canonicalization and the differential harness


def _record_key(record) -> tuple:
    return (record.time, repr(record))


def canonical_trace_streams(packets, routes, links, messages) -> dict[str, tuple]:
    """Order-normalize trace streams for byte-for-byte comparison.

    Within one timestamp the global engine order is not observable across
    shards, so each stream is sorted by ``(time, repr)`` — a total order
    both the single-process and the sharded run can reach.  Link-event
    records are deduplicated first: a cut link's events execute in both
    adjacent shards and legitimately record twice.
    """
    return {
        "packet": tuple(sorted(packets, key=_record_key)),
        "route": tuple(sorted(routes, key=_record_key)),
        "link": tuple(sorted(dict.fromkeys(links), key=_record_key)),
        "message": tuple(sorted(messages, key=_record_key)),
    }


def shard_perfetto_trace(traces: dict, log_records) -> dict:
    """Cross-shard Perfetto document: node lanes plus one lane per shard.

    ``traces`` is the :func:`canonical_trace_streams` dict a
    ``collect_traces`` run attaches as ``result.traces``; ``log_records``
    is the run-event log (list of dicts, from
    :func:`repro.obs.live.read_log`).  Packet / FIB / message / link
    events land on their node lanes exactly as in
    :func:`repro.obs.flight.perfetto_trace`, and every shard gets its own
    lane of window spans, barrier-wait fractions, and relay-injection
    instants — all on the one simulated-time axis, so a cross-shard stall
    or relay burst lines up visually with the packet activity that caused
    it.
    """
    from ..obs.flight import perfetto_trace
    from ..obs.live import shard_lane_events

    return perfetto_trace(
        packets=traces.get("packet", ()),
        route_changes=traces.get("route", ()),
        link_events=traces.get("link", ()),
        messages=traces.get("message", ()),
        extra=shard_lane_events(log_records),
    )


#: ScenarioResult fields the differential harness compares exactly.
COMPARED_FIELDS = (
    "protocol",
    "degree",
    "seed",
    "sender",
    "receiver",
    "initial_path",
    "expected_final_path",
    "sent",
    "delivered",
    "drops_no_route",
    "drops_ttl",
    "drops_link_down",
    "drops_queue",
    "routing_convergence",
    "destination_convergence",
    "forwarding_convergence",
    "converged_to_expected",
    "transient_path_count",
    "messages",
    "withdrawals",
)


def diff_results(single, single_traces, sharded, sharded_traces) -> list[str]:
    """Byte-identity check: every mismatch between the two runs, as strings.

    Compares the pinned scalar fields, the binned throughput/delay series,
    and all four canonical trace streams.  Empty list == identical.
    """
    problems: list[str] = []
    for name in COMPARED_FIELDS:
        a, b = getattr(single, name), getattr(sharded, name)
        if a != b:
            problems.append(f"{name}: single={a!r} sharded={b!r}")
    for series in ("throughput", "delay"):
        a = tuple(getattr(single, series).values)
        b = tuple(getattr(sharded, series).values)
        if a != b:
            problems.append(f"{series} series differ ({len(a)} vs {len(b)} bins)")
    for stream in ("packet", "route", "link", "message"):
        a, b = single_traces[stream], sharded_traces[stream]
        if a != b:
            first = next(
                (i for i, (x, y) in enumerate(zip(a, b)) if x != y),
                min(len(a), len(b)),
            )
            problems.append(
                f"trace stream {stream!r}: {len(a)} vs {len(b)} records, "
                f"first divergence at index {first}"
            )
    return problems


class TraceProbe:
    """A monitors-shaped shim that only records the four trace streams.

    Pass as ``run_scenario(..., monitors=probe)``: a non-``None`` monitors
    argument also turns on ``record_forwards``, matching what sharded
    workers do under ``collect_traces`` — so the streams are comparable.
    """

    def __init__(self) -> None:
        self.packets: list = []
        self.routes: list = []
        self.links: list = []
        self.messages: list = []
        self.skips: dict[str, str] = {}

    def attach(self, ctx) -> None:
        ctx.bus.subscribe("packet", self.packets.append)
        ctx.bus.subscribe("route", self.routes.append)
        ctx.bus.subscribe("link", self.links.append)
        ctx.bus.subscribe("message", self.messages.append)

    def finalize(self) -> list:
        return []

    def streams(self) -> dict[str, tuple]:
        return canonical_trace_streams(
            self.packets, self.routes, self.links, self.messages
        )


def run_single_with_traces(protocol: str, degree: int, seed: int, config):
    """Single-process reference run with canonical trace streams attached."""
    from ..experiments.scenario import run_scenario

    reset_packet_ids()
    probe = TraceProbe()
    single_config = config.with_(shards=1) if config.shards != 1 else config
    result = run_scenario(protocol, degree, seed, single_config, monitors=probe)
    return result, probe.streams()


def run_sharded_with_traces(
    protocol: str,
    degree: int,
    seed: int,
    config,
    exchange: str = "local",
    validate: bool = False,
    live_log=None,
):
    """Sharded run with canonical trace streams attached (determinism proofs)."""
    from .runner import run_scenario_sharded

    result = run_scenario_sharded(
        protocol,
        degree,
        seed,
        config,
        exchange=exchange,
        collect_traces=True,
        validate=validate,
        live_log=live_log,
    )
    return result, result.traces
