"""Sharded distributed simulation.

Partitions a topology across shards — each running its own
:class:`~repro.sim.engine.Simulator` and protocol stack — synchronized by a
conservative time-window barrier whose lookahead is the minimum propagation
delay over cut links, with cross-shard packets and routing messages relayed
through proxy-link stubs.  A sharded run is byte-identical to the
single-process run on any topology small enough to do both; see
``docs/distributed.md`` for the sync protocol and the determinism argument.
"""

from .partition import Partition, partition_topology
from .runner import (
    ShardScenarioSpec,
    ShardStallError,
    run_scenario_sharded,
    run_sharded,
)

__all__ = [
    "Partition",
    "partition_topology",
    "ShardScenarioSpec",
    "ShardStallError",
    "run_scenario_sharded",
    "run_sharded",
]
