"""Proxy-link stubs: the outbound half of a cut link.

Each cut link exists in both adjacent shards.  The shard owning the sending
endpoint replaces its outbound channel with a :class:`BoundaryChannel`,
which models queueing, serialization, propagation occupancy, and failure
drops exactly like a real channel — but instead of delivering to the (ghost)
far node, it records a :class:`PacketRelay` for the coordinator to ship to
the owning shard.  Reliable routing messages (BGP's TCP abstraction) are
captured via :attr:`~repro.net.link.Link.message_tap` as
:class:`MessageRelay`.

Determinism hinges on capture-time loss resolution: whether an in-flight
packet survives the link's future failures is decided *when it departs*,
against the precomputed outage schedule the coordinator ships to every
worker.  A packet killed in flight is never relayed — the sending shard's
own ``flush_on_failure`` produces the identical ``LINK_DOWN`` drop the
single-process run would — so the receiving shard can schedule every relay
it is handed unconditionally.
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass
from typing import Callable, NamedTuple

from ..net.link import Link, _Channel
from ..net.packet import Packet
from ..sim.engine import Simulator
from ..sim.tracing import DropCause
from ..sim.units import BITS_PER_BYTE

__all__ = [
    "PacketRelay",
    "MessageRelay",
    "ShardHeartbeat",
    "BoundaryChannel",
    "make_message_tap",
]


class ShardHeartbeat(NamedTuple):
    """One shard's progress snapshot, piggybacked on every barrier exchange.

    Rides the existing ``("ok", value)`` pipe response of the ``run``
    command — no extra sync point, and pickling cost is a few dozen bytes
    next to the relay batch it travels with.  All counts are cumulative
    since worker start; ``busy_s`` is wall time spent inside ``sim.run``
    and ``wall_s`` is wall time since the worker host was created, so
    ``1 - busy_s / wall_s`` is the barrier-wait (plus setup) fraction.
    """

    shard: int
    #: The barrier this window ran up to (exclusive horizon origin).
    barrier: float
    #: The shard simulator's clock after the window.
    clock: float
    events: int
    relays_out: int
    relays_in: int
    busy_s: float
    wall_s: float

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "barrier": self.barrier,
            "clock": self.clock,
            "events": self.events,
            "relays_out": self.relays_out,
            "relays_in": self.relays_in,
            "busy_s": self.busy_s,
            "wall_s": self.wall_s,
        }


@dataclass(frozen=True)
class Relay:
    """One cross-shard arrival to schedule in the receiving shard."""

    #: Canonical (min, max) key of the cut link this crossed.
    link: tuple[int, int]
    src: int
    dst: int
    arrive_at: float
    #: Pickled payload — a Packet (PacketRelay) or a protocol message
    #: (MessageRelay).  Pickling here (not at the pipe) guarantees the
    #: in-process LocalExchange also injects a private copy.
    blob: bytes
    #: Capture order within the producing shard — the deterministic
    #: tie-break for same-instant arrivals.
    seq: int
    #: When this transmission started serializing — the canonical ordering
    #: key the delivery sequencer uses for same-instant arrivals (the
    #: single-process engine delivers them in ascending transmission-start
    #: order; see docs/distributed.md).
    tx_start: float


class PacketRelay(Relay):
    """A data/control packet serialized onto a cut link."""


class MessageRelay(Relay):
    """A reliable-channel routing message sent over a cut link."""


def killed_in_flight(outages: tuple[float, ...], depart: float, arrive: float) -> bool:
    """Does a failure in ``(depart, arrive]`` destroy this transmission?

    Strict at departure: a failure at exactly the departure instant has
    already executed (failure events are scheduled at setup, so they sort
    first at equal timestamps) and the live ``link.up`` check handles it.
    Inclusive at arrival: at equal timestamps the failure still executes
    before the runtime-scheduled arrival, cancelling it.
    """
    for t in outages:
        if t > arrive:
            return False
        if t > depart:
            return True
    return False


class BoundaryChannel(_Channel):
    """Outbound direction of a cut link, relaying instead of delivering."""

    __slots__ = ("_outbox", "_outages", "_capture_seq")

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        src: int,
        dst: int,
        outbox: list,
        outages: tuple[float, ...],
        capture_seq: "itertools.count[int]",
    ) -> None:
        super().__init__(sim, link, src, dst)
        self._outbox = outbox
        self._outages = outages
        self._capture_seq = capture_seq

    def _serialized(self, packet: Packet) -> None:
        # Mirror of _Channel._serialized: the propagation event is kept (so
        # occupancy and flush_on_failure behave identically) but consumes the
        # packet instead of delivering it.
        self._serializing = None
        if not self._link.up:
            self._link._drop(packet, self.src, DropCause.LINK_DOWN)
            self._busy = False
            return
        handle = self._sim.schedule_call(self._prop_delay, self._consume, packet)
        self._in_flight[id(packet)] = (handle, packet)
        self.transmitted += 1
        depart = self._sim.now
        arrive_at = depart + self._prop_delay
        if not killed_in_flight(self._outages, depart, arrive_at):
            tx = (packet.size_bytes * BITS_PER_BYTE) / self._bandwidth
            self._outbox.append(
                PacketRelay(
                    link=self._link.endpoints,
                    src=self.src,
                    dst=self.dst,
                    arrive_at=arrive_at,
                    blob=pickle.dumps(packet, pickle.HIGHEST_PROTOCOL),
                    seq=next(self._capture_seq),
                    tx_start=depart - tx,
                )
            )
        self._start_next()

    def _consume(self, packet: Packet) -> None:
        # The packet left this shard; the owning shard delivers the relayed
        # copy.  Only the in-flight bookkeeping ends here.
        del self._in_flight[id(packet)]


def make_message_tap(
    sim: Simulator,
    link_key: tuple[int, int],
    ghost_dst: int,
    outbox: list,
    outages: tuple[float, ...],
    capture_seq: "itertools.count[int]",
) -> Callable[[int, int, object, float, float], None]:
    """Build a :attr:`Link.message_tap` relaying reliable messages to ``ghost_dst``."""

    def tap(
        src: int, dst: int, payload: object, arrive_at: float, tx_start: float
    ) -> None:
        if dst != ghost_dst:
            return
        if killed_in_flight(outages, sim.now, arrive_at):
            # The session dies with the link before delivery; the sending
            # shard's _on_link_fail cancels its local copy identically.
            return
        outbox.append(
            MessageRelay(
                link=link_key,
                src=src,
                dst=dst,
                arrive_at=arrive_at,
                blob=pickle.dumps(payload, pickle.HIGHEST_PROTOCOL),
                seq=next(capture_seq),
                tx_start=tx_start,
            )
        )

    return tap
